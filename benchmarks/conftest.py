"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*`` file regenerates the performance-critical kernel of one of
the paper's tables/figures (see DESIGN.md section 4); the full tables are
printed by ``python -m repro.bench``. Benchmark sizes are kept moderate so
the whole suite finishes in a couple of minutes.
"""

from __future__ import annotations

import pytest

from repro.core.scoring import default_scheme_for
from repro.seqio.alphabet import DNA, PROTEIN
from repro.seqio.generate import MutationModel, mutated_family


@pytest.fixture(scope="session")
def run_recorder():
    """Buffer run rows during the benchmark session, flush at teardown.

    Benchmark tests call ``run_recorder(kind, metrics, config)`` after
    their timed section; one row per call lands in the run-record
    database (``RUNS.jsonl``, see ``docs/observability.md``) when the
    session ends, so pytest-benchmark runs feed the same perf
    trajectory as the standalone benchmark scripts. Recording is
    best-effort — a read-only checkout never fails the benchmarks.
    """
    buffered: list[tuple[str, dict, dict]] = []

    def record(kind: str, metrics: dict, config: dict | None = None) -> None:
        if not metrics:  # --benchmark-disable: nothing worth a row
            return
        buffered.append((kind, dict(metrics), dict(config or {})))

    yield record

    from repro.runs import record_run

    for kind, metrics, config in buffered:
        record_run(
            kind,
            config=config,
            metrics=metrics,
            wall_s=float(metrics.get("mean_s", 0.0)),
        )


@pytest.fixture(scope="session")
def dna_scheme():
    return default_scheme_for(DNA)


@pytest.fixture(scope="session")
def protein_scheme():
    return default_scheme_for(PROTEIN)


@pytest.fixture(scope="session")
def family20():
    return mutated_family(20, seed=1)


@pytest.fixture(scope="session")
def family60():
    return mutated_family(60, seed=2)


@pytest.fixture(scope="session")
def family80():
    return mutated_family(80, seed=3)


@pytest.fixture(scope="session")
def family60_diverged():
    return mutated_family(60, model=MutationModel().scaled(4.0), seed=4)
