"""T1 — sequential engines: scalar reference vs vectorised wavefront.

The table's headline: the vectorised anti-diagonal kernel is the
compiled-code substitute, typically two orders of magnitude over the
scalar fill.
"""

from repro.core.dp3d import score3_dp3d
from repro.core.rolling import score3_slab
from repro.core.wavefront import score3_wavefront


def test_dp3d_scalar_n20(benchmark, dna_scheme, family20):
    benchmark(score3_dp3d, *family20, dna_scheme)


def test_wavefront_n20(benchmark, dna_scheme, family20):
    benchmark(score3_wavefront, *family20, dna_scheme)


def test_wavefront_n60(benchmark, dna_scheme, family60):
    benchmark(score3_wavefront, *family60, dna_scheme)


def test_wavefront_n80(benchmark, dna_scheme, family80):
    benchmark(score3_wavefront, *family80, dna_scheme)


def test_slab_n60(benchmark, dna_scheme, family60):
    benchmark(score3_slab, *family60, dna_scheme)
