"""F4 — block-size sweep and mapping ablation (simulator cost)."""

import pytest

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.machine import ethernet_2007
from repro.cluster.metrics import block_sweep
from repro.cluster.simulate import simulate_wavefront


def test_block_sweep_n200(benchmark):
    res = benchmark(block_sweep, 200, (4, 8, 16, 32, 64), ethernet_2007(16))
    speedups = [r.speedup for r in res]
    assert max(speedups) == max(speedups[1:-1])  # interior optimum


@pytest.mark.parametrize("mapping", ["pencil", "linear", "slab"])
def test_mapping_ablation(benchmark, mapping):
    grid = BlockGrid.for_sequences(200, 200, 200, 16)
    machine = ethernet_2007(16)
    benchmark(simulate_wavefront, grid, machine, mapping)
