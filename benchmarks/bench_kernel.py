#!/usr/bin/env python
"""Plane-kernel throughput benchmark and perf-baseline writer.

Measures the zero-allocation wavefront kernel (``compute_plane_rows`` +
:class:`~repro.core.workspace.PlaneWorkspace`) against the frozen
pre-workspace reference kernel (``compute_plane_rows_ref``) on the two
workloads that bracket the engine's regimes:

* **small_repeated** — many score-only sweeps over small cubes, the
  Hirschberg/persistent-pool regime where per-sweep allocation used to
  rival the arithmetic. This is where the workspace wins big.
* **large_sweep** — one big full-traceback sweep, the
  bandwidth-dominated regime where allocation amortises; the new kernel
  must simply not regress here.
* **hirschberg_e2e** — end-to-end linear-space alignment wall time and
  cell throughput, recorded for the perf trajectory.
* **high_similarity** — a ≥0.9-identity triple (the production-typical
  regime): one unpruned score-only wavefront vs the *end-to-end*
  Carrillo–Lipman tube path — banded lower bound, tube build and
  pruned sweep all inside the timed side — asserting bit-identical
  scores. This is the ≥5x acceptance number for the pruned engine.
* **scaling** — the synchronisation-regime curve: score-only sweeps of
  one mid-size triple through the per-plane-barrier engine (``shared``)
  and the block-tiled engine (``blocks``) at 1/2/4/8 workers, in the
  same interleaved A/B harness as the kernel sections. Scores are
  asserted bit-identical to the serial wavefront at every point. The
  gate number is the best shared/blocks wall-time ratio at ≥ 4 workers
  — the regime where the per-plane barrier wall dominates.
* **long_anchored** — an n≈2000 high-identity triple through
  ``align3(method="anchored")`` (anchor discovery + cube-chain
  decomposition, ``repro.anchor``): end-to-end wall time, chain
  coverage and dense-cube-equivalent throughput. No unanchored
  reference is timed here — a full n=2000 cube takes minutes; the
  ≥3x speedup floor is enforced by ``tools/check_anchor.py`` with a
  subprocess timeout instead.

``python benchmarks/bench_kernel.py`` prints a summary and (with
``--write``) saves ``BENCH_kernel.json`` at the repo root — the baseline
that ``tools/check_perf.py`` gates against. The file is deliberately
machine-neutral: workload config and measured numbers only, no
hostnames, paths or timestamps.

Every run also self-records one ``bench_kernel`` row into the run-record
database (``RUNS.jsonl``, see ``docs/observability.md``), growing the
perf trajectory that ``check_perf.py --trajectory`` gates against and
``repro report --trends`` renders. ``--no-record`` opts out,
``--runs-file`` redirects the row elsewhere.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


_ensure_importable()

import numpy as np  # noqa: E402

from repro.core.dp3d import NEG  # noqa: E402
from repro.core.hirschberg import align3_hirschberg  # noqa: E402
from repro.core.scoring import default_scheme_for  # noqa: E402
from repro.core.wavefront import (  # noqa: E402
    compute_plane_rows,
    compute_plane_rows_ref,
    wavefront_sweep,
)
from repro.core.workspace import PlaneWorkspace  # noqa: E402
from repro.seqio.generate import mutated_family  # noqa: E402
from repro.util.timing import repeat_min  # noqa: E402


def _ab_min(run_ref, run_new, repeats):
    """Interleaved A/B timing: min seconds per side.

    Alternating ref/new inside each repeat makes slow drift (thermal
    throttling, background load) hit both sides equally, so the two
    minima compare like with like — the same trick as
    ``tools/check_overhead.py``. Each side gets one untimed warmup.
    Returns ``(ref_seconds, new_seconds, ref_result, new_result)``.
    """
    import time

    run_ref()
    run_new()
    t_ref = t_new = float("inf")
    ref_result = new_result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        ref_result = run_ref()
        t_ref = min(t_ref, time.perf_counter() - t0)
        t0 = time.perf_counter()
        new_result = run_new()
        t_new = min(t_new, time.perf_counter() - t0)
    return t_ref, t_new, ref_result, new_result

BASELINE_NAME = "BENCH_kernel.json"
SCHEMA = "bench-kernel/2"

#: Default workload knobs. ``quick`` halves the repeats for the CI gate.
DEFAULT_CONFIG = {
    "small_n": 14,
    "small_triples": 24,
    "small_rounds": 3,
    "large_n": 110,
    "hirschberg_n": 90,
    "hirschberg_base_cells": 20_000,
    "high_sim_n": 240,
    "anchored_n": 2000,
    "scaling_n": 96,
    "scaling_workers": [1, 2, 4, 8],
    "scaling_repeats": 3,
    "repeats": 5,
    "seed": 20240805,
}


def _sweep_with_kernel(kernel, seqs, scheme, ws=None):
    """Score-only sweep driving an explicit kernel (the A/B harness).

    Mirrors :func:`repro.core.wavefront.wavefront_sweep` minus
    observability, so the timing isolates kernel cost. Returns
    (score, cells).
    """
    sa, sb, sc = seqs
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    dims = (n1, n2, n3)
    if ws is None:
        planes = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
        kwargs = {}
    else:
        planes = ws.planes_for(n1, n2)
        kwargs = {"ws": ws}
    cells = 0
    dmax = n1 + n2 + n3
    for d in range(dmax + 1):
        cells += kernel(
            d,
            0,
            n1,
            planes[(d - 1) % 4],
            planes[(d - 2) % 4],
            planes[(d - 3) % 4],
            planes[d % 4],
            sab,
            sac,
            sbc,
            g2,
            dims,
            **kwargs,
        )
    return float(planes[dmax % 4][n1 + 1, n2 + 1]), cells


def _measure_small_repeated(config, scheme):
    """Hirschberg-style regime: many small score-only sweeps."""
    triples = [
        mutated_family(config["small_n"], seed=config["seed"] + i)
        for i in range(config["small_triples"])
    ]
    rounds = config["small_rounds"]

    def run_ref():
        total = 0
        for _ in range(rounds):
            for seqs in triples:
                _, c = _sweep_with_kernel(
                    compute_plane_rows_ref, seqs, scheme
                )
                total += c
        return total

    ws = PlaneWorkspace()

    def run_new():
        total = 0
        for _ in range(rounds):
            for seqs in triples:
                _, c = _sweep_with_kernel(
                    compute_plane_rows, seqs, scheme, ws=ws
                )
                total += c
        return total

    t_ref, t_new, cells, cells_new = _ab_min(
        run_ref, run_new, config["repeats"]
    )
    assert cells == cells_new
    return {
        "cells": cells,
        "ref_seconds": t_ref,
        "new_seconds": t_new,
        "ref_cells_per_s": cells / t_ref,
        "new_cells_per_s": cells / t_new,
        "speedup": t_ref / t_new,
    }


def _measure_large_sweep(config, scheme):
    """Single large sweep: the no-regression side of the gate."""
    seqs = mutated_family(config["large_n"], seed=config["seed"] + 1001)

    def run_ref():
        return _sweep_with_kernel(compute_plane_rows_ref, seqs, scheme)[1]

    ws = PlaneWorkspace()

    def run_new():
        return _sweep_with_kernel(compute_plane_rows, seqs, scheme, ws=ws)[1]

    t_ref, t_new, cells, _ = _ab_min(run_ref, run_new, config["repeats"])
    return {
        "cells": cells,
        "ref_seconds": t_ref,
        "new_seconds": t_new,
        "ref_cells_per_s": cells / t_ref,
        "new_cells_per_s": cells / t_new,
        "speedup": t_ref / t_new,
    }


def _measure_hirschberg(config, scheme):
    """End-to-end linear-space alignment; the trajectory number."""
    seqs = mutated_family(
        config["hirschberg_n"], seed=config["seed"] + 2002
    )
    n = config["hirschberg_n"]

    def run():
        return align3_hirschberg(
            *seqs, scheme, base_cells=config["hirschberg_base_cells"]
        )

    seconds, aln = repeat_min(run, repeats=config["repeats"], warmup=1)
    check = wavefront_sweep(*seqs, scheme, score_only=True).score
    assert aln.score == check, "hirschberg/wavefront score mismatch"
    cube = (n + 1) ** 3
    return {
        "n": n,
        "seconds": seconds,
        "cube_cells": cube,
        "cube_cells_per_s": cube / seconds,
        "score": aln.score,
    }


def _measure_high_similarity(config, scheme):
    """Similar-triple regime: unpruned wavefront vs end-to-end pruning.

    The pruned side pays for everything a cold ``method='pruned'``
    request pays — the banded lower-bound sweep, three pairwise
    through-matrices, the tube build — and still has to come
    out ≥5x ahead for the adaptive selector's routing to make sense.
    Scores must match bit for bit (pruning keeps every optimal path).
    """
    from repro.core.bounds import carrillo_lipman_tube
    from repro.seqio.generate import MutationModel

    n = config["high_sim_n"]
    seqs = mutated_family(
        n,
        model=MutationModel(
            substitution=0.02, insertion=0.005, deletion=0.005
        ),
        seed=config["seed"] + 3003,
    )

    def run_ref():
        return wavefront_sweep(*seqs, scheme, score_only=True).score

    stats_holder = {}

    def run_new():
        tube, stats = carrillo_lipman_tube(*seqs, scheme)
        stats_holder["stats"] = stats
        return wavefront_sweep(
            *seqs, scheme, tube=tube, score_only=True
        ).score

    t_ref, t_new, score_ref, score_new = _ab_min(
        run_ref, run_new, config["repeats"]
    )
    assert score_ref == score_new, "pruned/wavefront score mismatch"
    stats = stats_holder["stats"]
    return {
        "n": n,
        "cube_cells": stats.total_cells,
        "kept_cells": stats.kept_cells,
        "kept_fraction": stats.kept_fraction,
        "ref_seconds": t_ref,
        "new_seconds": t_new,
        "speedup": t_ref / t_new,
        "score": score_ref,
    }


def _measure_scaling(config, scheme):
    """Barrier-wall regime: per-plane ``shared`` vs block-tiled ``blocks``.

    Both engines compute identical cells with the same kernel; the only
    difference is synchronisation — one barrier per plane versus a
    handful of counter waits per plane *band*. Their wall-time ratio at
    each worker count is therefore a direct measurement of the barrier
    wall, machine-neutral in the same way the kernel A/B ratios are
    (both sides fork the same number of processes on the same box).

    The ``speedup`` gate number is the best shared/blocks ratio at
    ≥ 4 workers: with few workers both regimes are dispatch-dominated
    and the ratio hovers near 1.0; the barrier wall only opens up once
    the per-plane rendezvous has enough legs. On hosts without ``fork``
    both engines fall back to the identical serial sweep, so the ratio
    degrades to ~1.0 rather than lying.
    """
    from repro.parallel.blocks import score3_blocks
    from repro.parallel.shared import score3_shared

    n = config["scaling_n"]
    seqs = mutated_family(n, seed=config["seed"] + 5005)
    expect = wavefront_sweep(*seqs, scheme, score_only=True).score
    repeats = config["scaling_repeats"]
    curve = {}
    for w in config["scaling_workers"]:
        t_shared, t_blocks, s_shared, s_blocks = _ab_min(
            lambda: score3_shared(*seqs, scheme, workers=w),
            lambda: score3_blocks(*seqs, scheme, workers=w),
            repeats,
        )
        assert s_shared == expect and s_blocks == expect, (
            f"scaling score mismatch at workers={w}: "
            f"shared={s_shared} blocks={s_blocks} serial={expect}"
        )
        curve[str(w)] = {
            "shared_seconds": t_shared,
            "blocks_seconds": t_blocks,
            "speedup": t_shared / t_blocks,
        }
    gate = [w for w in config["scaling_workers"] if w >= 4]
    if not gate:
        gate = [max(config["scaling_workers"])]
    gate_w = max(gate, key=lambda w: curve[str(w)]["speedup"])
    return {
        "n": n,
        "workers": list(config["scaling_workers"]),
        "gate_workers": gate_w,
        "curve": curve,
        "speedup": curve[str(gate_w)]["speedup"],
        "score": expect,
    }


def _measure_long_anchored(config, scheme):
    """Long-sequence regime: anchored divide-and-conquer end to end.

    One timed ``align3(method="anchored")`` run (discovery, chaining,
    per-sub-cube engine selection, stitching) on a triple no dense
    engine serves interactively. ``dense_equiv_cells_per_s`` divides the
    *full* lattice size by the anchored wall time — the apples-to-apples
    number against the other regimes' cells/s.
    """
    from repro.core.api import align3
    from repro.seqio.generate import MutationModel

    n = config["anchored_n"]
    seqs = mutated_family(
        n,
        model=MutationModel(
            substitution=0.02, insertion=0.005, deletion=0.005
        ),
        seed=config["seed"] + 4004,
    )

    def run():
        return align3(*seqs, scheme, method="anchored")

    # min-of-2, not config["repeats"]: one run is seconds, and the gate
    # (check_perf) re-executes this whole document on every invocation.
    seconds, aln = repeat_min(run, repeats=2, warmup=0)
    anchor = aln.meta["anchor"]
    assert anchor["anchors"] > 0, (
        "anchored bench triple must actually anchor; discovery said: "
        f"{anchor.get('discovery')}"
    )
    cube = 1
    for s in seqs:
        cube *= len(s) + 1
    return {
        "n": n,
        "seconds": seconds,
        "anchors": anchor["anchors"],
        "coverage": anchor["coverage"],
        "segments": anchor["segments"],
        "max_subcube_cells": anchor["max_subcube_cells"],
        "cube_cells": cube,
        "dense_equiv_cells_per_s": cube / seconds,
        "score": aln.score,
    }


def run(config: dict | None = None) -> dict:
    """Run the full benchmark; returns the result document."""
    cfg = dict(DEFAULT_CONFIG)
    if config:
        cfg.update(config)
    from repro.seqio import DNA

    scheme = default_scheme_for(DNA)
    return {
        "schema": SCHEMA,
        "config": cfg,
        "small_repeated": _measure_small_repeated(cfg, scheme),
        "large_sweep": _measure_large_sweep(cfg, scheme),
        "hirschberg_e2e": _measure_hirschberg(cfg, scheme),
        "high_similarity": _measure_high_similarity(cfg, scheme),
        "scaling": _measure_scaling(cfg, scheme),
        "long_anchored": _measure_long_anchored(cfg, scheme),
    }


def baseline_path() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent / BASELINE_NAME


def summarise(doc: dict) -> str:
    sm, lg, hb = (
        doc["small_repeated"],
        doc["large_sweep"],
        doc["hirschberg_e2e"],
    )
    lines = [
        f"small repeated : {sm['new_cells_per_s']:,.0f} cells/s "
        f"(ref {sm['ref_cells_per_s']:,.0f}) "
        f"speedup {sm['speedup']:.2f}x",
        f"large sweep    : {lg['new_cells_per_s']:,.0f} cells/s "
        f"(ref {lg['ref_cells_per_s']:,.0f}) "
        f"speedup {lg['speedup']:.2f}x",
        f"hirschberg e2e : n={hb['n']} in {hb['seconds']:.3f} s "
        f"({hb['cube_cells_per_s']:,.0f} cube cells/s)",
    ]
    hs = doc.get("high_similarity")
    if hs:
        lines.append(
            f"high similarity: n={hs['n']} pruned "
            f"{hs['new_seconds'] * 1000:.1f} ms vs full "
            f"{hs['ref_seconds'] * 1000:.1f} ms — "
            f"speedup {hs['speedup']:.2f}x "
            f"(kept {hs['kept_fraction']:.2%} of the cube)"
        )
    sc = doc.get("scaling")
    if sc:
        points = " ".join(
            f"w={w}:{sc['curve'][str(w)]['speedup']:.2f}x"
            for w in sc["workers"]
        )
        lines.append(
            f"scaling        : n={sc['n']} blocks vs shared — {points} "
            f"(gate {sc['speedup']:.2f}x at w={sc['gate_workers']})"
        )
    la = doc.get("long_anchored")
    if la:
        lines.append(
            f"long anchored  : n={la['n']} in {la['seconds']:.2f} s — "
            f"{la['anchors']} anchors, coverage {la['coverage']:.0%}, "
            f"{la['dense_equiv_cells_per_s']:,.0f} dense-equiv cells/s"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the plane kernel and write the perf baseline"
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"save results to {BASELINE_NAME} at the repo root",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed repeats per side"
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip appending this run to the run-record store",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store to append to (default: RUNS.jsonl at the "
        "repo root)",
    )
    args = parser.parse_args(argv)
    overrides = {}
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error("repeats must be >= 1")
        overrides["repeats"] = args.repeats

    import time as _time

    from repro.runs import kernel_metrics, record_run

    t0 = _time.perf_counter()
    doc = run(overrides)
    wall = _time.perf_counter() - t0
    print(summarise(doc))
    record = record_run(
        "bench_kernel",
        config=doc["config"],
        metrics=kernel_metrics(doc),
        wall_s=wall,
        runs_file=args.runs_file,
        enabled=not args.no_record,
        git_dir=baseline_path().parent,
    )
    if record is not None:
        print(f"# run recorded: kind=bench_kernel fp={record.fp[:8]}")
    if args.write:
        path = baseline_path()
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
