#!/usr/bin/env python
"""Load generator for the ``repro serve`` alignment service.

Unlike the pytest-benchmark files next to it, this is a standalone
script: serving latency is a property of a *running process* under a
*traffic pattern*, so the knobs are the client's, not a fixture's. It
spawns a fresh server on an ephemeral port (or targets an existing one
via ``--port``) and drives it with either loop mode:

- **closed** (default): ``--concurrency`` workers each keep exactly one
  request in flight — classic saturation throughput.
- **open**: requests arrive at ``--rate`` per second regardless of
  completions — the latency-under-load / shed-rate view. An open loop
  past capacity is *supposed* to shed; the 429 rate is a result, not an
  error.

Two built-in mixes: ``duplicate`` (requests drawn from ``--unique``
distinct triples — the cache/dedup-friendly shape) and ``unique`` (every
request distinct — worst case, every triple computed). Reports p50/p95/
p99 latency per status class, an aggregate ``p50/p95/p99 + shed_rate``
line for the served (200) class, and throughput — and self-records the
same numbers as one ``bench_serve`` row in the run-record database
(``RUNS.jsonl``), so serve-latency percentiles and the shed rate become
gateable trajectory metrics (``repro report --trends``). ``--no-record``
opts out, ``--runs-file`` redirects the row.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --loop open \\
        --rate 200 --duration 10 --mix unique
    PYTHONPATH=src python benchmarks/bench_serve.py --port 8673  # existing
    PYTHONPATH=src python benchmarks/bench_serve.py --replicas 3  # sharded

``--replicas N`` spawns N serve processes behind a ``repro router``
and drives the router port instead — the scale-out view. Aggregate
throughput only scales when the machine has cores to back the extra
worker pools.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_vals:
        return float("nan")
    k = min(len(sorted_vals) - 1, max(0, int(q * len(sorted_vals))))
    return sorted_vals[k]


def spawn(cmd: list[str], banner: str) -> tuple[subprocess.Popen, int]:
    """Start a repro subcommand and scrape its bound port off stderr."""
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + cmd,
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert proc.stderr is not None
    for line in proc.stderr:
        m = re.match(rf"# {banner} [\d.]+:(\d+)", line)
        if m:
            port = int(m.group(1))
            threading.Thread(
                target=lambda: [None for _ in proc.stderr], daemon=True
            ).start()
            return proc, port
    raise RuntimeError(f"{cmd[0]} failed to start (rc={proc.poll()})")


def spawn_server(extra: list[str]) -> tuple[subprocess.Popen, int]:
    return spawn(["serve", "--port", "0"] + extra, "serving on")


def spawn_tier(
    replicas: int, workers: int
) -> tuple[list[subprocess.Popen], int]:
    """Spawn ``replicas`` serve processes behind a router; return the
    router's port. Each replica gets its own worker pool, so aggregate
    compute scales with (cores permitting) the replica count."""
    procs: list[subprocess.Popen] = []
    ports: list[int] = []
    try:
        for _ in range(replicas):
            proc, port = spawn_server(["--workers", str(workers)])
            procs.append(proc)
            ports.append(port)
        router, rport = spawn(
            ["router", *(f"127.0.0.1:{p}" for p in ports), "--port", "0"],
            "routing on",
        )
        procs.append(router)
    except BaseException:
        for proc in procs:
            proc.kill()
        raise
    return procs, rport


def summarise(rec: "Recorder", wall: float) -> dict[str, float]:
    """Flat, gateable summary of one load run.

    Percentiles are over the served (200) class only — shed responses
    return in microseconds and would flatter the latency numbers; their
    share is reported separately as ``shed_rate``.
    """
    ok = sorted(rec.latencies.get(200, []))
    total = sum(len(v) for v in rec.latencies.values()) + rec.conn_errors
    shed = len(rec.latencies.get(429, []))
    return {
        "requests": float(total),
        "ok": float(len(ok)),
        "throughput_rps": total / wall if wall > 0 else 0.0,
        "p50_ms": percentile(ok, 0.50) * 1e3,
        "p95_ms": percentile(ok, 0.95) * 1e3,
        "p99_ms": percentile(ok, 0.99) * 1e3,
        "max_ms": (ok[-1] * 1e3) if ok else float("nan"),
        "shed_rate": shed / total if total else 0.0,
        "conn_errors": float(rec.conn_errors),
    }


class Recorder:
    """Thread-safe latency/status accumulator."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: dict[int, list[float]] = {}
        self.conn_errors = 0

    def add(self, status: int, seconds: float) -> None:
        with self.lock:
            self.latencies.setdefault(status, []).append(seconds)

    def error(self) -> None:
        with self.lock:
            self.conn_errors += 1


def run_closed(
    host: str,
    port: int,
    payloads: list[list[str]],
    concurrency: int,
    rec: Recorder,
) -> float:
    from repro.serve import ServeClient

    it = iter(payloads)
    lock = threading.Lock()

    def worker() -> None:
        with ServeClient(host, port) as client:
            while True:
                with lock:
                    seqs = next(it, None)
                if seqs is None:
                    return
                t0 = time.perf_counter()
                try:
                    resp = client.align(seqs=seqs)
                    rec.add(resp.status, time.perf_counter() - t0)
                except OSError:
                    rec.error()

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def run_open(
    host: str,
    port: int,
    payloads: list[list[str]],
    rate: float,
    concurrency: int,
    rec: Recorder,
) -> float:
    """Paced arrivals: each of ``concurrency`` pacers fires at
    ``rate/concurrency`` rps on its own schedule, so a slow response
    delays later arrivals on that pacer only (quasi-open; a true open
    loop would need unbounded connections)."""
    from repro.serve import ServeClient

    per = rate / concurrency
    interval = 1.0 / per if per > 0 else 0.0
    shards = [payloads[i::concurrency] for i in range(concurrency)]

    def pacer(shard: list[list[str]], offset: float) -> None:
        with ServeClient(host, port) as client:
            start = time.perf_counter() + offset
            for i, seqs in enumerate(shard):
                due = start + i * interval
                now = time.perf_counter()
                if due > now:
                    time.sleep(due - now)
                t0 = time.perf_counter()
                try:
                    resp = client.align(seqs=seqs)
                    rec.add(resp.status, time.perf_counter() - t0)
                except OSError:
                    rec.error()

    threads = [
        threading.Thread(target=pacer, args=(shards[i], i * interval / max(1, concurrency)))
        for i in range(concurrency)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="drive repro serve with a synthetic workload"
    )
    parser.add_argument(
        "--loop", choices=("closed", "open"), default="closed"
    )
    parser.add_argument(
        "--mix", choices=("duplicate", "unique"), default="duplicate"
    )
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument(
        "--unique",
        type=int,
        default=40,
        help="distinct triples in the duplicate mix",
    )
    parser.add_argument("--n", type=int, default=24, help="triple length")
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument(
        "--rate",
        type=float,
        default=100.0,
        help="open-loop arrival rate (requests/s)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="target an existing server"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="target an existing server instead of spawning one",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="spawned server's pool size"
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="spawn N serve replicas behind a repro router and drive the "
        "router instead of a single server (ignored with --port)",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip appending this run to the run-record store",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store to append to (default: RUNS.jsonl at the "
        "repo root)",
    )
    args = parser.parse_args(argv)
    if args.requests < 1 or args.unique < 1 or args.concurrency < 1:
        parser.error("requests/unique/concurrency must be >= 1")
    if args.replicas < 1:
        parser.error("replicas must be >= 1")

    _ensure_importable()
    from repro.seqio.generate import mutated_family

    n_unique = args.unique if args.mix == "duplicate" else args.requests
    triples = [
        list(mutated_family(args.n, seed=2000 + i)) for i in range(n_unique)
    ]
    payloads = [triples[i % n_unique] for i in range(args.requests)]

    procs: list[subprocess.Popen] = []
    port = args.port
    if port is None:
        if args.replicas > 1:
            procs, port = spawn_tier(args.replicas, args.workers)
        else:
            proc, port = spawn_server(["--workers", str(args.workers)])
            procs = [proc]
    rec = Recorder()
    try:
        if args.loop == "closed":
            wall = run_closed(
                args.host, port, payloads, args.concurrency, rec
            )
        else:
            wall = run_open(
                args.host, port, payloads, args.rate, args.concurrency, rec
            )
    finally:
        # Router (last in the list) first, so replicas never see it
        # retry against half-dead backends while they drain.
        for proc in reversed(procs):
            proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    summary = summarise(rec, wall)
    print(
        f"# loop={args.loop} mix={args.mix} requests={args.requests} "
        f"unique={n_unique} n={args.n} concurrency={args.concurrency}"
        + (f" rate={args.rate:g}/s" if args.loop == "open" else "")
        + (f" replicas={args.replicas}" if args.replicas > 1 else "")
    )
    print(
        f"# wall={wall:.3f}s throughput={summary['throughput_rps']:.1f} "
        f"req/s shed_rate={summary['shed_rate']:.3f} "
        f"conn_errors={rec.conn_errors}"
    )
    print(
        f"# served(200): p50={summary['p50_ms']:.2f}ms "
        f"p95={summary['p95_ms']:.2f}ms p99={summary['p99_ms']:.2f}ms "
        f"shed_rate={summary['shed_rate']:.3f}"
    )
    print(f"{'status':>6} {'count':>6} {'p50_ms':>8} {'p95_ms':>8} "
          f"{'p99_ms':>8} {'max_ms':>8}")
    for status in sorted(rec.latencies):
        vals = sorted(rec.latencies[status])
        print(
            f"{status:>6} {len(vals):>6} "
            f"{percentile(vals, 0.50) * 1e3:>8.2f} "
            f"{percentile(vals, 0.95) * 1e3:>8.2f} "
            f"{percentile(vals, 0.99) * 1e3:>8.2f} "
            f"{vals[-1] * 1e3:>8.2f}"
        )

    from repro.runs import record_run

    config = {
        "loop": args.loop,
        "mix": args.mix,
        "requests": args.requests,
        "unique": n_unique,
        "n": args.n,
        "concurrency": args.concurrency,
        "workers": args.workers,
        "replicas": args.replicas,
    }
    if args.loop == "open":
        config["rate"] = args.rate
    record_run(
        "bench_serve",
        config=config,
        metrics=summary,
        wall_s=wall,
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
