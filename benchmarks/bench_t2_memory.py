"""T2 — memory-light engines: score-only wavefront, Hirschberg traceback.

Benchmarks the *time* cost of the O(n^2)-memory paths; the memory numbers
themselves are in ``python -m repro.bench --exp t2``.
"""

from repro.core.hirschberg import align3_hirschberg
from repro.core.wavefront import align3_wavefront, wavefront_sweep


def test_wavefront_score_only_n60(benchmark, dna_scheme, family60):
    benchmark(
        lambda: wavefront_sweep(*family60, dna_scheme, score_only=True)
    )


def test_wavefront_with_traceback_n60(benchmark, dna_scheme, family60):
    benchmark(align3_wavefront, *family60, dna_scheme)


def test_hirschberg_n60(benchmark, dna_scheme, family60):
    benchmark(
        align3_hirschberg, *family60, dna_scheme, base_cells=30_000
    )


def test_hirschberg_n80(benchmark, dna_scheme, family80):
    benchmark(
        align3_hirschberg, *family80, dna_scheme, base_cells=60_000
    )
