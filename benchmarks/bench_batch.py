"""Throughput layer — batched serving vs per-request cold starts.

A duplicate-heavy batch (75% repeats, the serving-workload shape the
batching issue targets) through :func:`repro.batch.run_batch` against the
same requests as a serial ``align3`` loop. The batch side should win by
at least the dedup ratio; ``tools/check_batch.py`` enforces the >= 2x
acceptance bound in CI, these benchmarks provide the numbers — and each
test records its timing plus dedup accounting as one row of the
run-record database via the session ``run_recorder`` fixture.
"""

import pytest

from repro.batch import AlignmentRequest, BatchScheduler, run_batch
from repro.cache import ResultCache
from repro.core.api import align3
from repro.seqio.generate import mutated_family

#: 6 unique ~40-mer triples, each requested 4 times -> 24 requests.
UNIQUE = 6
REPEATS = 4

#: Shared run-row config: the workload shape, for config-hash grouping.
_CONFIG = {"unique": UNIQUE, "repeats": REPEATS, "n": 40}


def _timing_metrics(benchmark) -> dict:
    """pytest-benchmark stats as flat run-row metrics.

    Empty under ``--benchmark-disable``, where the fixture runs the
    callable once without collecting stats.
    """
    try:
        stats = benchmark.stats.stats
    except AttributeError:
        return {}
    return {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "max_s": stats.max,
        "rounds": float(stats.rounds),
    }


@pytest.fixture(scope="module")
def duplicate_heavy(dna_scheme):
    triples = [tuple(mutated_family(40, seed=100 + i)) for i in range(UNIQUE)]
    reqs = [
        AlignmentRequest(seqs=t, scheme=dna_scheme)
        for _ in range(REPEATS)
        for t in triples
    ]
    return reqs


def test_serial_align3_loop(benchmark, duplicate_heavy, run_recorder):
    def serial():
        return [align3(*r.seqs, r.scheme) for r in duplicate_heavy]

    alns = benchmark(serial)
    assert len(alns) == UNIQUE * REPEATS
    run_recorder("bench_batch_serial", _timing_metrics(benchmark), _CONFIG)


def test_batch_cold_cache(benchmark, duplicate_heavy, run_recorder):
    """In-batch dedup alone: a fresh cache every round."""

    def batch():
        return run_batch(duplicate_heavy, cache=ResultCache(), workers=1)

    report = benchmark(batch)
    assert report.stats.computed == UNIQUE
    assert report.stats.dedup_ratio >= 0.5
    run_recorder(
        "bench_batch_cold",
        {**_timing_metrics(benchmark),
         "dedup_ratio": report.stats.dedup_ratio},
        _CONFIG,
    )


def test_batch_warm_cache(benchmark, duplicate_heavy, dna_scheme, run_recorder):
    """Steady-state serving: long-lived scheduler, every request a hit."""
    cache = ResultCache()
    with BatchScheduler(cache=cache, workers=1) as sched:
        sched.run(duplicate_heavy)  # warm up

        report = benchmark(sched.run, duplicate_heavy)
    assert report.stats.computed == 0
    assert report.stats.cache_hits == UNIQUE
    assert report.stats.dedup_ratio == 1.0
    run_recorder(
        "bench_batch_warm",
        {**_timing_metrics(benchmark),
         "dedup_ratio": report.stats.dedup_ratio,
         "cache_hit_rate": cache.stats.hit_rate},
        _CONFIG,
    )
