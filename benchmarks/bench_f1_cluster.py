"""F1/F2/F6 — the cluster simulator itself.

Benchmarks the event-driven schedule simulation at the paper-scale problem
and processor counts (the figures' data generators must be cheap enough to
sweep).
"""

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.machine import ethernet_2007
from repro.cluster.metrics import sweep_procs
from repro.cluster.simulate import simulate_wavefront


def test_simulate_n200_p16(benchmark):
    grid = BlockGrid.for_sequences(200, 200, 200, 16)
    machine = ethernet_2007(16)
    result = benchmark(simulate_wavefront, grid, machine)
    assert result.speedup > 1


def test_simulate_n400_p64(benchmark):
    grid = BlockGrid.for_sequences(400, 400, 400, 16)
    machine = ethernet_2007(64)
    result = benchmark(simulate_wavefront, grid, machine)
    assert result.speedup > 8


def test_full_f1_sweep(benchmark):
    benchmark(
        sweep_procs, 200, (1, 2, 4, 8, 16, 32, 64), ethernet_2007(1), 16
    )
