"""Extension engines: local, semiglobal, banded, co-optimal counting, MSA.

Not paper tables — throughput guards for the optional/extension features so
regressions in their kernels are visible next to the core numbers.
"""

from repro.core.band import align3_banded
from repro.core.countopt import count_optimal
from repro.core.local import score3_local
from repro.core.semiglobal import score3_semiglobal
from repro.msa.progressive import align_msa
from repro.seqio.generate import mutated_family


def test_local_n60(benchmark, dna_scheme, family60):
    benchmark(score3_local, *family60, dna_scheme)


def test_semiglobal_n60(benchmark, dna_scheme, family60):
    benchmark(score3_semiglobal, *family60, dna_scheme)


def test_banded_certified_n60(benchmark, dna_scheme, family60):
    benchmark(align3_banded, *family60, dna_scheme)


def test_count_optimal_n20(benchmark, dna_scheme, family20):
    benchmark(count_optimal, *family20, dna_scheme)


def test_msa_six_sequences(benchmark, dna_scheme):
    fam = mutated_family(60, count=6, seed=9)
    benchmark(align_msa, fam, dna_scheme)
