"""T4 — affine vs linear gap model (7-state overhead factor)."""

from repro.core.affine import score3_affine
from repro.core.wavefront import score3_wavefront
from repro.seqio.datasets import bundled_sequences


def test_linear_globins(benchmark, protein_scheme):
    seqs = bundled_sequences("globins")
    benchmark(score3_wavefront, *seqs, protein_scheme)


def test_affine_globins(benchmark, protein_scheme):
    seqs = bundled_sequences("globins")
    scheme = protein_scheme.with_gaps(gap=-2.0, gap_open=-10.0)
    benchmark(score3_affine, *seqs, scheme)


def test_affine_dna_n60(benchmark, dna_scheme, family60):
    scheme = dna_scheme.with_gaps(gap=-4.0, gap_open=-10.0)
    benchmark(score3_affine, *family60, scheme)
