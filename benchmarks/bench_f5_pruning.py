"""F5 — Carrillo–Lipman pruning: mask construction and pruned sweep."""

import pytest

from repro.core.bounds import carrillo_lipman_mask
from repro.core.wavefront import score3_wavefront


@pytest.fixture(scope="module")
def masks(dna_scheme, family60, family60_diverged):
    similar, _ = carrillo_lipman_mask(*family60, dna_scheme)
    diverged, _ = carrillo_lipman_mask(*family60_diverged, dna_scheme)
    return similar, diverged


def test_mask_construction_n60(benchmark, dna_scheme, family60):
    benchmark(carrillo_lipman_mask, *family60, dna_scheme)


def test_full_sweep_n60(benchmark, dna_scheme, family60):
    benchmark(score3_wavefront, *family60, dna_scheme)


def test_pruned_sweep_similar_n60(benchmark, dna_scheme, family60, masks):
    benchmark(score3_wavefront, *family60, dna_scheme, mask=masks[0])


def test_pruned_sweep_diverged_n60(
    benchmark, dna_scheme, family60_diverged, masks
):
    benchmark(
        score3_wavefront, *family60_diverged, dna_scheme, mask=masks[1]
    )
