"""T3 — exact vs heuristic aligners (the cost of optimality).

The heuristics run pairwise-sized work; exact runs the cube. The benchmark
quantifies the runtime ratio the optimality gap buys back.
"""

from repro.core.wavefront import align3_wavefront
from repro.heuristics import align3_centerstar, align3_progressive


def test_exact_n60(benchmark, dna_scheme, family60):
    benchmark(align3_wavefront, *family60, dna_scheme)


def test_centerstar_n60(benchmark, dna_scheme, family60):
    benchmark(align3_centerstar, *family60, dna_scheme)


def test_progressive_n60(benchmark, dna_scheme, family60):
    benchmark(align3_progressive, *family60, dna_scheme)
