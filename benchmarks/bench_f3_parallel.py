"""F3 — measured shared-memory parallel engines on this machine.

Compares the serial wavefront against the multiprocess and thread-pool
engines at the same problem size; the speedup ratio is the figure's
measured series.
"""

import multiprocessing as mp

import pytest

from repro.core.wavefront import score3_wavefront
from repro.parallel.executor import WavefrontPool
from repro.parallel.shared import score3_shared
from repro.parallel.threads import score3_threads

_CORES = mp.cpu_count()


@pytest.fixture(scope="module")
def pool(dna_scheme):
    with WavefrontPool((100, 100, 100), workers=_CORES) as p:
        # Warm the workers before timing.
        p.score3("ACGT", "ACG", "AGT", dna_scheme)
        yield p


def test_serial_baseline_n80(benchmark, dna_scheme, family80):
    benchmark(score3_wavefront, *family80, dna_scheme)


def test_shared_workers_n80(benchmark, dna_scheme, family80):
    benchmark(score3_shared, *family80, dna_scheme, workers=_CORES)


def test_threads_workers_n80(benchmark, dna_scheme, family80):
    benchmark(score3_threads, *family80, dna_scheme, workers=_CORES)


def test_pool_workers_n80(benchmark, dna_scheme, family80, pool):
    benchmark(pool.score3, *family80, dna_scheme)
