"""Unit tests for the persistent worker pool (repro.parallel.executor)."""

import pytest

from repro.core.dp3d import score3_dp3d
from repro.core.wavefront import align3_wavefront
from repro.parallel.executor import WavefrontPool
from repro.parallel.shared import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def pool():
    with WavefrontPool((30, 30, 30), workers=2) as p:
        yield p


class TestPoolCorrectness:
    @needs_fork
    def test_scores_match_reference(self, pool, dna_scheme, small_triples):
        for triple in small_triples:
            got = pool.score3(*triple, dna_scheme)
            assert got == pytest.approx(score3_dp3d(*triple, dna_scheme)), triple

    @needs_fork
    def test_alignments_bit_identical_to_serial(
        self, pool, dna_scheme, family_small
    ):
        a = pool.align3(*family_small, dna_scheme)
        b = align3_wavefront(*family_small, dna_scheme)
        assert a.rows == b.rows
        assert a.score == b.score

    @needs_fork
    def test_many_jobs_reuse_buffers(self, pool, dna_scheme):
        from repro.seqio.generate import mutated_family

        # Interleave sizes so stale buffer contents would be caught.
        for n in (25, 5, 18, 1, 25, 12):
            fam = mutated_family(n, seed=n)
            got = pool.score3(*fam, dna_scheme)
            assert got == pytest.approx(score3_dp3d(*fam, dna_scheme)), n

    @needs_fork
    def test_empty_sequences(self, pool, dna_scheme):
        assert pool.score3("", "", "", dna_scheme) == 0.0
        aln = pool.align3("ACGT", "", "", dna_scheme)
        assert aln.sequences() == ("ACGT", "", "")

    @needs_fork
    def test_scheme_change_between_jobs(self, pool, dna_scheme, family_small):
        loose = dna_scheme.with_gaps(gap=-1.0)
        got_default = pool.score3(*family_small, dna_scheme)
        got_loose = pool.score3(*family_small, loose)
        assert got_loose == pytest.approx(score3_dp3d(*family_small, loose))
        assert got_default == pytest.approx(
            score3_dp3d(*family_small, dna_scheme)
        )
        assert got_loose >= got_default  # cheaper gaps never score lower


class TestPoolGuards:
    def test_capacity_enforced(self, pool, dna_scheme):
        with pytest.raises(ValueError, match="exceed pool capacity"):
            pool.score3("A" * 40, "A", "A", dna_scheme)

    def test_affine_rejected(self, pool, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            pool.score3("A", "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-1))

    def test_closed_pool_rejects_jobs(self, dna_scheme):
        p = WavefrontPool((5, 5, 5), workers=1)
        p.close()
        with pytest.raises(RuntimeError, match="closed"):
            p.score3("A", "A", "A", dna_scheme)

    def test_double_close_is_idempotent(self):
        p = WavefrontPool((5, 5, 5), workers=2)
        p.close()
        p.close()

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            WavefrontPool((5, 5, 5), workers=0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WavefrontPool((-1, 5, 5), workers=1)


class TestSerialFallback:
    def test_single_worker_pool(self, dna_scheme, family_small):
        with WavefrontPool((30, 30, 30), workers=1) as p:
            got = p.score3(*family_small, dna_scheme)
            assert got == pytest.approx(score3_dp3d(*family_small, dna_scheme))
            aln = p.align3(*family_small, dna_scheme)
            assert aln.meta["serial_fallback"] is True
