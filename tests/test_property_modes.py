"""Property-based tests for the extension engines: local, semiglobal,
banded, and the N-sequence MSA."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.band import align3_banded
from repro.core.dp3d import score3_dp3d
from repro.core.local import align3_local, score3_local
from repro.core.scoring import default_scheme_for
from repro.core.semiglobal import align3_semiglobal, score3_semiglobal
from repro.msa.progressive import align_msa
from repro.seqio.alphabet import DNA

SCHEME = default_scheme_for(DNA)

dna_seq = st.text(alphabet="ACGT", min_size=0, max_size=9)
triple = st.tuples(dna_seq, dna_seq, dna_seq)

COMMON = dict(deadline=None, max_examples=30)


@settings(**COMMON)
@given(triple)
def test_mode_ordering(seqs):
    """global <= semiglobal <= local, and local >= 0."""
    g = score3_dp3d(*seqs, SCHEME)
    sg = score3_semiglobal(*seqs, SCHEME)
    loc = score3_local(*seqs, SCHEME)
    assert g <= sg + 1e-9
    assert sg <= loc + 1e-9
    assert loc >= 0


@settings(**COMMON)
@given(triple)
def test_banded_always_certified_optimal(seqs):
    aln = align3_banded(*seqs, SCHEME)
    assert aln.meta["band_certified"]
    assert abs(aln.score - score3_dp3d(*seqs, SCHEME)) < 1e-9


@settings(**COMMON)
@given(triple)
def test_local_alignment_is_feasible_and_consistent(seqs):
    aln = align3_local(*seqs, SCHEME)
    assert abs(SCHEME.sp_score(aln.rows) - aln.score) < 1e-9
    for row, seq, span in zip(aln.rows, seqs, aln.meta["spans"]):
        assert row.replace("-", "") == seq[span[0] : span[1]]


@settings(**COMMON)
@given(triple)
def test_semiglobal_covers_inputs_and_core_scores(seqs):
    aln = align3_semiglobal(*seqs, SCHEME)
    assert aln.sequences() == seqs
    lo, hi = aln.meta["core"]
    core = tuple(r[lo:hi] for r in aln.rows)
    assert abs(SCHEME.sp_score(core) - aln.score) < 1e-9


@settings(**COMMON)
@given(triple)
def test_local_invariant_under_padding_with_junk(seqs):
    """Appending strongly-mismatching junk to every sequence can only keep
    or raise the local optimum (never lower it)."""
    base = score3_local(*seqs, SCHEME)
    padded = tuple(s + "T" * 0 + "A" for s in seqs)  # shared char may help
    padded_score = score3_local(*padded, SCHEME)
    assert padded_score >= base - 1e-9


@settings(deadline=None, max_examples=12)
@given(st.lists(dna_seq, min_size=2, max_size=5))
def test_msa_roundtrip_and_sp_consistency(seqs):
    msa = align_msa(list(seqs), SCHEME)
    assert msa.sequences() == tuple(seqs)
    # The SP score computed by the container equals a manual column sum
    # over all pairs.
    manual = 0.0
    for a in range(msa.depth):
        for b in range(a + 1, msa.depth):
            for x, y in zip(msa.rows[a], msa.rows[b]):
                manual += SCHEME.pair_score(x, y)
    assert abs(msa.sp_score(SCHEME) - manual) < 1e-9


@settings(deadline=None, max_examples=12)
@given(dna_seq, dna_seq, dna_seq)
def test_msa_exact_triples_matches_engine(sa, sb, sc):
    msa = align_msa([sa, sb, sc], SCHEME, exact_triples=True)
    assert abs(msa.sp_score(SCHEME) - score3_dp3d(sa, sb, sc, SCHEME)) < 1e-9
