"""Unit tests for repro.core.scoring."""

import numpy as np
import pytest

from repro.core.matrices import dna_simple, unit_matrix
from repro.core.scoring import (
    PAIR_BOTH,
    PAIR_NEITHER,
    PAIR_ONLY_FIRST,
    PAIR_ONLY_SECOND,
    ScoringScheme,
    default_scheme_for,
    pair_state,
    scheme_from_records,
)
from repro.seqio.alphabet import DNA, PROTEIN


@pytest.fixture
def dna():
    return default_scheme_for(DNA)


class TestConstruction:
    def test_matrix_shape_checked(self):
        with pytest.raises(ValueError, match="does not match"):
            ScoringScheme(DNA, np.zeros((3, 3)), gap=-1)

    def test_matrix_symmetry_checked(self):
        m = dna_simple()
        m = m.copy()
        m[0, 1] = 99
        with pytest.raises(ValueError, match="symmetric"):
            ScoringScheme(DNA, m, gap=-1)

    def test_positive_gap_open_rejected(self):
        with pytest.raises(ValueError, match="gap_open"):
            ScoringScheme(DNA, dna_simple(), gap=-1, gap_open=2)

    def test_matrix_readonly(self, dna):
        with pytest.raises((ValueError, RuntimeError)):
            dna.matrix[0, 0] = 42

    def test_is_affine(self, dna):
        assert not dna.is_affine
        assert dna.with_gaps(gap=-2, gap_open=-5).is_affine

    def test_with_gaps_preserves_matrix(self, dna):
        other = dna.with_gaps(gap=-3)
        assert np.array_equal(other.matrix, dna.matrix)
        assert other.gap == -3


class TestPairScore:
    def test_match(self, dna):
        assert dna.pair_score("A", "A") == 5.0

    def test_mismatch(self, dna):
        assert dna.pair_score("A", "C") == -4.0

    def test_residue_gap(self, dna):
        assert dna.pair_score("A", "-") == -6.0
        assert dna.pair_score("-", "G") == -6.0

    def test_gap_gap_zero(self, dna):
        assert dna.pair_score("-", "-") == 0.0

    def test_symmetry(self, dna):
        for x in "ACGT-":
            for y in "ACGT-":
                assert dna.pair_score(x, y) == dna.pair_score(y, x)


class TestColumnScore:
    def test_all_match(self, dna):
        assert dna.column_score("A", "A", "A") == 15.0

    def test_one_gap(self, dna):
        # pairs: (A,A)=5, (A,-)=-6, (A,-)=-6
        assert dna.column_score("A", "A", "-") == 5.0 - 12.0

    def test_two_gaps(self, dna):
        # pairs: (A,-)=-6, (A,-)=-6, (-,-)=0
        assert dna.column_score("A", "-", "-") == -12.0

    def test_move_delta_score_matches_column_score(self, dna):
        sa, sb, sc = "AC", "GT", "CA"
        for move in range(1, 8):
            i = 1 if move & 1 else 0
            j = 1 if move & 2 else 0
            k = 1 if move & 4 else 0
            got = dna.move_delta_score(move, sa, sb, sc, max(i, 1), max(j, 1), max(k, 1))
            ca = sa[0] if move & 1 else "-"
            cb = sb[0] if move & 2 else "-"
            cc = sc[0] if move & 4 else "-"
            assert got == dna.column_score(ca, cb, cc)


class TestSpScore:
    def test_empty_alignment(self, dna):
        assert dna.sp_score(("", "", "")) == 0.0

    def test_single_column(self, dna):
        assert dna.sp_score(("A", "A", "A")) == 15.0

    def test_unequal_rows_rejected(self, dna):
        with pytest.raises(ValueError, match="unequal"):
            dna.sp_score(("AC", "A", "AC"))

    def test_additivity_over_columns(self, dna):
        rows = ("AC-G", "A-TG", "-CTG")
        total = dna.sp_score(rows)
        by_col = sum(dna.column_score(*col) for col in zip(*rows))
        assert total == pytest.approx(by_col)


class TestAffineScorers:
    @pytest.fixture
    def aff(self, dna):
        return dna.with_gaps(gap=-2.0, gap_open=-10.0)

    def test_no_gaps_same_as_linear_matrix_part(self, aff):
        rows = ("ACGT", "ACGT", "ACGT")
        assert aff.sp_score_affine_quasinatural(rows) == aff.sp_score(rows)

    def test_single_gap_run_charged_once(self, aff):
        rows = ("AAAA", "A--A", "AAAA")
        # Pair (A,B): run of 2 gaps -> open once + 2 extends.
        # Pair (A,C): all matches. Pair (B,C): same run against C.
        expected = (
            2 * aff.pair_score("A", "A") + (-10.0) + 2 * (-2.0)  # A vs B
            + 4 * aff.pair_score("A", "A")  # A vs C
            + 2 * aff.pair_score("A", "A") + (-10.0) + 2 * (-2.0)  # B vs C
        )
        assert aff.sp_score_affine_quasinatural(rows) == pytest.approx(expected)

    def test_two_runs_charged_twice(self, aff):
        # B's gaps form two runs here versus one run in the comparison
        # alignment; the gap pattern appears in both the (A,B) and (B,C)
        # projections, so two extra opens are charged in total.
        rows = ("AAAAA", "A-A-A", "AAAAA")
        got = aff.sp_score_affine_quasinatural(rows)
        one_run = aff.sp_score_affine_quasinatural(("AAAAA", "A--AA", "AAAAA"))
        assert got == pytest.approx(one_run - 2 * 10.0)

    def test_alternating_directions_agree_across_conventions(self, aff):
        # Pair states change every column (no both-gap interruptions), so
        # natural and quasi-natural charge identically.
        rows = ("A-A", "-A-", "AAA")
        qn = aff.sp_score_affine_quasinatural(rows)
        nat = aff.sp_score_affine_natural(rows)
        assert qn == pytest.approx(nat)

    def test_natural_vs_quasinatural_divergence(self, aff):
        # Pair (A,B) columns: (A,-), (-,-), (A,-) — a gap in B interrupted
        # by a column where the whole pair is gapped. Natural bridges the
        # interruption (one open); quasi-natural charges a reopening.
        # The other two pairs cost the same under both conventions.
        rows = ("A-A", "---", "-A-")
        qn = aff.sp_score_affine_quasinatural(rows)
        nat = aff.sp_score_affine_natural(rows)
        assert qn == pytest.approx(nat - 10.0)

    def test_affine_never_above_linear_with_zero_open(self, dna):
        zero_open = dna.with_gaps(gap=dna.gap, gap_open=0.0)
        rows = ("AC-G", "A-TG", "-CTG")
        assert zero_open.sp_score_affine_quasinatural(rows) == pytest.approx(
            dna.sp_score(rows)
        )


class TestPairState:
    def test_both(self):
        assert pair_state(7, 0, 1) == PAIR_BOTH

    def test_only_first(self):
        assert pair_state(1, 0, 1) == PAIR_ONLY_FIRST

    def test_only_second(self):
        assert pair_state(2, 0, 1) == PAIR_ONLY_SECOND

    def test_neither(self):
        assert pair_state(4, 0, 1) == PAIR_NEITHER

    def test_pair_ac(self):
        assert pair_state(5, 0, 2) == PAIR_BOTH
        assert pair_state(3, 0, 2) == PAIR_ONLY_FIRST


class TestTransitionTable:
    def test_linear_scheme_table_has_no_opens(self, dna):
        t = dna.affine_transition_table()
        # Every move's gap cost is independent of the previous move.
        for m in range(1, 8):
            assert len(set(t[:, m])) == 1

    def test_affine_start_charges_all_opens(self, dna):
        aff = dna.with_gaps(gap=-2.0, gap_open=-10.0)
        t = aff.affine_transition_table()
        # Move 1 (A only): two residue/gap pairs -> 2 extends + 2 opens
        # from the start state.
        assert t[0, 1] == pytest.approx(2 * (-2.0) + 2 * (-10.0))
        # Continuing move 1 after move 1: runs continue, no opens.
        assert t[1, 1] == pytest.approx(2 * (-2.0))

    def test_all_match_move_costs_nothing(self, dna):
        aff = dna.with_gaps(gap=-2.0, gap_open=-10.0)
        t = aff.affine_transition_table()
        assert np.all(t[:, 7] == 0.0)


class TestProfileMatrices:
    def test_shapes(self, dna):
        sab, sac, sbc = dna.profile_matrices("ACG", "AC", "A")
        assert sab.shape == (3, 2)
        assert sac.shape == (3, 1)
        assert sbc.shape == (2, 1)

    def test_values(self, dna):
        sab, _, _ = dna.profile_matrices("AC", "AG", "")
        assert sab[0, 0] == 5.0  # A vs A
        assert sab[1, 1] == -4.0  # C vs G

    def test_empty_sequences(self, dna):
        sab, sac, sbc = dna.profile_matrices("", "", "")
        assert sab.shape == (0, 0)


class TestDefaults:
    def test_protein_default_is_blosum(self):
        s = default_scheme_for(PROTEIN)
        assert s.name == "blosum62"
        assert s.gap == -8.0

    def test_dna_default(self):
        assert default_scheme_for(DNA).name == "dna5-4"

    def test_scheme_from_records(self):
        s = scheme_from_records([("a", "ACGT"), ("b", "GGTT")])
        assert s.alphabet.name == "dna"

    def test_scheme_from_records_protein(self):
        s = scheme_from_records([("a", "MVLSPADK")])
        assert s.alphabet.name == "protein"

    def test_scheme_from_records_empty(self):
        with pytest.raises(ValueError):
            scheme_from_records([])
