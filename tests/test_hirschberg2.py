"""Unit tests for linear-space pairwise alignment (repro.pairwise.hirschberg2)."""

import pytest

from repro.pairwise.hirschberg2 import align2_linear_space
from repro.pairwise.nw import score2
from repro.seqio.generate import random_sequence


class TestOptimality:
    @pytest.mark.parametrize(
        "pair",
        [
            ("", ""),
            ("A", ""),
            ("GATTACA", "GATCA"),
            ("A" * 200, "A" * 150),  # forces recursion past the base area
        ],
    )
    def test_matches_full_matrix_score(self, pair, dna_scheme):
        aln = align2_linear_space(*pair, dna_scheme)
        assert aln.score == pytest.approx(score2(*pair, dna_scheme))
        assert aln.sequences() == pair

    def test_random_long(self, dna_scheme):
        sx = random_sequence(180, seed=1)
        sy = random_sequence(150, seed=2)
        aln = align2_linear_space(sx, sy, dna_scheme)
        assert aln.score == pytest.approx(score2(sx, sy, dna_scheme))
        assert aln.score_with(dna_scheme) == pytest.approx(aln.score)

    def test_engine_meta(self, dna_scheme):
        aln = align2_linear_space("GATTACA", "GATCA", dna_scheme)
        assert aln.meta["engine"] == "hirschberg2"

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            align2_linear_space(
                "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-1)
            )
