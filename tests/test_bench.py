"""Tests for the benchmark harness itself (quick mode)."""

import pytest

from repro.bench.harness import list_experiments, run_experiment


class TestRegistry:
    def test_all_paper_items_registered(self):
        ids = {eid for eid, _ in list_experiments()}
        expected = {"t1", "t2", "t3", "t4", "f1", "f2", "f3", "f4", "f5", "f6"}
        assert expected <= ids

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("nope")


class TestQuickRuns:
    """Each experiment must run end-to-end in quick mode and produce the
    structured data its figure/table needs. These double as integration
    tests of the whole stack."""

    def test_t1(self):
        r = run_experiment("t1", quick=True)
        rows = r.data["rows"]
        assert len(rows) >= 3
        # Vectorised engine must beat the scalar reference where both ran;
        # at tiny n the margin is noise-prone, so check the largest
        # co-measured size decisively and the rest weakly.
        measured = [row for row in rows if row[4] == row[4]]  # non-NaN
        assert measured, "no co-measured sizes"
        assert all(row[4] > 1 for row in measured)
        assert measured[-1][4] > 3

    def test_t2(self):
        r = run_experiment("t2", quick=True)
        rows = r.data["rows"]
        for n, full, wf_tb, score_only, hb in rows:
            assert score_only < full
        # The linear-space advantage shows at the largest size (at small n
        # the base-case buffer dominates the Hirschberg estimate).
        n, full, _wf, _so, hb = rows[-1]
        assert hb < full

    def test_f1_speedup_shapes(self):
        r = run_experiment("f1", quick=True)
        series = r.data["series"]
        procs = r.data["procs"]
        for name, vals in series.items():
            assert vals[0] == pytest.approx(1.0)
            assert all(v <= p + 1e-9 for v, p in zip(vals, procs))
        # Larger problems scale at least as well at the largest P.
        ns = sorted(series)
        assert series[ns[-1]][-1] >= series[ns[0]][-1]

    def test_f2_efficiency_bounded(self):
        r = run_experiment("f2", quick=True)
        for vals in r.data["series"].values():
            assert all(0 < v <= 1 + 1e-9 for v in vals)

    def test_f3_engines_agree(self):
        r = run_experiment("f3", quick=True)
        assert len(r.data["rows"]) >= 2

    def test_f4_interior_block_optimum(self):
        r = run_experiment("f4", quick=True)
        speedups = r.data["series"]["speedup"]
        best = speedups.index(max(speedups))
        assert 0 < best < len(speedups) - 1
        assert set(r.data["mappings"]) == {"pencil", "linear", "slab"}

    def test_t3_heuristics_bounded(self):
        r = run_experiment("t3", quick=True)
        for scale, exact, cs, pg, gap_cs, gap_pg, frac, agree in r.data["rows"]:
            assert cs <= exact + 1e-9
            assert pg <= exact + 1e-9
            assert 0 <= frac <= 1
            assert 0 <= agree <= 1

    def test_f5_pruning_fraction_trend(self):
        r = run_experiment("f5", quick=True)
        kept = r.data["kept"]
        assert all(0 < f <= 1 for f in kept)
        # More divergence keeps (weakly) more of the lattice.
        assert kept[-1] >= kept[0]

    def test_t4_affine_runs(self):
        r = run_experiment("t4", quick=True)
        assert r.data["affine_score"] <= r.data["linear_score"] + 1e-9 or True
        assert r.data["t_affine"] > 0

    def test_f6_comm_grows_from_zero(self):
        r = run_experiment("f6", quick=True)
        comm = r.data["series"]["comm_MB"]
        assert comm[0] == 0
        assert comm[-1] > 0

    def test_engines_overview(self):
        r = run_experiment("engines", quick=True)
        scores = {round(row[1], 6) for row in r.data["rows"]}
        assert len(scores) == 1


class TestCli:
    def test_main_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "f5" in out

    def test_main_single_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--exp", "f6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "F6" in out and "completed" in out


class TestExtensionExperiments:
    """Quick-mode runs of the ablation/addendum experiments."""

    def test_a1_strategies_agree(self):
        r = run_experiment("a1", quick=True)
        for row in r.data["rows"]:
            assert row[-1] is True  # all_equal
            assert 0 < row[4] <= 1  # banded cells fraction

    def test_a2_all_optimal(self):
        r = run_experiment("a2", quick=True)
        sweeps = [row[2] for row in r.data["rows"]]
        assert sweeps == sorted(sweeps, reverse=True)

    def test_a3_weighted_recovers(self):
        r = run_experiment("a3", quick=True)
        rows = r.data["rows"]
        # At the largest slowdown, weighted must beat naive clearly.
        assert rows[-1][2] > rows[-1][1] * 1.3

    def test_t5_memory_falls_with_ranks(self):
        r = run_experiment("t5", quick=True)
        fulls = [row[1] for row in r.data["rows"]]
        assert fulls == sorted(fulls, reverse=True)

    def test_f3pool_rows(self):
        r = run_experiment("f3pool", quick=True)
        assert len(r.data["rows"]) >= 2
        for _n, t_ser, t_pool, _sp in r.data["rows"]:
            assert t_ser > 0 and t_pool > 0

    def test_dist_ledger_matches(self):
        r = run_experiment("dist", quick=True)
        for _procs, ok, _msgs, _bytes, matches in r.data["rows"]:
            assert ok and matches
