"""End-to-end integration tests crossing module boundaries: FASTA in,
scheme guessing, exact + heuristic + pruned alignment, simulated scaling —
the full user workflow of the README."""

import pytest

from repro import (
    DNA,
    MutationModel,
    align3,
    align3_score,
    default_scheme_for,
    mutated_family,
    read_fasta,
    write_fasta,
)
from repro.cluster import BlockGrid, calibrate_t_cell, ethernet_2007, simulate_wavefront
from repro.core.bounds import carrillo_lipman_mask
from repro.heuristics import align3_centerstar, align3_progressive
from repro.seqio.datasets import load_dataset


class TestFastaToAlignmentPipeline:
    def test_roundtrip_through_files(self, tmp_path):
        fam = mutated_family(30, seed=3)
        path = tmp_path / "family.fasta"
        write_fasta(path, [(f"seq{i}", s) for i, s in enumerate(fam)])
        records = read_fasta(path)
        seqs = [s for _h, s in records]
        assert seqs == fam
        aln = align3(*seqs)
        assert aln.sequences() == tuple(fam)
        assert aln.meta["scheme"] == "dna5-4"

    def test_bundled_globins_full_flow(self):
        ds = load_dataset("globins")
        seqs = [s[:30] for _h, s in ds["records"]]
        aln = align3(*seqs)
        assert aln.meta["scheme"] == "blosum62"
        assert aln.identity() > 0.1  # globins are homologous


class TestExactVsHeuristicWorkflow:
    def test_quality_pipeline(self, dna_scheme):
        fam = mutated_family(35, model=MutationModel(0.2, 0.05, 0.05), seed=9)
        exact = align3(*fam, dna_scheme)
        cs = align3_centerstar(*fam, dna_scheme)
        pg = align3_progressive(*fam, dna_scheme)
        assert cs.score <= exact.score + 1e-9
        assert pg.score <= exact.score + 1e-9
        # The heuristic score is the pruning lower bound; tie it together.
        mask, stats = carrillo_lipman_mask(
            *fam, dna_scheme, lower_bound=max(cs.score, pg.score)
        )
        pruned = align3(*fam, dna_scheme, method="pruned")
        assert pruned.score == pytest.approx(exact.score)
        assert stats.kept_fraction < 0.5  # related sequences prune a lot


class TestMethodsCrossCheck:
    def test_every_method_same_optimum(self, dna_scheme):
        fam = mutated_family(25, seed=4)
        expected = align3_score(*fam, dna_scheme)
        for method in ("wavefront", "hirschberg", "pruned", "shared", "threads"):
            aln = align3(*fam, dna_scheme, method=method)
            assert aln.score == pytest.approx(expected), method


class TestCalibratedSimulation:
    def test_calibrated_cluster_prediction(self):
        t_cell = calibrate_t_cell(n=24, seed=2)
        machine = ethernet_2007(8, t_cell=t_cell)
        grid = BlockGrid.for_sequences(100, 100, 100, 16)
        res = simulate_wavefront(grid, machine)
        assert 1.0 < res.speedup <= 8.0
        # Predicted serial time must equal cells * t_cell.
        assert res.serial_time == pytest.approx(101**3 * t_cell)


class TestAffineWorkflow:
    def test_affine_end_to_end(self):
        scheme = default_scheme_for(DNA).with_gaps(gap=-2.0, gap_open=-8.0)
        fam = mutated_family(18, seed=6)
        aln = align3(*fam, scheme)
        assert aln.meta["engine"] == "affine"
        recomputed = scheme.sp_score_affine_quasinatural(aln.rows)
        assert recomputed == pytest.approx(aln.score)
