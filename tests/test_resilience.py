"""Tests for the fault-tolerance layer (repro.resilience) and its wiring
into the parallel engines, the cluster runtime, the API and the CLI."""

import queue
import warnings

import numpy as np
import pytest

from repro.core.api import align3
from repro.core.dp3d import align3_dp3d, score3_dp3d
from repro.parallel.executor import WavefrontPool
from repro.parallel.shared import align3_shared, fork_available
from repro.resilience import faults
from repro.resilience.degrade import (
    DegradePlan,
    estimate_bytes,
    memory_budget,
    plan_method,
)
from repro.resilience.errors import (
    DegradationWarning,
    DegradedRun,
    FaultSpecError,
    ProtocolError,
    WorkerFailure,
)
from repro.resilience.retry import (
    DEFAULT_DEADLINE,
    comm_deadline,
    corrupt_payload,
    payload_checksum,
    queue_get_with_retry,
    verify_payload,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


class TestFaultSpecs:
    def test_parse_full_spec(self):
        spec = faults.parse_spec("worker_crash@pool:worker=1,plane=25")
        assert spec.kind == "worker_crash"
        assert spec.engine == "pool"
        assert spec.worker == 1 and spec.plane == 25
        assert spec.times == 1 and spec.armed

    def test_parse_minimal_and_oom_defaults(self):
        spec = faults.parse_spec("oom:budget=4096")
        assert spec.budget == 4096
        assert spec.times == -1  # budget is read repeatedly

    def test_roundtrip_spec_string(self):
        text = "straggler@shared:worker=1,plane=7,delay=0.2"
        spec = faults.parse_spec(text)
        assert faults.parse_spec(spec.spec_string()) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "meteor_strike",
            "worker_crash:worker=zero",
            "worker_crash:worker=0",  # worker 0 is the dispatcher
            "straggler:delay=-1",
            "worker_crash:nonsense=1",
            "worker_crash:plane",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            faults.parse_spec(bad)

    def test_install_is_additive_and_clear_disarms(self):
        faults.install("worker_crash@pool:worker=1;oom:budget=1")
        assert faults.enabled and len(faults.active_specs()) == 2
        faults.clear()
        assert not faults.enabled and not faults.active_specs()

    def test_fire_consumes_shots_peek_does_not(self):
        faults.install("corrupt_ghost:rank=2")
        assert faults.peek("corrupt_ghost", rank=2) is not None
        assert faults.fire("corrupt_ghost", rank=2) is not None
        assert faults.fire("corrupt_ghost", rank=2) is None  # consumed
        assert faults.fire("corrupt_ghost", rank=1) is None  # wrong rank

    def test_derived_plane_is_deterministic_and_in_range(self):
        spec = faults.parse_spec("worker_crash:seed=3")
        planes = {spec.derived_plane(1, 90) for _ in range(5)}
        assert len(planes) == 1
        assert 1 <= planes.pop() <= 90


class TestRetryHelpers:
    def test_checksum_roundtrip_and_corruption_detected(self):
        payload = np.arange(12, dtype=np.float64).reshape(3, 4)
        crc = payload_checksum(payload)
        assert verify_payload(payload, crc)
        assert not verify_payload(corrupt_payload(payload), crc)

    def test_queue_get_retry_returns_message(self):
        q = queue.Queue()
        q.put("hello")
        assert queue_get_with_retry(q, deadline=1.0) == "hello"

    def test_queue_get_retry_raises_typed_failure(self):
        q = queue.Queue()
        with pytest.raises(WorkerFailure, match="waiting for ghost"):
            queue_get_with_retry(q, deadline=0.2, what="ghost")

    def test_liveness_probe_short_circuits_the_deadline(self):
        q = queue.Queue()

        def dead_peer():
            raise WorkerFailure("peer died")

        with pytest.raises(WorkerFailure, match="peer died"):
            queue_get_with_retry(q, deadline=30.0, liveness=dead_peer)

    def test_comm_deadline_reads_env_with_floor(self):
        assert comm_deadline({}) == DEFAULT_DEADLINE
        assert comm_deadline({"REPRO_COMM_TIMEOUT": "12.5"}) == 12.5
        assert comm_deadline({"REPRO_COMM_TIMEOUT": "0.001"}) == 0.1

    def test_comm_deadline_falls_back_on_garbage(self, capsys):
        # A typo'd environment must not crash a worker mid-alignment:
        # warn on stderr and use the default.
        assert comm_deadline(
            {"REPRO_COMM_TIMEOUT": "sixty"}
        ) == DEFAULT_DEADLINE
        err = capsys.readouterr().err
        assert "warning" in err and "sixty" in err


@pytest.mark.chaos
class TestPoolRecovery:
    @needs_fork
    def test_crash_recovers_bit_identical(self, dna_scheme, family_small):
        ref = align3_dp3d(*family_small, dna_scheme)
        dmax = sum(len(s) for s in family_small)
        faults.install(f"worker_crash@pool:worker=1,plane={dmax // 2}")
        with WavefrontPool((25, 25, 25), workers=2) as pool:
            aln = pool.align3(*family_small, dna_scheme)
            assert aln.rows == ref.rows and aln.score == ref.score
            assert aln.meta["recoveries"] >= 1
            assert pool.failures[0].respawned
            # The pool stays usable after a recovery.
            faults.clear()
            again = pool.align3(*family_small, dna_scheme)
            assert again.rows == ref.rows

    @needs_fork
    def test_close_releases_shared_memory_after_kill(
        self, dna_scheme, family_small
    ):
        pool = WavefrontPool((25, 25, 25), workers=2)
        names = list(pool._names.values())
        # Simulate a wedged worker: kill it behind the pool's back, then
        # close() must escalate (not hang) and still unlink every segment.
        pool._procs[1].kill()
        pool._procs[1].join()
        pool.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    @needs_fork
    def test_unsupervised_pool_still_works(self, dna_scheme, family_small):
        with WavefrontPool((25, 25, 25), workers=2, supervise=False) as pool:
            aln = pool.align3(*family_small, dna_scheme)
            assert aln.score == pytest.approx(
                score3_dp3d(*family_small, dna_scheme)
            )
            assert not aln.meta["supervised"]


@pytest.mark.chaos
class TestSharedRecovery:
    @needs_fork
    def test_crash_recovers_bit_identical(self, dna_scheme, family_small):
        ref = align3_dp3d(*family_small, dna_scheme)
        dmax = sum(len(s) for s in family_small)
        faults.install(f"worker_crash@shared:worker=1,plane={dmax // 2}")
        aln = align3_shared(*family_small, dna_scheme, workers=2)
        assert aln.rows == ref.rows and aln.score == ref.score
        assert aln.meta["recoveries"] >= 1

    @needs_fork
    def test_straggler_is_tolerated(self, dna_scheme, family_small):
        ref = align3_dp3d(*family_small, dna_scheme)
        faults.install("straggler@shared:worker=1,delay=0.1,plane=10")
        aln = align3_shared(*family_small, dna_scheme, workers=2)
        assert aln.rows == ref.rows and aln.score == ref.score


@pytest.mark.chaos
class TestBlocksRecovery:
    @needs_fork
    def test_crash_recovers_bit_identical(self, dna_scheme, family_small):
        from repro.parallel.blocks import align3_blocks

        ref = align3_dp3d(*family_small, dna_scheme)
        dmax = sum(len(s) for s in family_small)
        faults.install(f"worker_crash@blocks:worker=1,plane={dmax // 2}")
        aln = align3_blocks(*family_small, dna_scheme, workers=2)
        assert aln.rows == ref.rows and aln.score == ref.score
        assert aln.meta["recoveries"] >= 1

    @needs_fork
    def test_crash_with_tube_replays_same_windows(
        self, dna_scheme, family_small
    ):
        # The satellite-2 regression: a respawned worker must inherit
        # the pre-fork per-plane tube row windows, replaying only the
        # live rows — verified by bit-identity against the serial
        # tube-pruned alignment (a full-range replay would read rows
        # the tube never computed and corrupt the boundary).
        from repro.core.bounds import carrillo_lipman_tube
        from repro.core.wavefront import align3_wavefront
        from repro.parallel.blocks import align3_blocks

        tube, _stats = carrillo_lipman_tube(*family_small, dna_scheme)
        ref = align3_wavefront(*family_small, dna_scheme, tube=tube)
        dmax = sum(len(s) for s in family_small)
        faults.install(f"worker_crash@blocks:worker=1,plane={dmax // 2}")
        aln = align3_blocks(
            *family_small, dna_scheme, workers=2, tube=tube
        )
        assert aln.rows == ref.rows and aln.score == ref.score
        assert aln.meta["recoveries"] >= 1

    @needs_fork
    def test_straggler_is_tolerated(self, dna_scheme, family_small):
        from repro.parallel.blocks import align3_blocks

        ref = align3_dp3d(*family_small, dna_scheme)
        faults.install("straggler@blocks:worker=1,delay=0.1,plane=10")
        aln = align3_blocks(*family_small, dna_scheme, workers=2)
        assert aln.rows == ref.rows and aln.score == ref.score


@pytest.mark.chaos
class TestThreadsFailFast:
    def test_injected_crash_raises_typed_failure(
        self, dna_scheme, family_small
    ):
        faults.install("worker_crash@threads:worker=1,plane=5")
        with pytest.raises(WorkerFailure) as excinfo:
            align3(*family_small, dna_scheme, method="threads")
        assert excinfo.value.failures
        assert excinfo.value.failures[0].engine == "threads"


@pytest.mark.chaos
class TestDistributedResilience:
    @needs_fork
    def test_corrupt_ghost_detected_and_resent(self, dna_scheme, family_small):
        from repro.cluster.mpirun import run_distributed

        ref = score3_dp3d(*family_small, dna_scheme)
        faults.install("corrupt_ghost@mpirun")
        res = run_distributed(*family_small, dna_scheme, block=6, procs=3)
        assert res.score == pytest.approx(ref)
        assert res.checksum_bad >= 1
        assert res.resends >= 1

    @needs_fork
    def test_rank_death_raises_with_failure_log(self, dna_scheme, family_small):
        from repro.cluster.mpirun import run_distributed

        faults.install("worker_crash@mpirun:rank=1")
        with pytest.raises(WorkerFailure) as excinfo:
            run_distributed(*family_small, dna_scheme, block=6, procs=3)
        assert excinfo.value.failures
        assert excinfo.value.failures[0].exitcode == 13

    def test_wavefront_order_violation_is_protocol_error(self):
        assert issubclass(ProtocolError, RuntimeError)


class TestDegradation:
    def test_estimates_ordered_sensibly_at_scale(self):
        dims = (300, 300, 300)
        assert estimate_bytes("dp3d", dims) > estimate_bytes(
            "wavefront", dims
        ) > estimate_bytes("hirschberg", dims)

    def test_plan_prefers_requested_method_when_it_fits(self):
        plan = plan_method("wavefront", (20, 20, 20), budget=1 << 30)
        assert isinstance(plan, DegradePlan)
        assert not plan.degraded and plan.method == "wavefront"

    def test_plan_walks_ladder_and_bottom_rung_is_accepted(self):
        plan = plan_method("dp3d", (50, 50, 50), budget=1)
        assert plan.method == "hirschberg"
        assert plan.over_budget  # nothing fits in 1 byte; attempt anyway
        assert [m for m, _ in plan.steps] == [
            "dp3d", "wavefront", "hirschberg"
        ]

    def test_oom_fault_overrides_the_budget(self):
        faults.install("oom:budget=12345")
        assert memory_budget() == 12345

    @pytest.mark.chaos
    def test_degraded_run_is_exact_and_annotated(
        self, dna_scheme, family_small
    ):
        ref = align3_dp3d(*family_small, dna_scheme)
        faults.install("oom:budget=50000")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            aln = align3(*family_small, dna_scheme, method="dp3d")
        assert aln.score == ref.score
        assert aln.meta["degraded_from"] == "dp3d"
        assert any(
            issubclass(w.category, DegradationWarning) for w in caught
        )

    def test_strict_mode_raises_degraded_run(self, dna_scheme, family_small):
        faults.install("oom:budget=50000")
        with pytest.raises(DegradedRun) as excinfo:
            align3(
                *family_small, dna_scheme, method="dp3d", allow_degrade=False
            )
        assert excinfo.value.plan.requested == "dp3d"


class TestCliExitCodes:
    def _fasta(self, tmp_path, seqs=("GATTACA", "GATCA", "GATTA")):
        path = tmp_path / "in.fasta"
        path.write_text(
            "".join(f">s{i}\n{s}\n" for i, s in enumerate(seqs))
        )
        return str(path)

    def test_bad_fault_spec_exits_5(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["align", self._fasta(tmp_path), "--inject-fault", "meteor"]
        )
        assert rc == 5
        assert "bad fault spec" in capsys.readouterr().err

    def test_forbidden_degradation_exits_4(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "align", self._fasta(tmp_path),
                "--method", "dp3d",
                "--no-degrade",
                "--inject-fault", "oom:budget=1000",
            ]
        )
        assert rc == 4
        assert "--no-degrade" in capsys.readouterr().err

    @pytest.mark.chaos
    def test_worker_failure_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "align", self._fasta(tmp_path),
                "--method", "threads",
                "--inject-fault", "worker_crash@threads:worker=1,plane=3",
            ]
        )
        assert rc == 3
        assert "worker failure" in capsys.readouterr().err

    @pytest.mark.chaos
    def test_degraded_align_still_succeeds_with_note(self, tmp_path, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rc = main(
                [
                    "align", self._fasta(tmp_path),
                    "--method", "dp3d",
                    "--inject-fault", "oom:budget=2000",
                ]
            )
        assert rc == 0
        err = capsys.readouterr().err
        assert "# degraded: dp3d ->" in err
