"""Concurrency and crash-recovery tests for the run-record store.

``RUNS.jsonl`` is shared by every benchmark and acceptance gate that
self-records, and nothing stops two of them from finishing at once (a
``check_all.py`` sweep runs gates back to back; CI may run shards in
parallel on one machine). These tests mirror
``tests/test_cache_concurrency.py`` for the disk cache tier:

- concurrent multi-process appends interleave at line granularity
  (O_APPEND), so every line stays parseable;
- a fresh reader sees every writer's rows;
- rows written by a future schema version are skipped without hiding
  their neighbours;
- a writer killed mid-append leaves a torn final line that readers skip
  and the next append repairs.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib

import pytest

from repro.runs import SCHEMA, RunStore, new_record


def _writer_proc(path: str, worker: int, n_rows: int) -> None:
    store = RunStore(pathlib.Path(path))
    for i in range(n_rows):
        store.append(
            new_record(
                "bench_kernel",
                config={"worker": worker},
                metrics={"row": float(i), "worker": float(worker)},
            )
        )


@pytest.mark.parametrize("n_procs", [2, 4])
def test_concurrent_appends_keep_every_line_parseable(tmp_path, n_procs):
    path = tmp_path / "RUNS.jsonl"
    n_rows = 25
    procs = [
        multiprocessing.Process(
            target=_writer_proc, args=(str(path), w, n_rows)
        )
        for w in range(n_procs)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    lines = path.read_bytes().splitlines(keepends=True)
    assert len(lines) == n_procs * n_rows
    for line in lines:
        assert line.endswith(b"\n")  # no interleaved/torn writes
        doc = json.loads(line)
        assert doc["schema"] == SCHEMA

    # A fresh reader sees every writer's rows, in line-atomic wholes.
    store = RunStore(path)
    recs = store.records(kind="bench_kernel")
    assert len(recs) == n_procs * n_rows
    assert store.skipped == 0
    per_worker = {}
    for rec in recs:
        w = int(rec.metric("worker"))
        per_worker[w] = per_worker.get(w, 0) + 1
    assert per_worker == {w: n_rows for w in range(n_procs)}


def test_future_schema_rows_do_not_hide_neighbours(tmp_path):
    path = tmp_path / "RUNS.jsonl"
    store = RunStore(path)
    store.append(new_record("a", metrics={"v": 1.0}))
    # A newer writer sharing the file stamps a schema this reader does
    # not understand; the row must be skipped, not fatal.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"schema":"runs/2","kind":"a","metrics":{"v":99}}\n')
    store.append(new_record("a", metrics={"v": 2.0}))
    recs = store.records()
    assert [r.metric("v") for r in recs] == [1.0, 2.0]
    assert store.skipped == 1


def test_killed_writer_leaves_recoverable_store(tmp_path):
    path = tmp_path / "RUNS.jsonl"
    store = RunStore(path)
    store.append(new_record("a", metrics={"v": 1.0}))
    # Simulate SIGKILL mid-append: half a row, no trailing newline.
    whole = json.dumps(new_record("a", metrics={"v": 2.0}).to_dict())
    with open(path, "ab") as fh:
        fh.write(whole[: len(whole) // 2].encode())

    survivor = RunStore(path)
    assert [r.metric("v") for r in survivor.records()] == [1.0]
    assert survivor.skipped == 1

    # The next append must start on a fresh line and be readable both by
    # this store object and a fresh reload.
    survivor.append(new_record("a", metrics={"v": 3.0}))
    assert [r.metric("v") for r in survivor.records()] == [1.0, 3.0]
    reloaded = RunStore(path)
    assert [r.metric("v") for r in reloaded.records()] == [1.0, 3.0]
    for line in path.read_bytes().splitlines(keepends=True):
        assert line.endswith(b"\n")


def test_reader_does_not_touch_a_torn_file(tmp_path):
    path = tmp_path / "RUNS.jsonl"
    path.write_bytes(b'{"schema":"runs/1","kind":"half')
    before = path.read_bytes()
    store = RunStore(path)
    assert store.records() == []
    assert store.skipped == 1
    assert path.read_bytes() == before  # repair happens on append only


def test_gc_after_concurrent_writes_is_consistent(tmp_path):
    path = tmp_path / "RUNS.jsonl"
    procs = [
        multiprocessing.Process(target=_writer_proc, args=(str(path), w, 10))
        for w in range(3)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    store = RunStore(path)
    kept, dropped = store.gc(keep_per_kind=5)
    assert kept == 5 and dropped == 25
    assert len(store.records()) == 5
    backup = path.with_name(path.name + ".1")
    assert len(RunStore(backup).records()) == 30
