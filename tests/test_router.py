"""Router tier: ring stability, the health state machine, backoff
budgets, key affinity, and live scatter/failover behaviour.

The unit half exercises the pieces in isolation (no sockets); the
``serve``-marked half runs a real RouterServer over real in-process
AlignServer replicas on ephemeral ports. The replica-kill chaos test
(separate processes + SIGKILL) lives in ``test_router_chaos.py``.
"""

from __future__ import annotations

import asyncio
import queue
import threading

import pytest

from repro.batch.scheduler import AlignmentRequest
from repro.cache import request_key
from repro.core.api import align3, resolve_scheme
from repro.core.scoring import default_scheme_for
from repro.resilience.retry import BackoffPolicy
from repro.router import HashRing, ReplicaHealth, RouterConfig, RouterServer
from repro.router.app import parse_replica
from repro.router.health import (
    STATE_EJECTED,
    STATE_HALF_OPEN,
    STATE_HEALTHY,
)
from repro.router.routing import (
    normalise_items,
    parse_items,
    plan_scatter,
    routing_keys,
)
from repro.seqio.alphabet import DNA
from repro.seqio.generate import mutated_family
from repro.serve import ServeClient
from repro.serve.protocol import BadRequest

from tests.test_serve import ServerThread

TRIPLE = ("GATTACA", "GATCA", "GTTACA")


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------


class TestHashRing:
    def _keys(self, n: int) -> list[str]:
        scheme = default_scheme_for(DNA)
        # Real routing keys: sha256 hexdigests of distinct requests.
        return [
            request_key((f"AC{i}GT", "ACG", "AGT"), scheme, "global", "auto")
            for i in range(n)
        ]

    def test_owner_is_deterministic_and_member(self):
        ring = HashRing(["r0", "r1", "r2"])
        for key in self._keys(50):
            owner = ring.owner(key)
            assert owner in ("r0", "r1", "r2")
            assert ring.owner(key) == owner
            assert ring.preference(key)[0] == owner

    def test_preference_is_distinct_and_covers_all(self):
        ring = HashRing(["r0", "r1", "r2", "r3"])
        for key in self._keys(20):
            pref = ring.preference(key)
            assert sorted(pref) == ["r0", "r1", "r2", "r3"]
            assert ring.preference(key, 2) == pref[:2]

    def test_adding_member_remaps_about_one_over_n(self):
        keys = self._keys(2000)
        before = HashRing(["r0", "r1", "r2"])
        owners = {k: before.owner(k) for k in keys}
        before.add("r3")
        moved = sum(1 for k in keys if before.owner(k) != owners[k])
        # Ideal is 1/4 = 0.25; vnode placement wobbles but a naive
        # mod-N rehash would move ~0.75 — assert we are far from that.
        assert 0.10 < moved / len(keys) < 0.45

    def test_removing_member_only_remaps_its_keys(self):
        keys = self._keys(500)
        ring = HashRing(["r0", "r1", "r2"])
        owners = {k: ring.owner(k) for k in keys}
        ring.remove("r1")
        for k in keys:
            if owners[k] == "r1":
                assert ring.owner(k) in ("r0", "r2")
            else:
                assert ring.owner(k) == owners[k]

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.owner("00" * 32)
        assert ring.preference("00" * 32) == []

    def test_add_remove_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1
        ring.remove("missing")
        assert ring.members == ["a"]

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


# ----------------------------------------------------------------------
# Health state machine
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def _health(**kw) -> tuple[ReplicaHealth, FakeClock]:
    clock = FakeClock()
    kw.setdefault("soft_threshold", 3)
    kw.setdefault("eject_cooldown_s", 1.0)
    kw.setdefault("max_cooldown_s", 8.0)
    return ReplicaHealth("r0", "127.0.0.1", 1, clock=clock, **kw), clock


class TestReplicaHealth:
    def test_soft_failures_accumulate_to_ejection(self):
        h, _ = _health()
        h.note_failure("timeout")
        h.note_failure("http_5xx")
        assert h.state == STATE_HEALTHY and h.routable()
        h.note_failure("timeout")
        assert h.state == STATE_EJECTED and not h.routable()

    def test_success_resets_the_soft_count(self):
        h, _ = _health()
        h.note_failure("timeout")
        h.note_failure("timeout")
        h.note_success()
        h.note_failure("timeout")
        h.note_failure("timeout")
        assert h.state == STATE_HEALTHY

    def test_connect_failure_ejects_immediately(self):
        h, _ = _health()
        h.note_failure("connect")
        assert h.state == STATE_EJECTED
        assert h.last_failure == "connect"

    def test_half_open_after_cooldown_then_readmission(self):
        h, clock = _health()
        h.note_failure("connect")
        assert not h.probe_due()  # still cooling down: no traffic at all
        clock.now += 1.1
        assert h.probe_due()
        assert h.state == STATE_HALF_OPEN
        assert not h.routable()  # probes only, no data traffic yet
        h.note_success()
        assert h.state == STATE_HEALTHY and h.routable()
        assert h.cooldown_s == 1.0  # escalation reset on recovery

    def test_half_open_failure_doubles_cooldown_capped(self):
        h, clock = _health()
        h.note_failure("connect")
        for want in (2.0, 4.0, 8.0, 8.0):
            clock.now += h.cooldown_s + 0.1
            h.tick()
            assert h.state == STATE_HALF_OPEN
            h.note_failure("timeout")
            assert h.state == STATE_EJECTED
            assert h.cooldown_s == want

    def test_backpressure_holds_off_without_ejection(self):
        h, clock = _health()
        h.note_backpressure(2.0)
        assert h.state == STATE_HEALTHY
        assert not h.routable()
        clock.now += 2.1
        assert h.routable()

    def test_draining_routes_away_without_ejection(self):
        h, _ = _health()
        h.note_draining(True)
        assert h.state == STATE_HEALTHY
        assert not h.routable()
        h.note_success()
        assert h.routable()

    def test_unknown_failure_kind_rejected(self):
        h, _ = _health()
        with pytest.raises(ValueError):
            h.note_failure("gremlins")

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            ReplicaHealth("r", "h", 1, soft_threshold=0)
        with pytest.raises(ValueError):
            ReplicaHealth("r", "h", 1, eject_cooldown_s=2.0,
                          max_cooldown_s=1.0)


# ----------------------------------------------------------------------
# Backoff policy
# ----------------------------------------------------------------------


class TestBackoffPolicy:
    def test_schedule_shape(self):
        p = BackoffPolicy(attempts=4, base_delay_s=0.1, factor=2.0,
                          cap_s=0.3)
        assert p.delays() == [0.1, 0.2, 0.3]
        assert p.total_delay_s() == pytest.approx(0.6)

    def test_single_attempt_never_sleeps(self):
        assert BackoffPolicy(attempts=1).delays() == []

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)


# ----------------------------------------------------------------------
# Routing: keys, parsing, scatter
# ----------------------------------------------------------------------


class TestRouting:
    def test_routing_keys_match_the_scheduler_derivation(self):
        items = [{"seqs": list(TRIPLE)}, {"a": "AC", "b": "AG", "c": "AT"}]
        reqs = normalise_items(items)
        keys = routing_keys(reqs)
        for req, key in zip(reqs, keys):
            scheme = resolve_scheme(req.seqs, req.scheme)
            assert key == request_key(req.seqs, scheme, req.mode, req.method)
        # Same request twice -> same key (affinity).
        assert routing_keys(normalise_items(items)) == keys

    def test_parse_items_shapes(self):
        assert parse_items({"seqs": ["A", "C", "G"]}) == [
            {"seqs": ["A", "C", "G"]}
        ]
        items = [{"seqs": ["A", "C", "G"]}, {"seqs": ["T", "C", "G"]}]
        assert parse_items({"requests": items}) == items
        for bad in ([], {"requests": []}, {"requests": "x"}, 7):
            with pytest.raises(BadRequest):
                parse_items(bad)

    def test_normalise_rejects_bad_items(self):
        with pytest.raises(BadRequest):
            normalise_items([{"seqs": ["A", "C"]}])
        with pytest.raises(BadRequest):
            normalise_items([{"nope": 1}])

    def test_scatter_groups_by_owner_preserving_positions(self):
        ring = HashRing(["r0", "r1", "r2"])
        items = [{"seqs": ["AC" + "G" * (i + 1), "ACG", "AGT"]}
                 for i in range(12)]
        keys = routing_keys(normalise_items(items))
        groups = plan_scatter(ring, items, keys,
                              routable={"r0", "r1", "r2"})
        covered = sorted(i for g in groups for i in g.indices)
        assert covered == list(range(12))
        for g in groups:
            assert [items[i] for i in g.indices] == g.items
            for i in g.indices:
                assert ring.owner(keys[i]) == g.owner

    def test_scatter_avoids_unroutable_owners(self):
        ring = HashRing(["r0", "r1"])
        items = [{"seqs": ["AC" + "G" * (i + 1), "ACG", "AGT"]}
                 for i in range(8)]
        keys = routing_keys(normalise_items(items))
        groups = plan_scatter(ring, items, keys, routable={"r1"})
        assert {g.owner for g in groups} == {"r1"}

    def test_scatter_length_mismatch_rejected(self):
        ring = HashRing(["r0"])
        with pytest.raises(ValueError):
            plan_scatter(ring, [{}], [], routable={"r0"})


# ----------------------------------------------------------------------
# RouterConfig validation
# ----------------------------------------------------------------------


class TestRouterConfig:
    def test_parse_replica_forms(self):
        assert parse_replica("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_replica("http://localhost:80/") == ("localhost", 80)
        for bad in ("nope", "host:", ":x", "host:port"):
            with pytest.raises(ValueError):
                parse_replica(bad)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"replicas": ()},
            {"replicas": ("nonsense",)},
            {"port": 70000},
            {"soft_threshold": 0},
            {"retry_attempts": 0},
            {"vnodes": 0},
            {"health_interval_s": 0},
            {"eject_cooldown_s": 2.0, "max_cooldown_s": 1.0},
            {"retry_base_delay_s": -0.1},
            {"drain_grace_s": -1.0},
        ],
    )
    def test_bad_knobs_rejected(self, overrides):
        base = {"replicas": ("127.0.0.1:9000",)}
        base.update(overrides)
        with pytest.raises(ValueError):
            RouterConfig(**base).validate()


# ----------------------------------------------------------------------
# Live router over in-process replicas
# ----------------------------------------------------------------------


class RouterThread:
    """A RouterServer on its own thread + event loop, drained on exit."""

    def __init__(self, replica_ports: list[int], **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("health_interval_s", 0.1)
        overrides.setdefault("eject_cooldown_s", 0.3)
        overrides.setdefault("retry_base_delay_s", 0.01)
        overrides.setdefault("retry_cap_s", 0.05)
        self.config = RouterConfig(
            replicas=tuple(f"127.0.0.1:{p}" for p in replica_ports),
            **overrides,
        )
        self.server: RouterServer | None = None
        self._ready: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        item = self._ready.get(timeout=30)
        if isinstance(item, BaseException):
            raise item
        self.port: int = item

    def _run(self) -> None:
        async def amain():
            self.server = RouterServer(self.config)
            try:
                _host, port = await self.server.start()
            except BaseException as exc:  # pragma: no cover - setup only
                self._ready.put(exc)
                return
            self._ready.put(port)
            await self.server.serve_until_drained()

        asyncio.run(amain())

    def __enter__(self) -> "RouterThread":
        return self

    def __exit__(self, *exc) -> None:
        assert self.server is not None
        self.server.request_drain()
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "router failed to drain"


@pytest.mark.serve
class TestRouterServer:
    def test_roundtrip_matches_direct_align3(self):
        want = align3(*TRIPLE, default_scheme_for(DNA))
        with ServerThread() as srv, \
                RouterThread([srv.port]) as rt, \
                ServeClient("127.0.0.1", rt.port) as client:
            resp = client.align(seqs=list(TRIPLE))
            assert resp.status == 200
            res = resp.body["results"][0]
            assert tuple(res["rows"]) == want.rows
            assert float(res["score"]) == want.score

    def test_scatter_merge_preserves_request_order(self):
        families = [tuple(mutated_family(10, seed=90 + i)) for i in range(6)]
        with ServerThread() as s0, ServerThread() as s1, \
                RouterThread([s0.port, s1.port]) as rt, \
                ServeClient("127.0.0.1", rt.port) as client:
            resp = client.align(requests=[
                {"id": f"q{i}", "seqs": list(f)}
                for i, f in enumerate(families)
            ])
            assert resp.status == 200
            assert resp.body["count"] == len(families)
            for i, res in enumerate(resp.body["results"]):
                assert res["index"] == i
                assert res["id"] == f"q{i}"
                want = align3(*families[i], default_scheme_for(DNA))
                assert tuple(res["rows"]) == want.rows
            # Both replicas should have seen traffic for 6 distinct
            # keys (ring spread), visible in the router's counters.
            assert rt.server.counters.merged_results == len(families)

    def test_async_job_is_namespaced_and_pollable(self):
        with ServerThread() as srv, \
                RouterThread([srv.port]) as rt, \
                ServeClient("127.0.0.1", rt.port) as client:
            resp = client.align(seqs=list(TRIPLE), want_async=True)
            assert resp.status == 202
            jid = resp.body["job"]
            assert jid.startswith("r0.")
            assert resp.body["poll"] == f"/v1/jobs/{jid}"
            for _ in range(100):
                poll = client._request("GET", f"/v1/jobs/{jid}")
                if poll.body.get("status") == "done":
                    break
                import time as _time
                _time.sleep(0.05)
            assert poll.status == 200
            assert poll.body["job"] == jid
            assert poll.body["results"][0]["rows"]

    def test_unprefixed_job_id_404(self):
        with ServerThread() as srv, \
                RouterThread([srv.port]) as rt, \
                ServeClient("127.0.0.1", rt.port) as client:
            assert client._request("GET", "/v1/jobs/job-1").status == 404
            assert client._request("GET", "/v1/jobs/r9.job-1").status == 404

    def test_draining_replica_is_routed_around(self):
        with ServerThread() as s0, ServerThread() as s1, \
                RouterThread([s0.port, s1.port]) as rt, \
                ServeClient("127.0.0.1", rt.port) as client:
            # Flip replica 0 into drain state without closing its
            # listener: healthz answers 503 draining, align sheds.
            s0.server.draining = True
            families = [tuple(mutated_family(10, seed=70 + i))
                        for i in range(4)]
            resp = client.align(requests=[
                {"seqs": list(f)} for f in families
            ])
            assert resp.status == 200
            assert resp.body["count"] == 4
            health = client.healthz()
            states = {r["name"]: r for r in health.body["replicas"]}
            assert states["r1"]["routable"]

    def test_bad_request_rejected_at_the_router(self):
        with ServerThread() as srv, \
                RouterThread([srv.port]) as rt, \
                ServeClient("127.0.0.1", rt.port) as client:
            resp = client._request("POST", "/v1/align", {"seqs": ["A", "C"]})
            assert resp.status == 400
            assert resp.body["error"]["type"] == "bad_request"

    def test_all_replicas_dead_is_a_typed_503(self):
        # Grab a port nothing listens on.
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        dead_port = sock.getsockname()[1]
        sock.close()
        with RouterThread([dead_port]) as rt, \
                ServeClient("127.0.0.1", rt.port) as client:
            resp = client.align(seqs=list(TRIPLE))
            assert resp.status == 503
            assert resp.body["error"]["type"] == "no_replicas"
            health = client.healthz()
            assert health.status == 503
            assert health.body["status"] == "no_replicas"
