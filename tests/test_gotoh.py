"""Unit tests for the affine-gap pairwise aligner (repro.pairwise.gotoh)."""

import pytest

from repro.pairwise.gotoh import align2_affine, score2_affine
from repro.pairwise.nw import score2


@pytest.fixture
def aff(dna_scheme):
    return dna_scheme.with_gaps(gap=-2.0, gap_open=-10.0)


class TestScore:
    def test_no_gaps_needed(self, aff):
        assert score2_affine("ACGT", "ACGT", aff) == pytest.approx(4 * 5.0)

    def test_single_gap_run(self, aff):
        # Align AAAA vs AA: one run of two gaps: 2 matches + open + 2 ext.
        got = score2_affine("AAAA", "AA", aff)
        assert got == pytest.approx(2 * 5.0 - 10.0 - 4.0)

    def test_empty_vs_sequence(self, aff):
        got = score2_affine("ACGT", "", aff)
        assert got == pytest.approx(-10.0 + 4 * -2.0)

    def test_both_empty(self, aff):
        assert score2_affine("", "", aff) == 0.0

    def test_linear_scheme_falls_back_to_nw(self, dna_scheme):
        got = score2_affine("GATTACA", "GATCA", dna_scheme)
        assert got == pytest.approx(score2("GATTACA", "GATCA", dna_scheme))

    def test_open_penalty_consolidates_gaps(self, dna_scheme):
        # Two sequences where linear gaps would scatter; affine must place
        # one run. Verify affine optimum <= linear optimum with same extend.
        lin = dna_scheme.with_gaps(gap=-2.0)
        aff = dna_scheme.with_gaps(gap=-2.0, gap_open=-10.0)
        sx, sy = "ACGTACGTACGT", "ACGACGT"
        assert score2_affine(sx, sy, aff) <= score2(sx, sy, lin) + 1e-9


class TestAlignment:
    def test_traceback_consumes_inputs(self, aff):
        aln = align2_affine("GATTACA", "GAACA", aff)
        assert aln.sequences() == ("GATTACA", "GAACA")

    def test_score_matches_score2(self, aff):
        aln = align2_affine("GATTACA", "GAACA", aff)
        assert aln.score == pytest.approx(score2_affine("GATTACA", "GAACA", aff))

    def test_rescoring_with_affine_scorer(self, aff):
        # Rescore the pairwise alignment with the 3-way affine scorer by
        # embedding an empty third sequence: the pair (A,B) contribution
        # plus the gap columns against C must be self-consistent.
        aln = align2_affine("AAAA", "AA", aff)
        row_a, row_b = aln.rows
        # Direct manual affine rescoring of the two rows:
        total = 0.0
        in_gap = None
        for x, y in zip(row_a, row_b):
            if x != "-" and y != "-":
                total += aff.pair_score(x, y)
                in_gap = None
            else:
                direction = "x" if y == "-" else "y"
                total += aff.gap
                if in_gap != direction:
                    total += aff.gap_open
                in_gap = direction
        assert total == pytest.approx(aln.score)

    def test_gap_runs_minimised(self, aff):
        aln = align2_affine("AAAACCCCAAAA", "AAAAAAAA", aff)
        row_b = aln.rows[1]
        runs = sum(
            1
            for idx, ch in enumerate(row_b)
            if ch == "-" and (idx == 0 or row_b[idx - 1] != "-")
        )
        assert runs == 1

    def test_empty_alignment(self, aff):
        aln = align2_affine("", "", aff)
        assert aln.rows == ("", "")
