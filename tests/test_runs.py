"""Tests for the run-record database (repro.runs).

Covers the record schema and its environment hygiene (the PR 2 env-leak
discipline: fingerprints come from platform facts, never os.environ),
the torn-line-tolerant JSONL store with schema-version skip and GC
rotation, baseline migration, the rolling-median trajectory gate with
its thin-history fallback, trend rendering, and the ``repro runs`` /
``repro report --trends`` CLI surface.
"""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.runs import (
    BASELINE_FP,
    SCHEMA,
    EnvLeakError,
    RunRecord,
    RunStore,
    assert_env_clean,
    config_hash,
    default_baseline_path,
    fingerprint_id,
    kernel_metrics,
    lower_is_better,
    machine_fingerprint,
    new_record,
    record_run,
    render_runs_table,
    render_trends,
    rolling_median,
    seed_from_baseline,
    sparkline,
    trajectory_median,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Records, hashing, environment hygiene
# ----------------------------------------------------------------------


class TestRunRecord:
    def test_round_trip_preserves_every_field(self):
        rec = new_record(
            "bench_kernel",
            config={"n": 40, "repeats": 3},
            metrics={"small_speedup": 1.5},
            wall_s=2.5,
            notes={"reason": "unit test"},
        )
        back = RunRecord.from_dict(
            json.loads(json.dumps(rec.to_dict()))
        )
        assert back.kind == "bench_kernel"
        assert back.config == {"n": 40, "repeats": 3}
        assert back.metric("small_speedup") == 1.5
        assert back.wall_s == 2.5
        assert back.fp == rec.fp
        assert back.config_hash == rec.config_hash
        assert back.notes == {"reason": "unit test"}

    def test_from_dict_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_dict({"schema": "runs/999", "kind": "x"})

    def test_from_dict_rejects_missing_kind(self):
        with pytest.raises((ValueError, KeyError)):
            RunRecord.from_dict({"schema": SCHEMA})

    def test_config_hash_ignores_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_git_provenance_captured_in_this_checkout(self):
        rec = new_record("x", git_dir=ROOT)
        assert rec.git_rev is not None and len(rec.git_rev) == 12

    def test_git_provenance_soft_fails_outside_a_repo(self, tmp_path):
        rec = new_record("x", git_dir=tmp_path)
        assert rec.git_rev is None and rec.git_dirty is False

    def test_baseline_rows_render_as_baseline(self):
        rec = RunRecord(kind="bench_kernel", t=0.0)
        assert rec.when() == "baseline"


class TestEnvHygiene:
    """The PR 2 regression tests: no os.environ contents in a record."""

    CANARY = "super-secret-environment-token-123456"

    def test_fingerprint_carries_only_platform_facts(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CANARY", self.CANARY)
        fp = machine_fingerprint()
        assert set(fp) == {"platform", "machine", "python", "cpus"}
        assert self.CANARY not in json.dumps(fp)

    def test_clean_record_serialises_env_free(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CANARY", self.CANARY)
        rec = new_record(
            "bench_kernel", config={"n": 40}, metrics={"speedup": 1.5}
        )
        text = json.dumps(rec.to_dict())
        assert self.CANARY not in text
        assert_env_clean(text)  # must not raise

    def test_poisoned_append_is_rejected_before_disk(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_CANARY", self.CANARY)
        store = RunStore(tmp_path / "RUNS.jsonl")
        rec = new_record("x", notes={"oops": self.CANARY})
        with pytest.raises(EnvLeakError, match="REPRO_TEST_CANARY"):
            store.append(rec)
        assert not store.path.exists()

    def test_environ_is_read_at_call_time_not_import_time(self, monkeypatch):
        text = f'{{"notes": "{self.CANARY}"}}'
        assert_env_clean(text)  # canary not set yet: clean
        monkeypatch.setenv("REPRO_TEST_CANARY", self.CANARY)
        with pytest.raises(EnvLeakError):
            assert_env_clean(text)

    def test_short_env_values_are_not_leaks(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "80")
        assert_env_clean('{"wall_s": 80}')


# ----------------------------------------------------------------------
# Store durability
# ----------------------------------------------------------------------


class TestRunStore:
    def test_append_and_filtered_reads(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for i in range(3):
            store.append(new_record("a", metrics={"v": float(i)}))
        store.append(new_record("b", metrics={"v": 9.0}))
        assert len(store.records()) == 4
        assert [r.metric("v") for r in store.records(kind="a")] == [
            0.0, 1.0, 2.0,
        ]
        assert store.records(kind="a", limit=2)[0].metric("v") == 1.0
        assert store.counts() == {"a": 3, "b": 1}
        fp = fingerprint_id()
        assert len(store.records(fp=fp)) == 4
        assert store.records(fp="nonexistent") == []

    def test_unknown_schema_rows_are_skipped_not_fatal(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        store.append(new_record("a", metrics={"v": 1.0}))
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write('{"schema":"runs/2","kind":"future","metrics":{}}\n')
            fh.write("not json at all\n")
        store.append(new_record("a", metrics={"v": 2.0}))
        recs = store.records()
        assert [r.metric("v") for r in recs] == [1.0, 2.0]
        assert store.skipped == 2

    def test_torn_final_line_skipped_and_repaired(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        store.append(new_record("a", metrics={"v": 1.0}))
        with open(store.path, "ab") as fh:
            fh.write(b'{"schema":"runs/1","kind":"torn","metr')
        assert len(store.records()) == 1
        assert store.skipped == 1
        # The next append newline-terminates the fragment first, so the
        # good record is never glued onto it.
        store.append(new_record("a", metrics={"v": 2.0}))
        assert [r.metric("v") for r in store.records()] == [1.0, 2.0]
        for line in store.path.read_bytes().splitlines(keepends=True):
            assert line.endswith(b"\n")

    def test_gc_keeps_newest_per_kind_and_rotates(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for i in range(5):
            store.append(new_record("a", metrics={"v": float(i)}))
        store.append(new_record("b", metrics={"v": 99.0}))
        kept, dropped = store.gc(keep_per_kind=2)
        assert (kept, dropped) == (3, 3)  # newest 2 of "a" + the 1 "b"
        assert [r.metric("v") for r in store.records(kind="a")] == [3.0, 4.0]
        assert len(store.records(kind="b")) == 1
        backup = store.path.with_name(store.path.name + ".1")
        assert backup.exists()
        # Rotation is reversible: all 6 rows survive in the backup.
        assert len(RunStore(backup).records()) == 6

    def test_gc_rejects_nonpositive_keep(self, tmp_path):
        with pytest.raises(ValueError):
            RunStore(tmp_path / "RUNS.jsonl").gc(keep_per_kind=0)

    def test_tail_lines(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for i in range(4):
            store.append(new_record("a", metrics={"v": float(i)}))
        tail = store.tail_lines(2)
        assert len(tail) == 2
        assert json.loads(tail[-1])["metrics"]["v"] == 3.0

    def test_record_run_is_best_effort(self, tmp_path, capsys):
        # Recording into an impossible path must warn, not raise.
        bad = tmp_path / "file"
        bad.write_text("x")
        rec = record_run(
            "a", metrics={"v": 1.0}, runs_file=bad / "RUNS.jsonl"
        )
        assert rec is None
        assert "run record not written" in capsys.readouterr().err
        assert record_run("a", enabled=False) is None


# ----------------------------------------------------------------------
# Baseline migration + trajectory gating
# ----------------------------------------------------------------------


class TestTrajectory:
    def test_seed_from_committed_baseline_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        seeded = seed_from_baseline(store, default_baseline_path())
        assert seeded is not None
        assert seeded.fp == BASELINE_FP
        assert seeded.when() == "baseline"
        assert seeded.metric("small_speedup") > 0
        assert seed_from_baseline(store, default_baseline_path()) is None
        assert len(store.records(kind="bench_kernel")) == 1

    def test_seed_tolerates_missing_or_foreign_baseline(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        assert seed_from_baseline(store, tmp_path / "nope.json") is None
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"schema": "something-else/1"}')
        assert seed_from_baseline(store, foreign) is None

    def test_kernel_metrics_flattens_the_committed_doc(self):
        doc = json.loads(default_baseline_path().read_text())
        metrics = kernel_metrics(doc)
        assert metrics["small_speedup"] > 0
        assert metrics["large_cells_per_s"] > 0

    def test_rolling_median(self):
        assert rolling_median([3.0]) == 3.0
        assert rolling_median([1.0, 5.0, 3.0]) == 3.0
        assert rolling_median([1.0, 2.0, 3.0, 10.0]) == 2.5
        with pytest.raises(ValueError):
            rolling_median([])

    def test_median_excludes_baseline_and_other_fingerprints(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        seed_from_baseline(store, default_baseline_path())
        for v in (1.0, 2.0, 3.0):
            store.append(
                new_record("bench_kernel", metrics={"small_speedup": v})
            )
        store.append(
            RunRecord(
                kind="bench_kernel",
                metrics={"small_speedup": 100.0},
                fp="some-other-machine",
                t=1.0,
            )
        )
        median, values = trajectory_median(
            store, "small_speedup", min_rows=3
        )
        assert median == 2.0  # neither the baseline nor the foreign row
        assert values == [1.0, 2.0, 3.0]

    def test_thin_trajectory_signals_baseline_fallback(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        store.append(new_record("bench_kernel", metrics={"small_speedup": 2.0}))
        median, values = trajectory_median(store, "small_speedup", min_rows=3)
        assert median is None
        assert values == [2.0]

    def test_window_keeps_only_newest_values(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for v in (10.0, 1.0, 2.0, 3.0):
            store.append(new_record("bench_kernel", metrics={"s": v}))
        median, values = trajectory_median(
            store, "s", window=3, min_rows=3
        )
        assert values == [1.0, 2.0, 3.0]
        assert median == 2.0

    def test_nan_values_are_dropped(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for v in (1.0, 2.0, 3.0):
            store.append(new_record("bench_kernel", metrics={"s": v}))
        rec = store.records()[0]
        assert rec.metric("missing") is None
        median, values = trajectory_median(store, "s", min_rows=3)
        assert median == 2.0 and not any(math.isnan(v) for v in values)


# ----------------------------------------------------------------------
# Trend rendering
# ----------------------------------------------------------------------


class TestTrends:
    def test_sparkline_shape(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([5.0, 5.0]) == "▄▄"
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "
        assert sparkline([]) == ""

    def test_lower_is_better_heuristic(self):
        assert lower_is_better("p99_ms")
        assert lower_is_better("shed_rate")
        assert lower_is_better("wall_s")
        assert lower_is_better("untraced_seconds")
        assert not lower_is_better("small_cells_per_s")  # despite _s suffix
        assert not lower_is_better("large_speedup")
        assert not lower_is_better("cache_hit_rate")
        assert not lower_is_better("dedup_ratio")

    def test_render_trends_flags_a_regression(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for v in (2.0, 2.0, 2.0, 1.0):  # speedup halves on the newest run
            store.append(
                new_record("bench_kernel", metrics={"small_speedup": v})
            )
        out = render_trends(store)
        assert "bench_kernel trends" in out
        assert "small_speedup" in out
        assert "REGRESSING" in out
        assert any(c in out for c in "▁▂▃▄▅▆▇█")

    def test_render_trends_flags_an_improvement(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for v in (100.0, 100.0, 100.0, 50.0):  # p99 halves: good
            store.append(new_record("bench_serve", metrics={"p99_ms": v}))
        assert "improving" in render_trends(store)

    def test_render_trends_on_empty_and_single_run_stores(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        assert "no records" in render_trends(store)
        store.append(new_record("a", metrics={"v": 1.0}))
        assert "only one recorded run" in render_trends(store)

    def test_render_runs_table(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        store.append(new_record("a", metrics={"v": 1.0}))
        out = render_runs_table(store.records(), skipped=0)
        assert "run records (1 shown)" in out
        assert "v=1" in out
        assert render_runs_table([]) == "no run records"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestRunsCli:
    @pytest.fixture()
    def store_path(self, tmp_path):
        store = RunStore(tmp_path / "RUNS.jsonl")
        for v in (1.0, 2.0, 3.0):
            store.append(
                new_record("bench_kernel", metrics={"small_speedup": v})
            )
        return store.path

    def test_runs_list(self, store_path, capsys):
        assert cli_main(
            ["runs", "list", "--runs-file", str(store_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "run records" in out and "bench_kernel" in out

    def test_runs_list_seeds_baseline_into_empty_store(
        self, tmp_path, capsys
    ):
        path = tmp_path / "RUNS.jsonl"
        assert cli_main(["runs", "list", "--runs-file", str(path)]) == 0
        assert "baseline" in capsys.readouterr().out
        assert len(RunStore(path).records(kind="bench_kernel")) == 1

    def test_runs_show_and_negative_index(self, store_path, capsys):
        assert cli_main(
            ["runs", "show", "-1", "--runs-file", str(store_path)]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == SCHEMA
        assert doc["metrics"]["small_speedup"] == 3.0

    def test_runs_show_out_of_range(self, store_path, capsys):
        assert cli_main(
            ["runs", "show", "99", "--runs-file", str(store_path)]
        ) == 2
        assert "out of range" in capsys.readouterr().err

    def test_runs_tail(self, store_path, capsys):
        assert cli_main(
            ["runs", "tail", "--limit", "2", "--runs-file", str(store_path)]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["kind"] == "bench_kernel"

    def test_runs_gc(self, store_path, capsys):
        assert cli_main(
            ["runs", "gc", "--keep", "1", "--runs-file", str(store_path)]
        ) == 0
        assert "kept" in capsys.readouterr().out
        assert len(RunStore(store_path).records()) == 1

    def test_report_trends(self, store_path, capsys):
        assert cli_main(
            ["report", "--trends", "--runs-file", str(store_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trends" in out and "small_speedup" in out

    def test_report_without_trace_or_trends_errors(self, capsys):
        assert cli_main(["report"]) == 2
        assert "trace" in capsys.readouterr().err
