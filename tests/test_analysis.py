"""Unit tests for repro.analysis (stats and comparison metrics)."""

import pytest

from repro.analysis.compare import (
    aligned_pair_sets,
    column_agreement,
    pair_agreement,
    sp_breakdown,
)
from repro.analysis.stats import alignment_stats, gap_runs
from repro.core.api import align3
from repro.heuristics import align3_centerstar
from repro.seqio.generate import MutationModel, mutated_family


class TestGapRuns:
    def test_basic(self):
        assert gap_runs("A--CG-T") == [2, 1]

    def test_leading_trailing(self):
        assert gap_runs("--AC--") == [2, 2]

    def test_no_gaps(self):
        assert gap_runs("ACGT") == []

    def test_all_gaps(self):
        assert gap_runs("---") == [3]

    def test_empty(self):
        assert gap_runs("") == []


class TestAlignmentStats:
    def test_identical_rows(self):
        s = alignment_stats(("ACGT", "ACGT", "ACGT"))
        assert s.identity == 1.0
        assert s.columns_gapless == 4
        assert s.gap_fraction == 0.0
        assert s.gap_runs == 0

    def test_mixed(self):
        s = alignment_stats(("AC-G", "A-CG", "ACCG"))
        assert s.length == 4
        assert s.columns_identical == 2  # col 0 (AAA) and col 3 (GGG)
        assert s.columns_gapless == 2
        assert s.gap_fraction == pytest.approx(2 / 12)
        assert s.gap_runs == 2
        assert s.mean_gap_run == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="no rows"):
            alignment_stats(())
        with pytest.raises(ValueError, match="unequal"):
            alignment_stats(("AC", "A"))

    def test_empty_alignment(self):
        s = alignment_stats(("", ""))
        assert s.length == 0
        assert s.identity == 0.0


class TestAlignedPairSets:
    def test_simple(self):
        sets = aligned_pair_sets(("AC", "AC"))
        assert sets[(0, 1)] == {(0, 0), (1, 1)}

    def test_gaps_drop_pairs(self):
        sets = aligned_pair_sets(("A-C", "AGC"))
        assert sets[(0, 1)] == {(0, 0), (1, 2)}

    def test_three_rows(self):
        sets = aligned_pair_sets(("A", "A", "A"))
        assert all(s == {(0, 0)} for s in sets.values())


class TestAgreement:
    def test_identical_alignments(self):
        rows = ("AC-G", "A-CG", "ACCG")
        assert pair_agreement(rows, rows) == 1.0
        assert column_agreement(rows, rows) == 1.0

    def test_different_sequences_rejected(self):
        with pytest.raises(ValueError, match="same sequences"):
            pair_agreement(("AC", "AC"), ("AG", "AC"))

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row counts"):
            pair_agreement(("AC", "AC"), ("AC", "AC", "AC"))

    def test_shifted_gap_lowers_agreement(self):
        ref = ("AAC", "AAC")
        cand = ("AAC-", "-AAC")
        # cand aligns (1,0) and (2,1); ref aligns (0,0),(1,1),(2,2).
        assert pair_agreement(cand, ref) == 0.0
        assert column_agreement(cand, ref) == 0.0

    def test_partial_agreement(self):
        ref = ("ACG", "ACG")
        cand = ("ACG-", "AC-G")
        # cand aligns (0,0),(1,1); ref aligns those plus (2,2).
        assert pair_agreement(cand, ref) == pytest.approx(2 / 3)

    def test_empty_reference(self):
        assert pair_agreement(("A-", "-C"), ("A-", "-C")) == 1.0

    def test_heuristic_vs_exact_workflow(self, dna_scheme):
        fam = mutated_family(
            30, model=MutationModel(0.3, 0.08, 0.08), seed=30
        )
        exact = align3(*fam, dna_scheme)
        heur = align3_centerstar(*fam, dna_scheme)
        q = pair_agreement(heur.rows, exact.rows)
        assert 0.0 <= q <= 1.0
        # Equal-score alignments need not be identical, but a worse-scoring
        # heuristic cannot perfectly reproduce a strictly better optimum.
        if heur.score < exact.score - 1e-9:
            assert q < 1.0


class TestSpBreakdown:
    def test_sums_to_sp_score(self, dna_scheme):
        rows = ("AC-G", "A-CG", "ACCG")
        parts = sp_breakdown(rows, dna_scheme)
        assert sum(parts.values()) == pytest.approx(dna_scheme.sp_score(rows))
        assert set(parts) == {(0, 1), (0, 2), (1, 2)}

    def test_matches_pairwise_projection_scores(self, dna_scheme):
        rows = ("AC-G", "A-CG", "ACCG")
        parts = sp_breakdown(rows, dna_scheme)
        for (a, b), val in parts.items():
            manual = sum(
                dna_scheme.pair_score(x, y)
                for x, y in zip(rows[a], rows[b])
            )
            assert val == pytest.approx(manual)
