"""Unit tests for repro.core.traceback."""

import numpy as np
import pytest

from repro.core.traceback import path_cells, traceback_moves


def _cube_for_moves(moves, dims):
    """Build a move cube that encodes one chain ending at the far corner."""
    M = np.zeros(tuple(d + 1 for d in dims), dtype=np.int8)
    i = j = k = 0
    for m in moves:
        i += m & 1
        j += (m >> 1) & 1
        k += (m >> 2) & 1
        M[i, j, k] = m
    assert (i, j, k) == dims
    return M


class TestTracebackMoves:
    def test_simple_chain(self):
        moves = [7, 3, 4]
        M = _cube_for_moves(moves, (2, 2, 2))
        assert traceback_moves(M) == moves

    def test_empty_cube(self):
        M = np.zeros((1, 1, 1), dtype=np.int8)
        assert traceback_moves(M) == []

    def test_custom_start(self):
        moves = [7, 7]
        M = _cube_for_moves(moves, (2, 2, 2))
        assert traceback_moves(M, start=(1, 1, 1)) == [7]

    def test_start_out_of_range(self):
        M = np.zeros((2, 2, 2), dtype=np.int8)
        with pytest.raises(ValueError, match="outside cube"):
            traceback_moves(M, start=(5, 0, 0))

    def test_broken_chain_detected(self):
        M = np.zeros((2, 2, 2), dtype=np.int8)
        M[1, 1, 1] = 7  # predecessor (0,0,0) fine, but start from a hole:
        M[1, 1, 0] = 0
        with pytest.raises(RuntimeError, match="broken"):
            traceback_moves(M, start=(1, 1, 0))

    def test_invalid_move_value_detected(self):
        M = np.zeros((2, 1, 1), dtype=np.int8)
        M[1, 0, 0] = 9
        with pytest.raises(RuntimeError, match="broken"):
            traceback_moves(M)


class TestPathCells:
    def test_includes_both_endpoints(self):
        cells = path_cells([7, 1])
        assert cells[0] == (0, 0, 0)
        assert cells[-1] == (2, 1, 1)
        assert len(cells) == 3

    def test_empty(self):
        assert path_cells([]) == [(0, 0, 0)]

    def test_monotone(self):
        cells = path_cells([1, 2, 4, 7, 3, 5, 6])
        for a, b in zip(cells, cells[1:]):
            assert all(y >= x for x, y in zip(a, b))
            assert sum(b) > sum(a)
