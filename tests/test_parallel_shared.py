"""Unit tests for the multiprocess shared-memory engine."""

import pytest

from repro.core.dp3d import score3_dp3d
from repro.parallel.shared import align3_shared, fork_available, score3_shared

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestScores:
    @needs_fork
    def test_matches_reference_small(self, dna_scheme, small_triples):
        for triple in small_triples:
            got = score3_shared(*triple, dna_scheme, workers=2)
            assert got == pytest.approx(score3_dp3d(*triple, dna_scheme)), triple

    @needs_fork
    def test_matches_reference_medium(self, dna_scheme, family_medium):
        got = score3_shared(*family_medium, dna_scheme, workers=2)
        assert got == pytest.approx(score3_dp3d(*family_medium, dna_scheme))

    @needs_fork
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_worker_counts(self, workers, dna_scheme, family_small):
        got = score3_shared(*family_small, dna_scheme, workers=workers)
        assert got == pytest.approx(score3_dp3d(*family_small, dna_scheme))

    def test_single_worker_serial_path(self, dna_scheme, family_small):
        got = score3_shared(*family_small, dna_scheme, workers=1)
        assert got == pytest.approx(score3_dp3d(*family_small, dna_scheme))

    def test_workers_validated(self, dna_scheme):
        with pytest.raises(ValueError):
            score3_shared("A", "A", "A", dna_scheme, workers=0)

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            score3_shared(
                "A", "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-1)
            )


class TestAlignment:
    @needs_fork
    def test_alignment_optimal_and_consistent(self, dna_scheme, family_small):
        aln = align3_shared(*family_small, dna_scheme, workers=2)
        expected = score3_dp3d(*family_small, dna_scheme)
        assert aln.score == pytest.approx(expected)
        assert dna_scheme.sp_score(aln.rows) == pytest.approx(expected)
        assert aln.sequences() == tuple(family_small)
        assert aln.meta["workers"] == 2

    @needs_fork
    def test_empty_inputs(self, dna_scheme):
        aln = align3_shared("", "", "", dna_scheme, workers=2)
        assert aln.rows == ("", "", "")

    @needs_fork
    def test_deterministic_across_runs(self, dna_scheme, family_small):
        a = align3_shared(*family_small, dna_scheme, workers=2)
        b = align3_shared(*family_small, dna_scheme, workers=2)
        assert a.rows == b.rows
        assert a.score == b.score

    @needs_fork
    def test_bit_identical_to_serial_engine(self, dna_scheme, family_small):
        from repro.core.wavefront import align3_wavefront

        par = align3_shared(*family_small, dna_scheme, workers=2)
        ser = align3_wavefront(*family_small, dna_scheme)
        # Same deterministic argmax tie-breaking -> identical alignments.
        assert par.rows == ser.rows
