"""Unit tests for repro.core.matrices and repro.seqio.datasets."""

import numpy as np
import pytest

from repro.core.matrices import (
    blosum62,
    dna_simple,
    edit_distance_scheme,
    expand_with_wildcard,
    pam250,
    rna_simple,
    unit_matrix,
)
from repro.seqio.alphabet import DNA, PROTEIN, RNA
from repro.seqio.datasets import bundled_sequences, list_datasets, load_dataset


class TestBlosum62:
    def test_shape_includes_wildcard(self):
        assert blosum62().shape == (21, 21)

    def test_symmetric(self):
        m = blosum62()
        assert np.array_equal(m, m.T)

    def test_known_values(self):
        m = blosum62()
        enc = PROTEIN.encode
        w = int(enc("W")[0])
        assert m[w, w] == 11  # W/W is the largest diagonal entry
        a, r = int(enc("A")[0]), int(enc("R")[0])
        assert m[a, a] == 4
        assert m[a, r] == -1
        c = int(enc("C")[0])
        assert m[c, c] == 9

    def test_wildcard_neutral(self):
        m = blosum62()
        assert np.all(m[20, :] == 0)
        assert np.all(m[:, 20] == 0)

    def test_diagonal_dominates_row(self):
        # Identity always scores at least as high as any substitution.
        m = blosum62()[:20, :20]
        assert np.all(np.diag(m)[:, None] >= m)


class TestPam250:
    def test_shape_and_symmetry(self):
        m = pam250()
        assert m.shape == (21, 21)
        assert np.array_equal(m, m.T)

    def test_known_values(self):
        m = pam250()
        enc = PROTEIN.encode
        w = int(enc("W")[0])
        assert m[w, w] == 17
        c, w2 = int(enc("C")[0]), int(enc("W")[0])
        assert m[c, w2] == -8


class TestSimpleMatrices:
    def test_dna_simple_defaults(self):
        m = dna_simple()
        assert m.shape == (5, 5)
        assert m[0, 0] == 5 and m[0, 1] == -4

    def test_dna_simple_custom(self):
        m = dna_simple(match=1, mismatch=0)
        assert m[1, 1] == 1 and m[1, 2] == 0

    def test_rna_simple(self):
        assert rna_simple().shape == (5, 5)

    def test_unit_matrix(self):
        m = unit_matrix(DNA)
        assert m[2, 2] == 1 and m[2, 3] == -1

    def test_unit_matrix_protein(self):
        assert unit_matrix(PROTEIN).shape == (21, 21)


class TestExpandWithWildcard:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            expand_with_wildcard(np.zeros((3, 3)), DNA)

    def test_no_wildcard_alphabet_passthrough(self):
        from repro.seqio.alphabet import Alphabet

        alpha = Alphabet("toy", "AB")
        core = np.array([[1.0, -1.0], [-1.0, 1.0]])
        out = expand_with_wildcard(core, alpha)
        assert out.shape == (2, 2)
        assert np.array_equal(out, core)

    def test_copy_made(self):
        from repro.seqio.alphabet import Alphabet

        alpha = Alphabet("toy", "AB")
        core = np.eye(2)
        out = expand_with_wildcard(core, alpha)
        out[0, 0] = 99
        assert core[0, 0] == 1


class TestEditDistanceScheme:
    def test_negated_score_is_edit_distance_sum(self):
        # For three sequences under (0 match, -1 mismatch, -1 gap) SP
        # scoring, -optimal_score >= sum of pairwise edit distances is not
        # guaranteed in general, but for a pair plus an empty third it
        # reduces to the pairwise edit distance plus the gap columns.
        from repro.core.wavefront import score3_wavefront

        scheme = edit_distance_scheme(DNA)
        # kitten/sitting classic: pairwise edit distance 3.
        s = score3_wavefront("ACGT", "AGT", "", scheme)
        # Alignment of ACGT vs AGT: 1 edit (delete C); third row is empty so
        # each column also pays 2 gap pairs against the empty sequence.
        # Best: 4 columns, pairs (a,b) cost -1 total, (a,c)+(b,c) cost
        # -(4 + 3) = -7. Total -8.
        assert s == -8.0

    def test_name(self):
        assert "edit-distance" in edit_distance_scheme(RNA).name


class TestDatasets:
    def test_list(self):
        names = list_datasets()
        assert "globins" in names and "insulin_dna" in names

    def test_load_globins(self):
        ds = load_dataset("globins")
        assert ds["alphabet"] == "protein"
        assert len(ds["records"]) == 3
        for _h, seq in ds["records"]:
            assert PROTEIN.is_valid(seq)

    def test_load_dna(self):
        ds = load_dataset("insulin_dna")
        for _h, seq in ds["records"]:
            assert DNA.is_valid(seq)

    def test_bundled_sequences(self):
        seqs = bundled_sequences("globins")
        assert len(seqs) == 3
        assert all(isinstance(s, str) and s for s in seqs)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_registry_not_mutable_via_load(self):
        ds = load_dataset("globins")
        ds["records"].append(("evil", "AAA"))
        assert len(load_dataset("globins")["records"]) == 3
