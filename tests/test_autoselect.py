"""Adaptive method selection and the cache-key equivalence class.

The selector (:func:`repro.core.api.select_method`) replaces the old
cells-only ``auto`` split with a similarity-aware cost model; the cache
key now hashes the *resolved* method's equivalence class rather than
the raw request string. These tests pin both: the routing table, the
identity estimator it relies on, and the end of the aliasing bug where
``auto`` and its resolution were solved and stored twice.
"""

import pytest

from repro.cache import (
    EXACT_METHODS,
    ResultCache,
    method_key_class,
    request_key,
)
from repro.core.api import (
    AUTO_BANDED_MIN_IDENTITY,
    AUTO_HIRSCHBERG_CELLS,
    AUTO_PRUNE_MIN_CELLS,
    align3,
    estimate_identity,
    select_method,
)
from repro.seqio.generate import MutationModel, mutated_family, random_sequence


class TestEstimateIdentity:
    def test_identical_sequences(self):
        s = random_sequence(200, seed=1)
        assert estimate_identity(s, s) == pytest.approx(1.0)

    def test_unrelated_sequences_near_zero(self):
        assert estimate_identity("A" * 100, "C" * 100) == 0.0

    def test_monotone_in_divergence(self):
        estimates = []
        for sub in (0.02, 0.15, 0.4):
            sa, sb, _ = mutated_family(
                300, model=MutationModel(sub, sub / 4, sub / 4), seed=9
            )
            estimates.append(estimate_identity(sa, sb))
        assert estimates[0] > estimates[1] > estimates[2]

    def test_tracks_true_identity_roughly(self):
        sa, sb, _ = mutated_family(
            400, model=MutationModel(0.05, 0.0, 0.0), seed=3
        )
        est = estimate_identity(sa, sb)
        assert 0.85 <= est <= 1.0

    def test_short_sequences_positional(self):
        assert estimate_identity("ACG", "ACG") == 1.0
        assert estimate_identity("", "") == 1.0
        assert estimate_identity("", "ACG") == 0.0


class TestSelectMethod:
    def _triple(self, n, sub, seed=11):
        return mutated_family(
            n, model=MutationModel(sub, sub / 4, sub / 4), seed=seed
        )

    def test_small_cube_is_wavefront(self, dna_scheme):
        seqs = self._triple(20, 0.02)
        method, sel = select_method(*seqs, dna_scheme)
        assert method == "wavefront"
        assert sel["cells"] <= AUTO_PRUNE_MIN_CELLS

    def test_high_identity_is_banded(self, dna_scheme):
        seqs = self._triple(100, 0.01)
        method, sel = select_method(*seqs, dna_scheme)
        assert method == "banded"
        assert sel["identity"] >= AUTO_BANDED_MIN_IDENTITY

    def test_moderate_identity_is_pruned(self, dna_scheme):
        seqs = self._triple(100, 0.05)
        method, sel = select_method(*seqs, dna_scheme)
        assert method == "pruned"

    def test_low_identity_is_wavefront(self, dna_scheme):
        seqs = (
            random_sequence(100, seed=1),
            random_sequence(100, seed=2),
            random_sequence(100, seed=3),
        )
        method, _ = select_method(*seqs, dna_scheme)
        assert method == "wavefront"

    def test_huge_cube_is_hirschberg(self, dna_scheme):
        seqs = self._triple(260, 0.01)
        assert (261) ** 3 > AUTO_HIRSCHBERG_CELLS
        method, sel = select_method(*seqs, dna_scheme)
        assert method == "hirschberg"

    def test_cells_policy_is_legacy_split(self, dna_scheme):
        seqs = self._triple(100, 0.01)
        method, sel = select_method(*seqs, dna_scheme, policy="cells")
        assert method == "wavefront"
        assert sel["policy"] == "cells"
        assert "identity" not in sel

    def test_unknown_policy_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="auto_policy"):
            select_method("A", "C", "G", dna_scheme, policy="nope")

    def test_align3_records_selection(self, dna_scheme):
        seqs = self._triple(70, 0.02)
        aln = align3(*seqs, dna_scheme, method="auto")
        auto = aln.meta["auto"]
        assert auto["policy"] == "similarity"
        assert "reason" in auto and "cells" in auto

    def test_align3_cells_policy(self, dna_scheme):
        seqs = self._triple(70, 0.02)
        aln = align3(*seqs, dna_scheme, method="auto", auto_policy="cells")
        assert aln.meta["auto"]["policy"] == "cells"


class TestMethodKeyClass:
    def test_exact_engines_collapse(self):
        assert {method_key_class(m) for m in EXACT_METHODS} == {"exact"}

    def test_affine_keys_as_itself(self):
        assert method_key_class("affine") == "affine"

    def test_auto_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            method_key_class("auto")


class TestCacheAliasing:
    def test_auto_and_resolved_share_one_entry(self, dna_scheme, tmp_path):
        seqs = mutated_family(30, seed=21)
        cache = ResultCache(cache_dir=tmp_path)
        cold = align3(*seqs, dna_scheme, method="auto", cache=cache)
        assert cold.meta["cache"]["hit"] is False
        # The same triple requested under any exact engine now hits.
        for method in ("wavefront", "dp3d", "hirschberg", "auto"):
            again = align3(*seqs, dna_scheme, method=method, cache=cache)
            assert again.meta["cache"]["hit"] is True, method
            assert again.score == cold.score

    def test_legacy_raw_method_key_migrates(self, dna_scheme, tmp_path):
        seqs = mutated_family(25, seed=22)
        cold = align3(*seqs, dna_scheme, method="wavefront")
        # Simulate a cache persisted by an older release: the entry
        # lives under the raw request string, not the class key.
        class_key = request_key(tuple(seqs), dna_scheme, "global", "exact")
        legacy_key = request_key(tuple(seqs), dna_scheme, "global", "auto")
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(legacy_key, cold)
        assert cache.get(class_key) is None
        # An auto request misses the class key, probes the legacy raw
        # key, and re-homes the entry under the class key.
        hit = align3(*seqs, dna_scheme, method="auto", cache=cache)
        assert hit.meta["cache"]["hit"] is True
        assert hit.score == cold.score
        assert cache.get(class_key) is not None

    def test_distinct_triples_do_not_collide(self, dna_scheme, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        a = align3("GATTACA", "GATCA", "GTTACA", dna_scheme, cache=cache)
        b = align3("GATTACA", "GATCA", "GTTACC", dna_scheme, cache=cache)
        assert b.meta["cache"]["hit"] is False
        assert a.score != b.score or a.rows != b.rows
