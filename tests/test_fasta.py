"""Unit tests for repro.seqio.fasta."""

import pytest

from repro.seqio.fasta import (
    format_fasta,
    iter_fasta,
    parse_fasta,
    read_fasta,
    write_fasta,
)


class TestParse:
    def test_single_record(self):
        recs = parse_fasta(">seq1\nACGT\n")
        assert recs == [("seq1", "ACGT")]

    def test_multiline_body_concatenated(self):
        recs = parse_fasta(">s\nACGT\nTTTT\nGG\n")
        assert recs == [("s", "ACGTTTTTGG")]

    def test_multiple_records(self):
        recs = parse_fasta(">a\nAC\n>b\nGT\n>c\nTT\n")
        assert [h for h, _ in recs] == ["a", "b", "c"]
        assert [s for _, s in recs] == ["AC", "GT", "TT"]

    def test_blank_lines_and_comments_skipped(self):
        recs = parse_fasta(";comment\n>a\n\nAC\n;mid\nGT\n")
        assert recs == [("a", "ACGT")]

    def test_header_whitespace_stripped(self):
        recs = parse_fasta(">  padded header  \nAC\n")
        assert recs[0][0] == "padded header"

    def test_internal_whitespace_removed(self):
        recs = parse_fasta(">a\nAC GT\tTT\n")
        assert recs[0][1] == "ACGTTT"

    def test_data_before_header_raises(self):
        with pytest.raises(ValueError, match="before any '>'"):
            parse_fasta("ACGT\n>a\nAC\n")

    def test_empty_input(self):
        assert parse_fasta("") == []

    def test_empty_body_allowed(self):
        assert parse_fasta(">a\n>b\nAC\n") == [("a", ""), ("b", "AC")]


class TestFormat:
    def test_roundtrip(self):
        records = [("alpha", "ACGT" * 30), ("beta", "TT")]
        assert parse_fasta(format_fasta(records)) == records

    def test_wrapping_width(self):
        text = format_fasta([("a", "A" * 100)], width=10)
        body_lines = [l for l in text.splitlines() if not l.startswith(">")]
        assert all(len(l) <= 10 for l in body_lines)
        assert sum(len(l) for l in body_lines) == 100

    def test_width_zero_disables_wrapping(self):
        text = format_fasta([("a", "A" * 100)], width=0)
        assert "A" * 100 in text

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            format_fasta([("a", "AC")], width=-1)

    def test_newline_in_header_rejected(self):
        with pytest.raises(ValueError, match="newline"):
            format_fasta([("a\nb", "AC")])


class TestFiles:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "x.fasta"
        records = [("r1", "ACGTACGT"), ("r2", ""), ("r3", "TTTT")]
        write_fasta(path, records)
        assert read_fasta(path) == records

    def test_iter_fasta_streams_records(self, tmp_path):
        path = tmp_path / "x.fasta"
        records = [(f"r{i}", "ACGT" * i) for i in range(1, 6)]
        write_fasta(path, records)
        assert list(iter_fasta(path)) == records

    def test_iter_fasta_bad_input(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n")
        with pytest.raises(ValueError):
            list(iter_fasta(path))
