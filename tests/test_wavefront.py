"""Unit tests for the vectorised wavefront engine (repro.core.wavefront)."""

import numpy as np
import pytest

from repro.core.dp3d import dp3d_matrix, score3_dp3d
from repro.core.wavefront import (
    align3_wavefront,
    plane_bounds,
    score3_wavefront,
    wavefront_sweep,
)


class TestPlaneBounds:
    def test_origin_plane(self):
        assert plane_bounds(0, 5, 5, 5) == (0, 0, 0, 0)

    def test_terminal_plane(self):
        assert plane_bounds(15, 5, 5, 5) == (5, 5, 5, 5)

    def test_middle_plane_full(self):
        ilo, ihi, jlo, jhi = plane_bounds(7, 5, 5, 5)
        assert (ilo, ihi) == (0, 5)
        assert (jlo, jhi) == (0, 5)

    def test_out_of_range_plane_empty(self):
        ilo, ihi, _, _ = plane_bounds(16, 5, 5, 5)
        assert ilo > ihi

    def test_asymmetric(self):
        # d=9 on a (2, 3, 5) problem: i >= 9-3-5 = 1.
        assert plane_bounds(9, 2, 3, 5)[0] == 1

    def test_bounds_cover_exactly_the_valid_cells(self):
        n1, n2, n3 = 3, 4, 2
        seen = set()
        for d in range(n1 + n2 + n3 + 1):
            ilo, ihi, jlo, jhi = plane_bounds(d, n1, n2, n3)
            for i in range(ilo, ihi + 1):
                for j in range(jlo, jhi + 1):
                    k = d - i - j
                    if 0 <= k <= n3:
                        seen.add((i, j, k))
        assert len(seen) == (n1 + 1) * (n2 + 1) * (n3 + 1)


class TestAgainstReference:
    def test_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            assert score3_wavefront(*triple, dna_scheme) == pytest.approx(
                score3_dp3d(*triple, dna_scheme)
            ), triple

    def test_medium_family(self, family_medium, dna_scheme):
        assert score3_wavefront(*family_medium, dna_scheme) == pytest.approx(
            score3_dp3d(*family_medium, dna_scheme)
        )

    def test_protein(self, protein_scheme):
        from repro.seqio.datasets import bundled_sequences

        seqs = [s[:25] for s in bundled_sequences("globins")]
        assert score3_wavefront(*seqs, protein_scheme) == pytest.approx(
            score3_dp3d(*seqs, protein_scheme)
        )

    def test_move_cube_matches_reference(self, dna_scheme):
        # Scores along the whole cube must agree cell-by-cell (the move
        # cubes may differ on ties, but the value cube may not).
        sa, sb, sc = "GAT", "GTT", "AT"
        D_ref, _ = dp3d_matrix(sa, sb, sc, dna_scheme)
        res = wavefront_sweep(sa, sb, sc, dna_scheme)
        # Rebuild the value cube by replaying traceback-independent sweeps:
        # cheapest cross-check is the terminal score plus per-cell spot
        # checks via capture levels.
        for level in range(len(sa) + 1):
            cap = wavefront_sweep(
                sa, sb, sc, dna_scheme, score_only=True, capture_level=level
            ).captured_slab
            np.testing.assert_allclose(cap, D_ref[level], atol=1e-9)
        assert res.score == pytest.approx(D_ref[len(sa), len(sb), len(sc)])


class TestSweepOptions:
    def test_score_only_drops_move_cube(self, dna_scheme):
        res = wavefront_sweep("AC", "AG", "AT", dna_scheme, score_only=True)
        assert res.move_cube is None

    def test_cells_computed_counts_lattice(self, dna_scheme):
        res = wavefront_sweep("ACG", "AC", "A", dna_scheme)
        assert res.cells_computed == 4 * 3 * 2

    def test_planes_swept(self, dna_scheme):
        res = wavefront_sweep("ACG", "AC", "A", dna_scheme)
        assert res.planes_swept == 3 + 2 + 1 + 1

    def test_capture_level_validated(self, dna_scheme):
        with pytest.raises(ValueError, match="capture_level"):
            wavefront_sweep("AC", "A", "A", dna_scheme, capture_level=5)

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            wavefront_sweep(
                "A", "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-2)
            )

    def test_mask_shape_validated(self, dna_scheme):
        with pytest.raises(ValueError, match="mask"):
            wavefront_sweep(
                "AC", "A", "A", dna_scheme, mask=np.ones((1, 1, 1), bool)
            )


class TestAlignment:
    def test_score_equals_recomputed_sp(self, dna_scheme, small_triples):
        for triple in small_triples:
            aln = align3_wavefront(*triple, dna_scheme)
            assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)
            assert aln.sequences() == tuple(triple)

    def test_engine_meta(self, dna_scheme):
        aln = align3_wavefront("AC", "AG", "AT", dna_scheme)
        assert aln.meta["engine"] == "wavefront"

    def test_empty(self, dna_scheme):
        aln = align3_wavefront("", "", "", dna_scheme)
        assert aln.rows == ("", "", "")

    def test_one_empty_sequence(self, dna_scheme):
        aln = align3_wavefront("ACGT", "AGT", "", dna_scheme)
        assert aln.sequences() == ("ACGT", "AGT", "")

    def test_pruned_unreachable_raises(self, dna_scheme):
        mask = np.zeros((3, 3, 3), dtype=bool)
        mask[0, 0, 0] = mask[2, 2, 2] = True
        with pytest.raises(RuntimeError, match="unreachable"):
            align3_wavefront("AC", "AG", "AT", dna_scheme, mask=mask)


class TestMaskedSweep:
    def test_full_true_mask_is_identity(self, dna_scheme, family_small):
        n1, n2, n3 = (len(s) for s in family_small)
        mask = np.ones((n1 + 1, n2 + 1, n3 + 1), dtype=bool)
        assert score3_wavefront(*family_small, dna_scheme, mask=mask) == (
            pytest.approx(score3_wavefront(*family_small, dna_scheme))
        )

    def test_mask_restricted_to_optimal_path_still_finds_it(
        self, dna_scheme, family_small
    ):
        from repro.core.traceback import path_cells

        aln = align3_wavefront(*family_small, dna_scheme)
        n1, n2, n3 = (len(s) for s in family_small)
        mask = np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=bool)
        for cell in path_cells(aln.moves()):
            mask[cell] = True
        got = score3_wavefront(*family_small, dna_scheme, mask=mask)
        assert got == pytest.approx(aln.score)

    def test_random_masks_never_beat_optimum(self, dna_scheme):
        rng = np.random.default_rng(0)
        sa, sb, sc = "GATTA", "GTA", "GATA"
        full = score3_wavefront(sa, sb, sc, dna_scheme)
        for _ in range(10):
            mask = rng.random((6, 4, 5)) < 0.7
            mask[0, 0, 0] = mask[5, 3, 4] = True
            got = score3_wavefront(sa, sb, sc, dna_scheme, mask=mask)
            assert got <= full + 1e-9
