"""Tests for the O(n^2) pruning tube and the fused pruned sweep.

Covers the :class:`~repro.core.tube.PruningTube` representation itself,
the Carrillo–Lipman tube builder, the banded lower bound it defaults
to, bit-identity of the tube-pruned wavefront against the unpruned
engines across the divergence spectrum (including the adversarial
nothing-prunes regime), and the memory planner's pruned-path footprint.
"""

import numpy as np
import pytest

from repro.core.bounds import (
    banded_lower_bound,
    carrillo_lipman_mask,
    carrillo_lipman_tube,
)
from repro.core.dp3d import score3_dp3d
from repro.core.tube import PruningTube
from repro.core.wavefront import (
    align3_wavefront,
    score3_wavefront,
    wavefront_sweep,
)
from repro.seqio.generate import MutationModel, mutated_family


class TestPruningTube:
    def test_canonicalises_empty_rows(self):
        tube = PruningTube(
            klo=np.array([[3, 5]]), khi=np.array([[1, 9]]), n3=6
        )
        assert tube.klo[0, 0] == 0 and tube.khi[0, 0] == -1  # empty
        assert tube.klo[0, 1] == 5 and tube.khi[0, 1] == 6  # clipped to n3
        assert tube.kept_cells == 2

    def test_full_covers_cube(self):
        tube = PruningTube.full((3, 4, 5))
        assert tube.covers_cube
        assert tube.kept_cells == tube.total_cells == 4 * 5 * 6

    def test_from_mask_is_interval_hull(self):
        mask = np.zeros((1, 1, 7), dtype=bool)
        mask[0, 0, [1, 5]] = True  # kept set with a hole
        tube = PruningTube.from_mask(mask)
        assert tube.klo[0, 0] == 1 and tube.khi[0, 0] == 5
        # The hull keeps a superset of the mask's cells.
        assert tube.dense_mask()[mask].all()

    def test_keep_cell_grows_interval(self):
        tube = PruningTube(
            klo=np.zeros((2, 2), dtype=np.intp),
            khi=np.full((2, 2), -1, dtype=np.intp),
            n3=4,
        )
        assert not tube.contains(1, 1, 2)
        tube.keep_cell(1, 1, 2)
        assert tube.contains(1, 1, 2)
        tube.keep_cell(1, 1, 0)
        assert tube.contains(1, 1, 1)  # hull, not set

    def test_nbytes_is_quadratic_not_cubic(self):
        n = 64
        tube = PruningTube.full((n, n, n))
        assert tube.nbytes < (n + 1) ** 3  # dense bool cube size

    def test_plane_row_windows_cover_live_rows(self):
        rng = np.random.default_rng(7)
        n1, n2, n3 = 9, 7, 8
        mask = rng.random((n1 + 1, n2 + 1, n3 + 1)) < 0.1
        tube = PruningTube.from_mask(mask)
        rlo, rhi = tube.plane_row_windows()
        assert len(rlo) == n1 + n2 + n3 + 1
        dense = tube.dense_mask()
        ii, jj, kk = np.nonzero(dense)
        for i, j, k in zip(ii, jj, kk):
            d = i + j + k
            assert rlo[d] <= i <= rhi[d]

    def test_plane_row_windows_empty_tube(self):
        tube = PruningTube(
            klo=np.zeros((3, 3), dtype=np.intp),
            khi=np.full((3, 3), -1, dtype=np.intp),
            n3=2,
        )
        rlo, rhi = tube.plane_row_windows()
        assert (rlo > rhi).all()


class TestBandedLowerBound:
    def test_is_valid_lower_bound(self, dna_scheme, small_triples):
        for seqs in small_triples:
            lb = banded_lower_bound(*seqs, dna_scheme)
            assert lb <= score3_dp3d(*seqs, dna_scheme) + 1e-9

    def test_tight_on_similar_triples(self, dna_scheme):
        seqs = mutated_family(40, model=MutationModel(0.02, 0.005, 0.005), seed=5)
        assert banded_lower_bound(*seqs, dna_scheme) == pytest.approx(
            score3_dp3d(*seqs, dna_scheme)
        )

    def test_widens_band_until_connected(self, dna_scheme):
        # Very uneven lengths: band=1 cannot reach the far corner.
        lb = banded_lower_bound("ACGTACGTACGT", "AC", "A", dna_scheme, band=1)
        assert lb <= score3_dp3d("ACGTACGTACGT", "AC", "A", dna_scheme) + 1e-9


class TestTubeBitIdentity:
    @pytest.mark.parametrize("sub", [0.02, 0.1, 0.3, 0.6])
    def test_scores_match_across_divergence(self, dna_scheme, sub):
        seqs = mutated_family(
            28, model=MutationModel(sub, sub / 4, sub / 4), seed=int(sub * 100)
        )
        tube, stats = carrillo_lipman_tube(*seqs, dna_scheme)
        assert score3_wavefront(*seqs, dna_scheme, tube=tube) == score3_dp3d(
            *seqs, dna_scheme
        )
        assert 0 < stats.kept_fraction <= 1

    def test_adversarial_nothing_prunes(self, dna_scheme):
        # Unrelated sequences with a hopeless explicit lower bound: the
        # tube keeps (essentially) everything and must still be exact.
        seqs = ("GGGGCCCC", "TTTTAAAA", "CATGCATG")
        tube, stats = carrillo_lipman_tube(
            *seqs, dna_scheme, lower_bound=-1e6
        )
        assert stats.kept_fraction == pytest.approx(1.0)
        assert score3_wavefront(*seqs, dna_scheme, tube=tube) == score3_dp3d(
            *seqs, dna_scheme
        )

    def test_slack_keeps_more_and_stays_exact(self, dna_scheme, family_small):
        tight, s0 = carrillo_lipman_tube(*family_small, dna_scheme)
        loose, s1 = carrillo_lipman_tube(*family_small, dna_scheme, slack=20.0)
        assert s1.kept_cells >= s0.kept_cells
        opt = score3_dp3d(*family_small, dna_scheme)
        assert score3_wavefront(*family_small, dna_scheme, tube=loose) == opt

    def test_degenerate_sequences(self, dna_scheme, small_triples):
        for seqs in small_triples:
            tube, _ = carrillo_lipman_tube(*seqs, dna_scheme)
            assert score3_wavefront(*seqs, dna_scheme, tube=tube) == (
                score3_dp3d(*seqs, dna_scheme)
            )

    def test_rows_match_wavefront(self, dna_scheme, family_medium):
        tube, _ = carrillo_lipman_tube(*family_medium, dna_scheme)
        pruned = align3_wavefront(*family_medium, dna_scheme, tube=tube)
        plain = align3_wavefront(*family_medium, dna_scheme)
        assert pruned.rows == plain.rows
        assert pruned.score == plain.score

    def test_tube_keeps_superset_of_mask(self, dna_scheme, family_small):
        mask, _ = carrillo_lipman_mask(*family_small, dna_scheme)
        tube, _ = carrillo_lipman_tube(
            *family_small,
            dna_scheme,
            lower_bound=banded_lower_bound(*family_small, dna_scheme),
        )
        assert tube.dense_mask()[mask].all()

    def test_cells_computed_matches_kept(self, dna_scheme, family_medium):
        tube, stats = carrillo_lipman_tube(*family_medium, dna_scheme)
        res = wavefront_sweep(
            *family_medium, dna_scheme, tube=tube, score_only=True
        )
        assert res.cells_computed == stats.kept_cells


class TestAlign3PrunedPath:
    def test_end_to_end_matches_wavefront(self, dna_scheme, family_medium):
        from repro.core.api import align3

        pruned = align3(*family_medium, dna_scheme, method="pruned")
        plain = align3(*family_medium, dna_scheme, method="wavefront")
        assert pruned.rows == plain.rows
        assert pruned.score == plain.score
        meta = pruned.meta["pruning"]
        assert 0 < meta["kept_fraction"] <= 1
        assert meta["lower_bound"] <= pruned.score + 1e-9
        # The keep-region really is quadratic, not a dense bool cube.
        n1, n2, n3 = (len(s) for s in family_medium)
        assert meta["tube_bytes"] < (n1 + 1) * (n2 + 1) * (n3 + 1)

    def test_pruned_cache_round_trip(self, dna_scheme, family_medium, tmp_path):
        from repro.cache import ResultCache, comparable_meta
        from repro.core.api import align3

        cache = ResultCache(cache_dir=tmp_path)
        cold = align3(*family_medium, dna_scheme, method="pruned", cache=cache)
        hit = align3(*family_medium, dna_scheme, method="pruned", cache=cache)
        assert hit.meta["cache"]["hit"] is True
        assert hit.rows == cold.rows and hit.score == cold.score
        assert comparable_meta(hit.meta) == comparable_meta(cold.meta)


class TestDegradeFootprint:
    def test_pruned_estimate_has_no_dense_mask_term(self):
        from repro.resilience.degrade import estimate_bytes

        dims = (400, 400, 400)
        cube = 401 ** 3
        score_only = estimate_bytes("pruned", dims, score_only=True)
        # Score-only pruned runs need only planes + tube + through
        # matrices — far below even one byte per cube cell.
        assert score_only < cube
        # With traceback the dense move cube is still the only cubic term.
        full = estimate_bytes("pruned", dims, score_only=False)
        assert full - score_only == cube

    def test_pruned_fits_where_dense_mask_would_not(self):
        from repro.resilience.degrade import estimate_bytes

        dims = (300, 300, 300)
        cube = 301 ** 3
        # Old (buggy) model: planes + dense bool mask + move cube.
        assert estimate_bytes("pruned", dims) < cube * 2
