"""Unit tests for repro.heuristics.profile."""

import pytest

from repro.heuristics.profile import Profile, align_profile_sequence


class TestProfile:
    def test_from_rows(self):
        p = Profile.from_rows(("AC-", "A-G"))
        assert p.length == 3
        assert p.depth == 2
        assert p.columns[0] == ("A", "A")

    def test_unequal_rows_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            Profile.from_rows(("AC", "A"))

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Profile.from_rows(())

    def test_residue_count(self):
        p = Profile.from_rows(("AC-", "A-G"))
        assert p.residue_count(0) == 2
        assert p.residue_count(1) == 1
        assert p.residue_count(2) == 1

    def test_column_vs_residue(self, dna_scheme):
        p = Profile.from_rows(("A-", "AC"))
        # Column 0 = (A, A): score vs A = 5 + 5.
        assert p.column_vs_residue(0, "A", dna_scheme) == pytest.approx(10.0)
        # Column 1 = (-, C): gap + match.
        assert p.column_vs_residue(1, "C", dna_scheme) == pytest.approx(
            dna_scheme.gap + 5.0
        )

    def test_column_vs_gap(self, dna_scheme):
        p = Profile.from_rows(("A-", "AC"))
        assert p.column_vs_gap(0, dna_scheme) == pytest.approx(2 * dna_scheme.gap)
        assert p.column_vs_gap(1, dna_scheme) == pytest.approx(dna_scheme.gap)


class TestProfileSequenceAlignment:
    def test_identical_alignment(self, dna_scheme):
        p = Profile.from_rows(("ACGT", "ACGT"))
        cols, row = align_profile_sequence(p, "ACGT", dna_scheme)
        assert row == "ACGT"
        assert len(cols) == 4
        assert all(c == (x, x) for c, x in zip(cols, "ACGT"))

    def test_insertion_into_profile(self, dna_scheme):
        p = Profile.from_rows(("AC", "AC"))
        cols, row = align_profile_sequence(p, "AGC", dna_scheme)
        assert row.replace("-", "") == "AGC"
        assert len(cols) == len(row)
        # The G required an all-gap column in the profile.
        assert ("-", "-") in cols

    def test_deletion_from_sequence(self, dna_scheme):
        p = Profile.from_rows(("ACGT", "ACGT"))
        cols, row = align_profile_sequence(p, "AT", dna_scheme)
        assert row.replace("-", "") == "AT"
        assert len(cols) == 4  # profile columns preserved

    def test_empty_sequence(self, dna_scheme):
        p = Profile.from_rows(("AC", "AG"))
        cols, row = align_profile_sequence(p, "", dna_scheme)
        assert row == "--"
        assert cols == [("A", "A"), ("C", "G")]

    def test_empty_profile(self, dna_scheme):
        p = Profile.from_rows(("", ""))
        cols, row = align_profile_sequence(p, "AC", dna_scheme)
        assert row == "AC"
        assert cols == [("-", "-"), ("-", "-")]

    def test_profile_columns_never_reordered(self, dna_scheme):
        p = Profile.from_rows(("AC-G", "A-TG"))
        cols, _ = align_profile_sequence(p, "ACTG", dna_scheme)
        kept = [c for c in cols if c != ("-", "-")]
        assert kept == p.columns
