"""Tests for the message-passing distributed runtime (repro.cluster.mpirun)."""

import pytest

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.machine import MachineModel
from repro.cluster.mpirun import run_distributed
from repro.cluster.simulate import simulate_wavefront
from repro.core.dp3d import score3_dp3d
from repro.parallel.shared import fork_available
from repro.seqio.generate import mutated_family, random_sequence

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestCorrectness:
    @needs_fork
    @pytest.mark.parametrize("procs", [2, 3, 4])
    def test_rank_counts(self, procs, dna_scheme):
        fam = mutated_family(18, seed=22)
        ref = score3_dp3d(*fam, dna_scheme)
        res = run_distributed(*fam, dna_scheme, block=5, procs=procs)
        assert res.score == pytest.approx(ref)
        assert res.procs == procs

    @needs_fork
    @pytest.mark.parametrize("mapping", ["pencil", "linear", "slab"])
    def test_mappings(self, mapping, dna_scheme):
        fam = mutated_family(16, seed=23)
        ref = score3_dp3d(*fam, dna_scheme)
        res = run_distributed(
            *fam, dna_scheme, block=6, procs=3, mapping=mapping
        )
        assert res.score == pytest.approx(ref)

    @needs_fork
    def test_uneven_shapes(self, dna_scheme):
        seqs = (
            random_sequence(21, seed=4),
            random_sequence(6, seed=5),
            random_sequence(13, seed=6),
        )
        ref = score3_dp3d(*seqs, dna_scheme)
        res = run_distributed(*seqs, dna_scheme, block=(6, 3, 4), procs=3)
        assert res.score == pytest.approx(ref)

    @needs_fork
    def test_tiny_inputs(self, dna_scheme):
        for triple in (("A", "", "C"), ("AC", "G", "T"), ("", "", "")):
            ref = score3_dp3d(*triple, dna_scheme)
            res = run_distributed(*triple, dna_scheme, block=2, procs=2)
            assert res.score == pytest.approx(ref), triple

    def test_single_proc_fallback(self, dna_scheme, family_small):
        res = run_distributed(*family_small, dna_scheme, block=6, procs=1)
        assert res.score == pytest.approx(
            score3_dp3d(*family_small, dna_scheme)
        )
        assert res.messages == 0

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            run_distributed("A", "A", "A", dna_scheme.with_gaps(-1, -1))


class TestMessageLedger:
    @needs_fork
    @pytest.mark.parametrize("procs", [2, 3])
    def test_matches_simulator_accounting(self, procs, dna_scheme):
        fam = mutated_family(18, seed=24)
        n1, n2, n3 = (len(s) for s in fam)
        res = run_distributed(*fam, dna_scheme, block=5, procs=procs)
        grid = BlockGrid.for_sequences(n1, n2, n3, 5)
        sim = simulate_wavefront(grid, MachineModel(procs=procs))
        assert res.messages == sim.messages
        assert res.comm_bytes == sim.comm_volume_bytes
