"""Unit tests for repro.pairwise.nw."""

import numpy as np
import pytest

from repro.pairwise.nw import (
    align2,
    nw_matrix,
    nw_score_last_row,
    score2,
    score2_matrixfree,
)
from tests.reference.bruteforce import memo_optimal_pairwise


class TestScores:
    @pytest.mark.parametrize(
        "pair",
        [
            ("", ""),
            ("A", ""),
            ("", "ACGT"),
            ("A", "A"),
            ("A", "C"),
            ("GATTACA", "GATCA"),
            ("ACGTACGT", "TGCATGCA"),
            ("AAAA", "AAAAAAAA"),
        ],
    )
    def test_against_memo_reference(self, pair, dna_scheme):
        expected = memo_optimal_pairwise(*pair, dna_scheme)
        assert score2(*pair, dna_scheme) == pytest.approx(expected)
        assert score2_matrixfree(*pair, dna_scheme) == pytest.approx(expected)

    def test_symmetry(self, dna_scheme):
        assert score2("GATTACA", "GATCA", dna_scheme) == pytest.approx(
            score2("GATCA", "GATTACA", dna_scheme)
        )

    def test_identical_sequences(self, dna_scheme):
        s = "ACGTACGT"
        assert score2(s, s, dna_scheme) == pytest.approx(len(s) * 5.0)

    def test_gap_only(self, dna_scheme):
        assert score2("ACGT", "", dna_scheme) == pytest.approx(4 * dna_scheme.gap)


class TestLastRow:
    def test_matches_full_matrix(self, dna_scheme):
        sx, sy = "GATTACA", "GATCA"
        D, _ = nw_matrix(sx, sy, dna_scheme)
        row = nw_score_last_row(sx, sy, dna_scheme)
        np.testing.assert_allclose(row, D[-1], atol=1e-9)

    def test_empty_x(self, dna_scheme):
        row = nw_score_last_row("", "ACG", dna_scheme)
        np.testing.assert_allclose(row, np.arange(4) * dna_scheme.gap)

    def test_random_vs_scalar(self, dna_scheme):
        from repro.seqio.generate import random_sequence

        rng = np.random.default_rng(3)
        for trial in range(8):
            sx = random_sequence(int(rng.integers(0, 15)), seed=trial)
            sy = random_sequence(int(rng.integers(0, 15)), seed=trial + 50)
            vec = float(nw_score_last_row(sx, sy, dna_scheme)[-1])
            ref = score2_matrixfree(sx, sy, dna_scheme)
            assert vec == pytest.approx(ref), (sx, sy)


class TestAlignment:
    def test_score_recomputation(self, dna_scheme):
        aln = align2("GATTACA", "GATCA", dna_scheme)
        assert aln.score_with(dna_scheme) == pytest.approx(aln.score)

    def test_sequences_recovered(self, dna_scheme):
        aln = align2("GATTACA", "GATCA", dna_scheme)
        assert aln.sequences() == ("GATTACA", "GATCA")

    def test_no_all_gap_columns(self, dna_scheme):
        aln = align2("ACG", "TTT", dna_scheme)
        for x, y in aln.columns():
            assert not (x == "-" and y == "-")

    def test_empty_alignment(self, dna_scheme):
        aln = align2("", "", dna_scheme)
        assert aln.rows == ("", "")
        assert aln.score == 0.0

    def test_matrix_moves_consistent(self, dna_scheme):
        D, M = nw_matrix("GAT", "GT", dna_scheme)
        assert M[0, 0] == 0
        assert D[0, 0] == 0.0
        # First row/column are forced moves.
        assert all(M[0, j] == 2 for j in range(1, 3))
        assert all(M[i, 0] == 1 for i in range(1, 4))
