"""Shared cache service: wire protocol, the remote client, and the
three-tier ResultCache integration the serve replicas rely on."""

from __future__ import annotations

import asyncio
import queue
import socket
import threading

import pytest

from repro.cache import ResultCache, encode_alignment, request_key
from repro.cache.remote import RemoteCacheClient
from repro.cache.service import CacheServer
from repro.core.api import align3, resolve_scheme
from repro.core.scoring import default_scheme_for
from repro.seqio.alphabet import DNA
from repro.serve import ServeClient

TRIPLE = ("GATTACA", "GATCA", "GTTACA")


def _key_and_alignment():
    scheme = default_scheme_for(DNA)
    aln = align3(*TRIPLE, scheme)
    key = request_key(TRIPLE, resolve_scheme(TRIPLE, None), "global", "auto")
    return key, aln


class CacheServerThread:
    """A CacheServer on its own thread + event loop, drained on exit."""

    def __init__(self, **overrides):
        overrides.setdefault("port", 0)
        self.server: CacheServer | None = None
        self._overrides = overrides
        self._ready: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        item = self._ready.get(timeout=30)
        if isinstance(item, BaseException):
            raise item
        self.port: int = item

    def _run(self) -> None:
        async def amain():
            self.server = CacheServer(**self._overrides)
            try:
                _host, port = await self.server.start()
            except BaseException as exc:  # pragma: no cover - setup only
                self._ready.put(exc)
                return
            self._ready.put(port)
            await self.server.serve_until_drained()

        asyncio.run(amain())

    def __enter__(self) -> "CacheServerThread":
        return self

    def __exit__(self, *exc) -> None:
        assert self.server is not None
        self.server.request_drain()
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "cache server failed to drain"


def _dead_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


@pytest.mark.serve
class TestCacheServer:
    def test_put_get_roundtrip_and_miss(self):
        key, aln = _key_and_alignment()
        with CacheServerThread() as srv:
            client = RemoteCacheClient("127.0.0.1", srv.port)
            assert client.get_payload(key) is None
            assert client.put_payload(key, encode_alignment(aln))
            got = client.get_payload(key)
            assert got is not None
            assert tuple(got["rows"]) == aln.rows
            assert float(got["score"]) == aln.score
            assert client.hits == 1 and client.misses == 1
            client.close()

    def test_http_contract(self):
        key, aln = _key_and_alignment()
        with CacheServerThread() as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as http:
            # Malformed keys and bodies are rejected, not stored.
            assert http._request("GET", "/v1/cache/nothex").status == 400
            assert http._request(
                "PUT", f"/v1/cache/{key}", {"alignment": {"rows": ["A"]}}
            ).status == 400
            assert http._request(
                "PUT", f"/v1/cache/{key}", {"nope": 1}
            ).status == 400
            assert http._request("GET", f"/v1/cache/{key}").status == 404
            assert http._request("DELETE", f"/v1/cache/{key}").status == 405
            assert http._request("GET", "/nope").status == 404

            ok = http._request(
                "PUT", f"/v1/cache/{key}", {"alignment": encode_alignment(aln)}
            )
            assert ok.status == 200
            health = http._request("GET", "/healthz")
            assert health.status == 200
            assert health.body["role"] == "cache"
            assert health.body["entries"] == 1
            metrics = http._request("GET", "/metrics")
            assert metrics.status == 200
            assert metrics.body["requests"]["put"] >= 1

    def test_persistent_tier_survives_restart(self, tmp_path):
        key, aln = _key_and_alignment()
        payload = encode_alignment(aln)
        with CacheServerThread(cache_dir=str(tmp_path)) as srv:
            client = RemoteCacheClient("127.0.0.1", srv.port)
            assert client.put_payload(key, payload)
            client.close()
        with CacheServerThread(cache_dir=str(tmp_path)) as srv:
            client = RemoteCacheClient("127.0.0.1", srv.port)
            got = client.get_payload(key)
            assert got is not None and tuple(got["rows"]) == aln.rows
            client.close()


class TestRemoteCacheClient:
    def test_from_url_forms(self):
        c = RemoteCacheClient.from_url("http://localhost:9999/")
        assert (c.host, c.port) == ("localhost", 9999)
        c = RemoteCacheClient.from_url("127.0.0.1:80")
        assert (c.host, c.port) == ("127.0.0.1", 80)
        for bad in ("nope", "host:", "host:port"):
            with pytest.raises(ValueError):
                RemoteCacheClient.from_url(bad)

    def test_breaker_opens_after_consecutive_errors(self):
        key, _aln = _key_and_alignment()
        client = RemoteCacheClient(
            "127.0.0.1", _dead_port(),
            timeout_s=0.2, breaker_threshold=3, breaker_cooldown_s=60.0,
        )
        for _ in range(3):
            assert client.get_payload(key) is None
        assert client.breaker_trips == 1
        assert client.errors == 3
        # Breaker open: further calls fail fast without touching the
        # socket (error count stays put).
        assert client.get_payload(key) is None
        assert not client.put_payload(key, {"rows": []})
        assert client.errors == 3
        assert client.snapshot()["breaker_open"] == 1.0


@pytest.mark.serve
class TestResultCacheRemoteTier:
    def test_remote_hit_promotes_to_memory(self):
        key, aln = _key_and_alignment()
        with CacheServerThread() as srv:
            remote = RemoteCacheClient("127.0.0.1", srv.port)
            writer = ResultCache(remote=remote)
            writer.put(key, aln)

            reader = ResultCache(
                remote=RemoteCacheClient("127.0.0.1", srv.port)
            )
            got = reader.get(key)
            assert got is not None and got.rows == aln.rows
            assert reader.stats.remote_hits == 1
            # Promoted: the repeat is a memory hit, no round trip.
            again = reader.get(key)
            assert again is not None
            assert reader.stats.memory_hits == 1

    def test_dead_remote_degrades_to_local_only(self):
        key, aln = _key_and_alignment()
        cache = ResultCache(
            remote=RemoteCacheClient("127.0.0.1", _dead_port(), timeout_s=0.2)
        )
        cache.put(key, aln)  # remote mirror fails silently
        got = cache.get(key)
        assert got is not None and got.rows == aln.rows
        assert cache.stats.memory_hits == 1
