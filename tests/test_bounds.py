"""Unit tests for Carrillo–Lipman pruning (repro.core.bounds)."""

import numpy as np
import pytest

from repro.core.bounds import (
    carrillo_lipman_mask,
    heuristic_lower_bound,
    pairwise_upper_bound,
)
from repro.core.dp3d import score3_dp3d
from repro.core.traceback import path_cells
from repro.core.wavefront import align3_wavefront, score3_wavefront
from repro.seqio.generate import MutationModel, mutated_family


class TestBoundsSandwich:
    def test_lower_and_upper_bracket_optimum(self, dna_scheme, family_small):
        opt = score3_dp3d(*family_small, dna_scheme)
        lo = heuristic_lower_bound(*family_small, dna_scheme)
        hi = pairwise_upper_bound(*family_small, dna_scheme)
        assert lo <= opt + 1e-9
        assert opt <= hi + 1e-9

    def test_upper_bound_tight_for_identical(self, dna_scheme):
        seqs = ("ACGT", "ACGT", "ACGT")
        assert pairwise_upper_bound(*seqs, dna_scheme) == pytest.approx(
            score3_dp3d(*seqs, dna_scheme)
        )


class TestMask:
    def test_optimum_survives(self, dna_scheme, small_triples):
        for triple in small_triples:
            mask, _ = carrillo_lipman_mask(*triple, dna_scheme)
            full = score3_dp3d(*triple, dna_scheme)
            pruned = score3_wavefront(*triple, dna_scheme, mask=mask)
            assert pruned == pytest.approx(full), triple

    def test_optimal_path_cells_all_kept(self, dna_scheme, family_small):
        aln = align3_wavefront(*family_small, dna_scheme)
        mask, _ = carrillo_lipman_mask(*family_small, dna_scheme)
        for cell in path_cells(aln.moves()):
            assert mask[cell], cell

    def test_origin_terminal_always_kept(self, dna_scheme):
        mask, _ = carrillo_lipman_mask("GAT", "GT", "AT", dna_scheme)
        assert mask[0, 0, 0] and mask[3, 2, 2]

    def test_explicit_lower_bound_used(self, dna_scheme, family_small):
        # An absurdly low bound keeps everything.
        mask, stats = carrillo_lipman_mask(
            *family_small, dna_scheme, lower_bound=-1e9
        )
        assert stats.kept_fraction == 1.0
        # The optimum itself is the tightest valid bound.
        opt = score3_dp3d(*family_small, dna_scheme)
        mask2, stats2 = carrillo_lipman_mask(
            *family_small, dna_scheme, lower_bound=opt
        )
        assert stats2.kept_cells <= stats.kept_cells
        pruned = score3_wavefront(*family_small, dna_scheme, mask=mask2)
        assert pruned == pytest.approx(opt)

    def test_slack_keeps_more_cells(self, dna_scheme, family_small):
        _, tight = carrillo_lipman_mask(*family_small, dna_scheme)
        _, loose = carrillo_lipman_mask(*family_small, dna_scheme, slack=50.0)
        assert loose.kept_cells >= tight.kept_cells

    def test_negative_slack_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="slack"):
            carrillo_lipman_mask("A", "A", "A", dna_scheme, slack=-1)

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            carrillo_lipman_mask(
                "A", "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-1)
            )


class TestPruningEffectiveness:
    def test_similar_sequences_prune_more(self, dna_scheme):
        similar = mutated_family(
            40, model=MutationModel(0.02, 0.005, 0.005), seed=5
        )
        diverged = mutated_family(
            40, model=MutationModel(0.4, 0.1, 0.1), seed=5
        )
        _, s_stats = carrillo_lipman_mask(*similar, dna_scheme)
        _, d_stats = carrillo_lipman_mask(*diverged, dna_scheme)
        assert s_stats.kept_fraction < d_stats.kept_fraction

    def test_stats_fields(self, dna_scheme, family_small):
        mask, stats = carrillo_lipman_mask(*family_small, dna_scheme)
        assert stats.total_cells == mask.size
        assert stats.kept_cells == int(mask.sum())
        assert 0 < stats.kept_fraction <= 1
        assert stats.pruned_fraction == pytest.approx(1 - stats.kept_fraction)

    def test_pruned_cells_actually_skipped(self, dna_scheme, family_small):
        from repro.core.wavefront import wavefront_sweep

        mask, stats = carrillo_lipman_mask(*family_small, dna_scheme)
        res = wavefront_sweep(
            *family_small, dna_scheme, score_only=True, mask=mask
        )
        assert res.cells_computed == stats.kept_cells
