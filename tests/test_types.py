"""Unit tests for repro.core.types."""

import pytest

from repro.core.types import (
    ALL_MOVES,
    MOVE_ABC,
    MOVE_NAMES,
    Alignment3,
    move_delta,
    moves_to_columns,
)


class TestMoveEncoding:
    def test_all_moves(self):
        assert ALL_MOVES == (1, 2, 3, 4, 5, 6, 7)

    def test_move_abc(self):
        assert MOVE_ABC == 7

    def test_deltas(self):
        assert move_delta(1) == (1, 0, 0)
        assert move_delta(2) == (0, 1, 0)
        assert move_delta(4) == (0, 0, 1)
        assert move_delta(3) == (1, 1, 0)
        assert move_delta(5) == (1, 0, 1)
        assert move_delta(6) == (0, 1, 1)
        assert move_delta(7) == (1, 1, 1)

    def test_invalid_move_rejected(self):
        with pytest.raises(ValueError):
            move_delta(0)
        with pytest.raises(ValueError):
            move_delta(8)

    def test_names_cover_all_moves(self):
        assert len(MOVE_NAMES) == 8
        for m in ALL_MOVES:
            name = MOVE_NAMES[m]
            assert name.count("A") + name.count("B") + name.count("C") == bin(m).count("1")


class TestMovesToColumns:
    def test_all_match(self):
        cols = moves_to_columns([7, 7], "AB", "CD", "EF")
        assert cols == [("A", "C", "E"), ("B", "D", "F")]

    def test_gaps_emitted(self):
        cols = moves_to_columns([1, 2, 4], "A", "B", "C")
        assert cols == [("A", "-", "-"), ("-", "B", "-"), ("-", "-", "C")]

    def test_underrun_rejected(self):
        with pytest.raises(ValueError, match="consumed"):
            moves_to_columns([7], "AB", "CD", "EF")

    def test_overrun_rejected(self):
        with pytest.raises(ValueError):
            moves_to_columns([7, 7], "A", "CD", "EF")

    def test_empty(self):
        assert moves_to_columns([], "", "", "") == []


class TestAlignment3:
    def _mk(self):
        return Alignment3(rows=("AC-", "A-G", "-CG"), score=1.5)

    def test_length(self):
        assert self._mk().length == 3

    def test_unequal_rows_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            Alignment3(rows=("AC", "A", "AC"), score=0)

    def test_wrong_row_count_rejected(self):
        with pytest.raises(ValueError, match="three rows"):
            Alignment3(rows=("AC", "AC"), score=0)  # type: ignore[arg-type]

    def test_all_gap_column_rejected(self):
        with pytest.raises(ValueError, match="all-gap"):
            Alignment3(rows=("A-", "A-", "A-"), score=0)

    def test_sequences_strips_gaps(self):
        assert self._mk().sequences() == ("AC", "AG", "CG")

    def test_columns(self):
        assert list(self._mk().columns()) == [
            ("A", "A", "-"),
            ("C", "-", "C"),
            ("-", "G", "G"),
        ]

    def test_moves_roundtrip(self):
        aln = self._mk()
        cols = moves_to_columns(aln.moves(), *aln.sequences())
        assert cols == list(aln.columns())

    def test_identity(self):
        aln = Alignment3(rows=("AAC", "AAG", "AAT"), score=0)
        assert aln.identity() == pytest.approx(2 / 3)

    def test_identity_empty(self):
        assert Alignment3(rows=("", "", ""), score=0).identity() == 0.0

    def test_pretty_blocks(self):
        aln = Alignment3(rows=("A" * 100, "A" * 100, "A" * 100), score=0)
        blocks = aln.pretty(width=60).split("\n\n")
        assert len(blocks) == 2

    def test_pretty_width_validated(self):
        with pytest.raises(ValueError):
            self._mk().pretty(width=0)

    def test_str_contains_score(self):
        assert "1.5" in str(self._mk())

    def test_meta_default_dict(self):
        a = self._mk()
        a.meta["x"] = 1
        assert self._mk().meta == {}
