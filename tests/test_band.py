"""Unit tests for certified banded alignment (repro.core.band)."""

import numpy as np
import pytest

from repro.core.band import align3_banded, band_mask, score3_banded
from repro.core.dp3d import score3_dp3d
from repro.seqio.generate import MutationModel, mutated_family


class TestBandMask:
    def test_corners_always_kept(self):
        mask = band_mask(5, 9, 3, 1)
        assert mask[0, 0, 0] and mask[5, 9, 3]

    def test_band_width_controls_volume(self):
        narrow = band_mask(20, 20, 20, 2).sum()
        wide = band_mask(20, 20, 20, 8).sum()
        assert narrow < wide

    def test_full_coverage_at_large_band(self):
        assert band_mask(10, 12, 8, 30).all()

    def test_diagonal_inside(self):
        mask = band_mask(10, 20, 10, 2)
        for i in range(11):
            assert mask[i, 2 * i, i], i

    def test_degenerate_first_axis(self):
        mask = band_mask(0, 6, 6, 2)
        assert mask[0, 0, 0] and mask[0, 6, 6]
        assert mask[0, 3, 3]
        assert not mask[0, 0, 6]

    def test_all_empty(self):
        assert band_mask(0, 0, 0, 3).shape == (1, 1, 1)

    def test_band_validated(self):
        with pytest.raises(ValueError):
            band_mask(5, 5, 5, 0)


class TestCertifiedOptimality:
    def test_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            aln = align3_banded(*triple, dna_scheme)
            assert aln.score == pytest.approx(
                score3_dp3d(*triple, dna_scheme)
            ), triple
            assert aln.meta["band_certified"]
            assert aln.sequences() == tuple(triple)

    def test_related_family_narrow_band_suffices(self, dna_scheme):
        fam = mutated_family(
            60, model=MutationModel(0.05, 0.01, 0.01), seed=13
        )
        aln = align3_banded(*fam, dna_scheme, band=6)
        from repro.core.wavefront import score3_wavefront

        assert aln.score == pytest.approx(score3_wavefront(*fam, dna_scheme))
        assert aln.meta["band_certified"]
        # The point of banding: far fewer cells than the cube.
        assert aln.meta["cells"] < 0.5 * np.prod(
            [len(s) + 1 for s in fam]
        )

    def test_diverged_family_forces_widening(self, dna_scheme):
        fam = mutated_family(
            30, model=MutationModel(0.5, 0.15, 0.15), seed=14
        )
        aln = align3_banded(*fam, dna_scheme, band=1)
        assert aln.score == pytest.approx(score3_dp3d(*fam, dna_scheme))
        assert aln.meta["band_certified"]

    def test_uneven_lengths_thin_band_recovers(self, dna_scheme):
        # Default band would cover; force a disconnecting band and verify
        # the widening loop recovers.
        sa, sb, sc = "AC", "ACGTACGTACGTACGTACGT", "ACG"
        aln = align3_banded(sa, sb, sc, dna_scheme, band=1)
        assert aln.score == pytest.approx(score3_dp3d(sa, sb, sc, dna_scheme))

    def test_widen_and_retry_path_is_exercised(self, dna_scheme):
        # Same uneven-lengths family, but assert the retry loop itself:
        # the band must actually widen (not just happen to certify at the
        # requested width) and the widened run must certify optimal.
        sa, sb, sc = "AC", "ACGTACGTACGTACGTACGT", "ACG"
        aln = align3_banded(sa, sb, sc, dna_scheme, band=1)
        assert aln.meta["band_iterations"] > 1
        assert aln.meta["band"] > 1
        assert aln.meta["band_certified"]
        assert aln.score == pytest.approx(score3_dp3d(sa, sb, sc, dna_scheme))

    def test_score_helper(self, dna_scheme, family_small):
        assert score3_banded(*family_small, dna_scheme) == pytest.approx(
            score3_dp3d(*family_small, dna_scheme)
        )

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            align3_banded("A", "A", "A", dna_scheme.with_gaps(-1, -1))


class TestUncertified:
    def test_certify_false_returns_band_local_optimum(self, dna_scheme):
        fam = mutated_family(25, seed=15)
        loose = align3_banded(*fam, dna_scheme, band=3, certify=False)
        exact = score3_dp3d(*fam, dna_scheme)
        assert loose.score <= exact + 1e-9
        assert loose.meta["band_iterations"] == 1

    def test_meta_fields(self, dna_scheme, family_small):
        aln = align3_banded(*family_small, dna_scheme)
        assert aln.meta["engine"] == "banded"
        assert aln.meta["band"] >= 1
        assert aln.meta["band_iterations"] >= 1
