"""Unit tests for Clustal rendering/parsing and the ts/tv matrix."""

import numpy as np
import pytest

from repro.core.matrices import dna_tstv
from repro.seqio.clustal import conservation_line, format_clustal, parse_clustal


class TestFormat:
    def test_roundtrip(self):
        names = ["alpha", "beta", "gamma"]
        rows = ["AC-GT" * 20, "ACTG-" * 20, "AC--T" * 20]
        text = format_clustal(names, rows, width=50)
        assert parse_clustal(text) == list(zip(names, rows))

    def test_header_present(self):
        text = format_clustal(["a"], ["ACGT"])
        assert text.startswith("CLUSTAL")

    def test_blocks_respect_width(self):
        text = format_clustal(["x"], ["A" * 100], width=30)
        seq_lines = [l for l in text.splitlines() if l.startswith("x")]
        assert len(seq_lines) == 4  # 30+30+30+10

    def test_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            format_clustal(["a"], ["AC", "AC"])
        with pytest.raises(ValueError, match="unequal"):
            format_clustal(["a", "b"], ["AC", "A"])
        with pytest.raises(ValueError, match="whitespace"):
            format_clustal(["a b"], ["AC"])
        with pytest.raises(ValueError, match="width"):
            format_clustal(["a"], ["AC"], width=0)
        with pytest.raises(ValueError, match="no rows"):
            format_clustal([], [])

    def test_empty_alignment(self):
        text = format_clustal(["a", "b"], ["", ""])
        assert parse_clustal(text) == [("a", ""), ("b", "")]

    def test_works_with_alignment3(self, dna_scheme):
        from repro.core.api import align3

        aln = align3("GATTACA", "GATCA", "GTTACA", dna_scheme)
        text = format_clustal(["A", "B", "C"], list(aln.rows))
        parsed = parse_clustal(text)
        assert tuple(r for _n, r in parsed) == aln.rows


class TestConservation:
    def test_markers(self):
        rows = ("ACG-", "ACT-", "ACTA")
        line = conservation_line(rows, slice(0, 4))
        assert line[0] == "*"  # all A
        assert line[1] == "*"  # all C
        assert line[2] == ":"  # G/T/T residues, not identical
        assert line[3] == " "  # gaps present

    def test_alignment_between_markers_and_columns(self):
        rows = ("AAAA", "AAAA")
        assert conservation_line(rows, slice(1, 3)) == "**"


class TestParse:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="CLUSTAL"):
            parse_clustal("a ACGT\n")

    def test_no_rows(self):
        with pytest.raises(ValueError, match="no sequence rows"):
            parse_clustal("CLUSTAL W\n\n")

    def test_unequal_rows(self):
        bad = "CLUSTAL W\n\na ACGT\nb AC\n"
        with pytest.raises(ValueError, match="unequal"):
            parse_clustal(bad)


class TestTsTvMatrix:
    def test_shape_and_symmetry(self):
        m = dna_tstv()
        assert m.shape == (5, 5)
        assert np.array_equal(m, m.T)

    def test_transitions_milder(self):
        m = dna_tstv(match=5, transition=-1, transversion=-4)
        # A<->G and C<->T are transitions.
        assert m[0, 2] == -1 and m[1, 3] == -1
        # A<->C, A<->T, C<->G, G<->T are transversions.
        assert m[0, 1] == -4 and m[0, 3] == -4
        assert m[1, 2] == -4 and m[2, 3] == -4

    def test_ordering_validated(self):
        with pytest.raises(ValueError, match="milder"):
            dna_tstv(transition=-5, transversion=-1)

    def test_usable_in_alignment(self, dna_scheme):
        from repro.core.scoring import ScoringScheme
        from repro.core.wavefront import score3_wavefront
        from repro.seqio.alphabet import DNA

        scheme = ScoringScheme(DNA, dna_tstv(), gap=-6.0, name="tstv")
        # A G<->A substitution (transition) should cost less than G<->C.
        s_transition = score3_wavefront("AG", "AA", "AG", scheme)
        s_transversion = score3_wavefront("AC", "AA", "AC", scheme)
        assert s_transition > s_transversion
