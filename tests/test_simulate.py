"""Unit tests for the cluster simulator (repro.cluster.simulate)."""

import pytest

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.machine import MachineModel, ethernet_2007, modern_cluster
from repro.cluster.simulate import simulate_wavefront


@pytest.fixture
def grid():
    return BlockGrid.for_sequences(60, 60, 60, 16)


class TestInvariants:
    def test_single_proc_no_comm_and_serial_makespan(self, grid):
        m = MachineModel(procs=1)
        r = simulate_wavefront(grid, m)
        assert r.comm_volume_bytes == 0
        assert r.messages == 0
        assert r.makespan == pytest.approx(r.serial_time)
        assert r.speedup == pytest.approx(1.0)

    def test_speedup_bounded_by_procs(self, grid):
        for p in (2, 4, 8, 16):
            r = simulate_wavefront(grid, MachineModel(procs=p))
            assert r.speedup <= p + 1e-9
            assert 0 < r.efficiency <= 1 + 1e-9

    def test_makespan_at_least_critical_path(self, grid):
        # The chain of blocks along the main block diagonal is a lower
        # bound on any schedule.
        m = MachineModel(procs=1024, alpha=0.0, beta=0.0)
        r = simulate_wavefront(grid, m)
        gi, gj, gk = grid.grid_shape
        chain = sum(
            m.compute_time(grid.block_cells((i, min(i, gj - 1), min(i, gk - 1))))
            for i in range(gi)
        )
        assert r.makespan >= chain - 1e-12

    def test_busy_time_sums_to_serial(self, grid):
        r = simulate_wavefront(grid, MachineModel(procs=8))
        assert sum(r.busy_time) == pytest.approx(r.serial_time)

    def test_block_count(self, grid):
        r = simulate_wavefront(grid, MachineModel(procs=4))
        assert r.blocks == grid.n_blocks

    def test_comm_free_machine_beats_lossy(self, grid):
        lossy = simulate_wavefront(grid, ethernet_2007(16))
        free = simulate_wavefront(
            grid, MachineModel(procs=16, alpha=0.0, beta=0.0)
        )
        assert free.makespan <= lossy.makespan + 1e-12


class TestShapes:
    def test_speedup_grows_then_saturates(self):
        # On a fixed problem, adding processors must never make the
        # no-communication simulation slower.
        grid = BlockGrid.for_sequences(100, 100, 100, 16)
        m0 = MachineModel(procs=1, alpha=0.0, beta=0.0)
        prev = 0.0
        for p in (1, 2, 4, 8, 16, 32):
            r = simulate_wavefront(grid, m0.with_procs(p))
            assert r.speedup >= prev - 1e-9
            prev = r.speedup

    def test_larger_problems_scale_better(self):
        machine = ethernet_2007(32)
        small = BlockGrid.for_sequences(60, 60, 60, 16)
        large = BlockGrid.for_sequences(240, 240, 240, 16)
        assert (
            simulate_wavefront(large, machine).speedup
            > simulate_wavefront(small, machine).speedup
        )

    def test_modern_network_beats_ethernet(self):
        grid = BlockGrid.for_sequences(120, 120, 120, 8)
        eth = simulate_wavefront(grid, ethernet_2007(16))
        mod_machine = modern_cluster(16, t_cell=ethernet_2007(16).t_cell)
        mod = simulate_wavefront(grid, mod_machine)
        assert mod.speedup > eth.speedup

    def test_mapping_changes_comm_volume(self, grid):
        # P = 7 so the linear mapping's owner genuinely varies with the I
        # block index (with P = 8 and a 4x4x4 grid, I*16 = 0 mod 8 makes
        # linear coincide with pencil).
        machine = ethernet_2007(7)
        pencil = simulate_wavefront(grid, machine, mapping="pencil")
        linear = simulate_wavefront(grid, machine, mapping="linear")
        # Pencil keeps the i-axis local, so it must move fewer bytes.
        assert pencil.comm_volume_bytes < linear.comm_volume_bytes


class TestMetrics:
    def test_avg_utilisation_in_unit_interval(self, grid):
        r = simulate_wavefront(grid, ethernet_2007(8))
        assert 0 < r.avg_utilisation <= 1

    def test_empty_grid_degenerate(self):
        g = BlockGrid(dims=(1, 1, 1), block=(4, 4, 4))
        r = simulate_wavefront(g, MachineModel(procs=2))
        assert r.blocks == 1
        assert r.messages == 0
