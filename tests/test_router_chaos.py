"""Replica-kill chaos: SIGKILL one backend mid-load and require the
client-visible stream to stay perfect.

The router's whole robustness claim is that content-addressed results
make failover invisible: a retried slice can only come back
bit-identical, so a killed replica must cost zero failed requests and
zero wrong answers. These tests run real ``repro serve`` subprocesses
(so SIGKILL is a genuine process death, not a mock) behind an
in-process RouterServer, then assert:

* every response is a 200 with rows/score bit-identical to a direct
  in-process ``align3`` of the same triple — no 5xx, ever;
* the killed replica is ejected (hard ``connect`` evidence) and, after
  a restart on the same port, readmitted through the half-open probe;
* async job ids stay globally unique across replicas (the router's
  ``<replica>.<jid>`` namespacing).

Marked ``chaos`` + ``serve``: real sockets, real process kills.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.api import align3
from repro.core.scoring import default_scheme_for
from repro.seqio.alphabet import DNA
from repro.seqio.generate import mutated_family
from repro.serve import ServeClient

from tests.test_router import RouterThread

pytestmark = [pytest.mark.chaos, pytest.mark.serve]


class ReplicaProc:
    """A ``repro serve`` child process the test may SIGKILL."""

    def __init__(self, *extra: str, port: int = 0):
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--workers", "1", *extra],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port = self._await_port()
        threading.Thread(target=self._drain_stderr, daemon=True).start()

    def _await_port(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        assert self.proc.stderr is not None
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                raise RuntimeError(
                    f"replica exited before binding (rc={self.proc.poll()})"
                )
            m = re.match(r"# serving on [\d.]+:(\d+)", line)
            if m:
                return int(m.group(1))
        raise RuntimeError("timed out waiting for the serving banner")

    def _drain_stderr(self) -> None:
        assert self.proc.stderr is not None
        for _line in self.proc.stderr:
            pass

    def kill_hard(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait(timeout=10)


def _replica_states(client: ServeClient) -> dict[str, dict]:
    health = client.healthz()
    return {r["name"]: r for r in health.body["replicas"]}


def _await(predicate, timeout: float, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_replica_kill_mid_load_zero_failed_requests():
    uniques = [tuple(mutated_family(12, seed=500 + i)) for i in range(6)]
    scheme = default_scheme_for(DNA)
    want = {u: align3(*u, scheme) for u in uniques}

    replicas = [ReplicaProc() for _ in range(3)]
    try:
        with RouterThread(
            [r.port for r in replicas],
            health_interval_s=0.1,
            eject_cooldown_s=0.4,
            connect_timeout_s=0.5,
        ) as rt:
            n_requests = 72
            payloads = [uniques[i % len(uniques)] for i in range(n_requests)]
            responses: list = [None] * n_requests
            it = iter(enumerate(payloads))
            lock = threading.Lock()

            def worker() -> None:
                with ServeClient("127.0.0.1", rt.port, timeout=90.0) as c:
                    while True:
                        with lock:
                            try:
                                i, triple = next(it)
                            except StopIteration:
                                return
                        responses[i] = c.align(seqs=list(triple))

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            # Kill one replica while the load is genuinely in flight.
            time.sleep(0.15)
            victim = replicas[0]
            victim.kill_hard()
            killed_at = time.monotonic()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)

            # Bit-identity, zero failures: every request got a 200 with
            # exactly the rows/score align3 computes in-process.
            statuses = [r.status for r in responses]
            assert statuses == [200] * n_requests, (
                f"non-200 under replica kill: "
                f"{sorted(set(statuses) - {200})}"
            )
            for i, resp in enumerate(responses):
                expect = want[payloads[i]]
                got = resp.body["results"][0]
                assert tuple(got["rows"]) == expect.rows
                assert float(got["score"]) == expect.score

            # The victim must be ejected within one health interval of
            # the poll loop seeing the death (generous wall bound).
            with ServeClient("127.0.0.1", rt.port) as c:
                assert _await(
                    lambda: not _replica_states(c)["r0"]["routable"],
                    timeout=2.0,
                )
                assert time.monotonic() - killed_at < 5.0
                states = _replica_states(c)
                # Hard connect evidence if the kill landed between
                # exchanges; soft bad_response evidence if it landed
                # mid-exchange (dropped in-flight connections).
                assert states["r0"]["last_failure"] in (
                    "connect", "bad_response"
                )
                assert states["r1"]["routable"]
                assert states["r2"]["routable"]

                # Restart on the *same* port: the half-open probe must
                # readmit the replica without operator action.
                replicas[0] = ReplicaProc(port=victim.port)
                assert _await(
                    lambda: _replica_states(c)["r0"]["state"] == "healthy",
                    timeout=10.0,
                ), "killed replica never readmitted after restart"

                # And it takes traffic again: full-batch scatter works.
                resp = c.align(
                    requests=[{"seqs": list(u)} for u in uniques]
                )
                assert resp.status == 200
                assert resp.body["count"] == len(uniques)
    finally:
        for r in replicas:
            r.terminate()


def test_async_job_ids_unique_across_replicas():
    uniques = [tuple(mutated_family(10, seed=700 + i)) for i in range(8)]
    replicas = [ReplicaProc() for _ in range(2)]
    try:
        with RouterThread([r.port for r in replicas]) as rt, ServeClient(
            "127.0.0.1", rt.port
        ) as client:
            jids = []
            for u in uniques:
                resp = client.align(seqs=list(u), want_async=True)
                assert resp.status == 202
                jids.append(resp.body["job"])
            assert len(set(jids)) == len(jids), f"duplicate job ids: {jids}"
            # Both replicas issued jobs (ring spread over 8 keys) and
            # every id polls back to the replica that owns it.
            assert len({j.split(".", 1)[0] for j in jids}) == 2
            for jid in jids:
                assert _await(
                    lambda: client.job(jid).body.get("status") == "done",
                    timeout=30.0,
                ), f"job {jid} never finished"
    finally:
        for r in replicas:
            r.terminate()
