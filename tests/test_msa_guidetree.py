"""Unit tests for repro.msa.distance and repro.msa.guidetree."""

import numpy as np
import pytest

from repro.msa.distance import distance_matrix, score_matrix
from repro.msa.guidetree import GuideTree, upgma
from repro.pairwise.nw import score2


class TestScoreMatrix:
    def test_symmetric_with_self_scores(self, dna_scheme):
        seqs = ["ACGT", "ACGA", "TTTT"]
        S = score_matrix(seqs, dna_scheme)
        assert np.allclose(S, S.T)
        assert S[0, 0] == pytest.approx(4 * 5.0)
        assert S[0, 1] == pytest.approx(score2("ACGT", "ACGA", dna_scheme))


class TestDistanceMatrix:
    def test_identical_distance_zero(self, dna_scheme):
        D = distance_matrix(["ACGT", "ACGT"], dna_scheme)
        assert D[0, 1] == pytest.approx(0.0)

    def test_diagonal_zero(self, dna_scheme):
        D = distance_matrix(["ACGT", "TTTT", "AAAA"], dna_scheme)
        assert np.all(np.diag(D) == 0)

    def test_unrelated_farther_than_related(self, dna_scheme):
        D = distance_matrix(["ACGTACGT", "ACGTACGA", "TTGATTGA"], dna_scheme)
        assert D[0, 1] < D[0, 2]

    def test_nonnegative(self, dna_scheme):
        D = distance_matrix(["AC", "GT", "CA", ""], dna_scheme)
        assert (D >= 0).all()


class TestUpgma:
    def test_single_leaf(self):
        tree = upgma(np.zeros((1, 1)))
        assert tree.root == 0
        assert tree.members(0) == [0]

    def test_two_leaves(self):
        D = np.array([[0.0, 2.0], [2.0, 0.0]])
        tree = upgma(D)
        assert tree.merges == [(0, 1, 1.0)]
        assert sorted(tree.members(tree.root)) == [0, 1]

    def test_closest_pair_merged_first(self):
        D = np.array(
            [
                [0.0, 0.1, 0.9],
                [0.1, 0.0, 0.8],
                [0.9, 0.8, 0.0],
            ]
        )
        tree = upgma(D)
        first = tree.merges[0]
        assert sorted((first[0], first[1])) == [0, 1]

    def test_average_linkage_height(self):
        D = np.array(
            [
                [0.0, 0.2, 1.0],
                [0.2, 0.0, 0.6],
                [1.0, 0.6, 0.0],
            ]
        )
        tree = upgma(D)
        # Second merge distance = mean(1.0, 0.6) = 0.8 -> height 0.4.
        assert tree.merges[1][2] == pytest.approx(0.4)

    def test_members_cover_all_leaves(self):
        rng = np.random.default_rng(0)
        n = 7
        M = rng.random((n, n))
        D = (M + M.T) / 2
        np.fill_diagonal(D, 0.0)
        tree = upgma(D)
        assert sorted(tree.members(tree.root)) == list(range(n))
        assert len(tree.merges) == n - 1

    def test_newick_renders_all_names(self):
        D = np.array(
            [
                [0.0, 0.2, 1.0],
                [0.2, 0.0, 0.6],
                [1.0, 0.6, 0.0],
            ]
        )
        tree = upgma(D)
        nwk = tree.newick(["a", "b", "c"])
        assert nwk.endswith(";")
        for name in ("a", "b", "c"):
            assert name in nwk

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            upgma(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="symmetric"):
            upgma(np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            upgma(np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(ValueError, match="empty"):
            upgma(np.zeros((0, 0)))

    def test_deterministic_on_ties(self):
        D = np.ones((4, 4)) - np.eye(4)
        t1 = upgma(D)
        t2 = upgma(D)
        assert t1.merges == t2.merges
