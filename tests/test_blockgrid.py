"""Unit tests for repro.cluster.blockgrid."""

import pytest

from repro.cluster.blockgrid import MAPPINGS, BlockGrid


@pytest.fixture
def grid():
    return BlockGrid.for_sequences(50, 50, 50, 16)


class TestShape:
    def test_grid_shape_ceiling(self, grid):
        assert grid.grid_shape == (4, 4, 4)  # ceil(51/16)

    def test_n_blocks(self, grid):
        assert grid.n_blocks == 64

    def test_anisotropic_blocks(self):
        g = BlockGrid.for_sequences(10, 20, 30, (4, 8, 16))
        assert g.grid_shape == (3, 3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockGrid(dims=(0, 5, 5), block=(2, 2, 2))
        with pytest.raises(ValueError):
            BlockGrid(dims=(5, 5, 5), block=(0, 2, 2))


class TestEnumeration:
    def test_every_block_once(self, grid):
        blocks = list(grid.blocks())
        assert len(blocks) == grid.n_blocks
        assert len(set(blocks)) == grid.n_blocks

    def test_wavefront_order(self, grid):
        planes = [sum(b) for b in grid.blocks()]
        assert planes == sorted(planes)

    def test_cells_partition_lattice(self, grid):
        assert sum(grid.block_cells(b) for b in grid.blocks()) == grid.total_cells()

    def test_boundary_blocks_smaller(self, grid):
        assert grid.block_cells((0, 0, 0)) == 16**3
        assert grid.block_cells((3, 3, 3)) == 3**3  # 51 = 3*16 + 3

    def test_block_index_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.block_cells((4, 0, 0))


class TestDependencies:
    def test_origin_has_none(self, grid):
        assert grid.dependencies((0, 0, 0)) == []

    def test_interior_has_seven(self, grid):
        deps = grid.dependencies((1, 1, 1))
        assert len(deps) == 7

    def test_payloads(self, grid):
        deps = dict(grid.dependencies((1, 1, 1)))
        assert deps[(0, 1, 1)] == 16 * 16  # face
        assert deps[(0, 0, 1)] == 16  # edge
        assert deps[(0, 0, 0)] == 1  # corner

    def test_boundary_payloads_shrink(self, grid):
        deps = dict(grid.dependencies((3, 3, 3)))
        assert deps[(2, 3, 3)] == 3 * 3

    def test_edges_point_backwards(self, grid):
        for blk in grid.blocks():
            for src, _payload in grid.dependencies(blk):
                assert sum(src) < sum(blk)
                assert all(s <= b for s, b in zip(src, blk))


class TestOwnership:
    @pytest.mark.parametrize("mapping", MAPPINGS)
    def test_owners_in_range(self, grid, mapping):
        for blk in grid.blocks():
            assert 0 <= grid.owner(blk, 7, mapping) < 7

    def test_pencil_keeps_i_axis_local(self, grid):
        for bj in range(4):
            for bk in range(4):
                owners = {grid.owner((bi, bj, bk), 5, "pencil") for bi in range(4)}
                assert len(owners) == 1

    def test_slab_contiguous(self, grid):
        owners = [grid.owner((bi, 0, 0), 2, "slab") for bi in range(4)]
        assert owners == sorted(owners)

    def test_unknown_mapping(self, grid):
        with pytest.raises(ValueError, match="unknown mapping"):
            grid.owner((0, 0, 0), 2, "bogus")

    def test_procs_validated(self, grid):
        with pytest.raises(ValueError):
            grid.owner((0, 0, 0), 0)

    def test_single_proc_owns_everything(self, grid):
        assert {grid.owner(b, 1) for b in grid.blocks()} == {0}
