"""Unit tests for local three-sequence alignment (repro.core.local)."""

import numpy as np
import pytest

from repro.core.dp3d import score3_dp3d
from repro.core.local import (
    align3_local,
    local_dp3d_matrix,
    local_sweep,
    score3_local,
)
from repro.seqio.generate import random_sequence


class TestEnginesAgree:
    def test_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            D, _ = local_dp3d_matrix(*triple, dna_scheme)
            ref = float(D.max())
            got = score3_local(*triple, dna_scheme)
            assert got == pytest.approx(ref), triple

    def test_random_medium(self, dna_scheme):
        rng = np.random.default_rng(7)
        for trial in range(5):
            seqs = [
                random_sequence(int(n), seed=800 + trial * 3 + t)
                for t, n in enumerate(rng.integers(5, 20, size=3))
            ]
            D, _ = local_dp3d_matrix(*seqs, dna_scheme)
            assert score3_local(*seqs, dna_scheme) == pytest.approx(
                float(D.max())
            )


class TestInvariants:
    def test_nonnegative(self, dna_scheme, small_triples):
        for triple in small_triples:
            assert score3_local(*triple, dna_scheme) >= 0

    def test_dominates_global(self, dna_scheme, family_small):
        local = score3_local(*family_small, dna_scheme)
        global_ = score3_dp3d(*family_small, dna_scheme)
        assert local >= global_ - 1e-9

    def test_identical_sequences_full_match(self, dna_scheme):
        s = "ACGTACGT"
        assert score3_local(s, s, s, dna_scheme) == pytest.approx(
            sum(3 * dna_scheme.pair_score(c, c) for c in s)
        )

    def test_disjoint_sequences_zero_or_small(self, dna_scheme):
        # All-mismatching single characters: best local alignment may take
        # one column (3 * mismatch < 0) or nothing; must be 0.
        assert score3_local("A", "C", "G", dna_scheme) == 0.0

    def test_embedded_motif_found(self, dna_scheme):
        motif = "GATTACCA"
        sa = "TTTT" + motif + "CCCC"
        sb = "AAGG" + motif + "TT"
        sc = motif + "GGGGGG"
        aln = align3_local(sa, sb, sc, dna_scheme)
        assert aln.rows[0] == motif
        assert aln.rows[1] == motif
        assert aln.rows[2] == motif
        spans = aln.meta["spans"]
        assert spans[0] == (4, 4 + len(motif))
        assert spans[2] == (0, len(motif))

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            score3_local("A", "A", "A", dna_scheme.with_gaps(-1, -1))


class TestAlignment:
    def test_rows_are_substrings(self, dna_scheme, family_small):
        aln = align3_local(*family_small, dna_scheme)
        for row, seq, span in zip(
            aln.rows, family_small, aln.meta["spans"]
        ):
            assert row.replace("-", "") == seq[span[0] : span[1]]

    def test_score_matches_sp_of_rows(self, dna_scheme, family_small):
        aln = align3_local(*family_small, dna_scheme)
        assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)

    def test_empty_alignment_when_everything_negative(self, dna_scheme):
        aln = align3_local("A", "C", "G", dna_scheme)
        assert aln.rows == ("", "", "")
        assert aln.score == 0.0

    def test_score_only_sweep(self, dna_scheme, family_small):
        res = local_sweep(*family_small, dna_scheme, score_only=True)
        assert res.move_cube is None
        assert res.score == pytest.approx(score3_local(*family_small, dna_scheme))

    def test_end_cell_consistent(self, dna_scheme, family_small):
        res = local_sweep(*family_small, dna_scheme)
        D, _ = local_dp3d_matrix(*family_small, dna_scheme)
        assert D[res.end_cell] == pytest.approx(res.score)
