"""Independent ground-truth implementations used only by tests.

Two oracles, both deliberately written in a different style from the
library code so a shared bug is unlikely:

* :func:`bruteforce_enumerate` — literally enumerates every three-way
  alignment (every move sequence) and scores the emitted columns with the
  scheme's column scorer. Exponential; use for sequence lengths <= 3.
* :func:`memo_optimal_score` — top-down memoised recursion on (i, j, k)
  suffixes. Polynomial but scalar; use for lengths <= ~12.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.scoring import ScoringScheme
from repro.seqio.alphabet import GAP_CHAR

_MOVES = [
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
]


def bruteforce_enumerate(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """Exhaustive maximum over all three-way alignments (tiny inputs!)."""
    best = [float("-inf")]

    def go(i: int, j: int, k: int, acc: float) -> None:
        if i == len(sa) and j == len(sb) and k == len(sc):
            if acc > best[0]:
                best[0] = acc
            return
        for di, dj, dk in _MOVES:
            ni, nj, nk = i + di, j + dj, k + dk
            if ni > len(sa) or nj > len(sb) or nk > len(sc):
                continue
            ca = sa[i] if di else GAP_CHAR
            cb = sb[j] if dj else GAP_CHAR
            cc = sc[k] if dk else GAP_CHAR
            go(ni, nj, nk, acc + scheme.column_score(ca, cb, cc))

    go(0, 0, 0, 0.0)
    return best[0]


def memo_optimal_score(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """Memoised top-down optimum (suffix formulation, unlike the library's
    bottom-up prefix DP)."""

    @lru_cache(maxsize=None)
    def best_from(i: int, j: int, k: int) -> float:
        if i == len(sa) and j == len(sb) and k == len(sc):
            return 0.0
        out = float("-inf")
        for di, dj, dk in _MOVES:
            ni, nj, nk = i + di, j + dj, k + dk
            if ni > len(sa) or nj > len(sb) or nk > len(sc):
                continue
            ca = sa[i] if di else GAP_CHAR
            cb = sb[j] if dj else GAP_CHAR
            cc = sc[k] if dk else GAP_CHAR
            v = scheme.column_score(ca, cb, cc) + best_from(ni, nj, nk)
            if v > out:
                out = v
        return out

    return best_from(0, 0, 0)


def memo_optimal_pairwise(sx: str, sy: str, scheme: ScoringScheme) -> float:
    """Memoised pairwise optimum (suffix formulation)."""

    @lru_cache(maxsize=None)
    def best_from(i: int, j: int) -> float:
        if i == len(sx) and j == len(sy):
            return 0.0
        out = float("-inf")
        if i < len(sx) and j < len(sy):
            out = max(
                out,
                scheme.pair_score(sx[i], sy[j]) + best_from(i + 1, j + 1),
            )
        if i < len(sx):
            out = max(out, scheme.gap + best_from(i + 1, j))
        if j < len(sy):
            out = max(out, scheme.gap + best_from(i, j + 1))
        return out

    return best_from(0, 0)
