"""Unit tests for the 7-state affine engine (repro.core.affine)."""

import numpy as np
import pytest

from repro.core.affine import (
    affine_reference,
    affine_sweep,
    align3_affine,
    score3_affine,
)
from repro.core.dp3d import score3_dp3d
from repro.seqio.generate import random_sequence


class TestAgainstScalarReference:
    def test_small_battery(self, small_triples, affine_dna_scheme):
        for triple in small_triples:
            if sum(len(s) for s in triple) > 18:
                continue  # scalar reference is slow
            expected = affine_reference(*triple, affine_dna_scheme)
            got = score3_affine(*triple, affine_dna_scheme)
            assert got == pytest.approx(expected), triple

    def test_random_extra(self, affine_dna_scheme):
        rng = np.random.default_rng(42)
        for trial in range(6):
            lens = rng.integers(0, 6, size=3)
            seqs = [
                random_sequence(int(n), seed=500 + 3 * trial + t)
                for t, n in enumerate(lens)
            ]
            assert score3_affine(*seqs, affine_dna_scheme) == pytest.approx(
                affine_reference(*seqs, affine_dna_scheme)
            ), seqs


class TestDegenerateToLinear:
    def test_zero_open_equals_linear_model(self, dna_scheme, family_small):
        zero_open = dna_scheme.with_gaps(gap=dna_scheme.gap, gap_open=0.0)
        got = score3_affine(*family_small, zero_open)
        expected = score3_dp3d(*family_small, dna_scheme)
        assert got == pytest.approx(expected)


class TestAlignment:
    def test_traceback_score_consistent(self, affine_dna_scheme, small_triples):
        for triple in small_triples:
            aln = align3_affine(*triple, affine_dna_scheme)
            recomputed = affine_dna_scheme.sp_score_affine_quasinatural(aln.rows)
            assert recomputed == pytest.approx(aln.score), triple
            assert aln.sequences() == tuple(triple)

    def test_alignment_is_optimal(self, affine_dna_scheme, family_small):
        aln = align3_affine(*family_small, affine_dna_scheme)
        assert aln.score == pytest.approx(
            score3_affine(*family_small, affine_dna_scheme)
        )

    def test_meta(self, affine_dna_scheme):
        aln = align3_affine("ACG", "AG", "AC", affine_dna_scheme)
        assert aln.meta["engine"] == "affine"
        assert aln.meta["states"] == 8

    def test_empty_inputs(self, affine_dna_scheme):
        aln = align3_affine("", "", "", affine_dna_scheme)
        assert aln.rows == ("", "", "")
        assert aln.score == 0.0

    def test_gap_open_discourages_scattered_gaps(self, dna_scheme):
        # With a harsh opening penalty the aligner should prefer one long
        # run over many short ones; compare against a mild-open scheme.
        sa = "AAAACCCCAAAA"
        sb = "AAAAAAAA"
        sc = "AAAACCCCAAAA"
        harsh = dna_scheme.with_gaps(gap=-1.0, gap_open=-20.0)
        aln = align3_affine(sa, sb, sc, harsh)
        # Count gap runs in row B (the short sequence).
        row_b = aln.rows[1]
        runs = sum(
            1
            for idx, ch in enumerate(row_b)
            if ch == "-" and (idx == 0 or row_b[idx - 1] != "-")
        )
        assert runs == 1


class TestSweep:
    def test_score_only_drops_prev_state(self, affine_dna_scheme):
        res = affine_sweep("AC", "AG", "AT", affine_dna_scheme, score_only=True)
        assert res.prev_state is None
        assert res.final_states is not None

    def test_cells_counted(self, affine_dna_scheme):
        res = affine_sweep("AC", "A", "A", affine_dna_scheme, score_only=True)
        assert res.cells_computed == 3 * 2 * 2

    def test_affine_score_at_most_linear_like_envelope(
        self, dna_scheme, family_small
    ):
        # Adding a nonpositive opening penalty can only lower the optimum
        # relative to the same scheme with gap_open = 0.
        aff = dna_scheme.with_gaps(gap=dna_scheme.gap, gap_open=-5.0)
        linear = score3_dp3d(*family_small, dna_scheme)
        assert score3_affine(*family_small, aff) <= linear + 1e-9
