"""Tests for repo tooling (gen_api_doc.py, check_overhead.py) and the
generated doc."""

import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_generator_runs_and_covers_subpackages(tmp_path):
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_doc.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    text = (ROOT / "docs" / "api.md").read_text()
    for module in (
        "repro.core.wavefront",
        "repro.core.hirschberg",
        "repro.cluster.simulate",
        "repro.parallel.executor",
        "repro.msa.progressive",
        "repro.analysis.compare",
        "repro.seqio.fasta",
    ):
        assert f"`{module}`" in text, module


def test_check_overhead_smoke():
    # Tiny cube and a loose tolerance: this verifies the guard's plumbing
    # (imports, measurement loop, output-identity check), not the 10%
    # budget itself — that is enforced by running the tool standalone on a
    # quiet machine.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_overhead.py"),
            "--n", "16",
            "--repeats", "2",
            "--tolerance", "5.0",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout and "overhead=" in result.stdout


def test_check_chaos_smoke():
    # Small cube and loose limits: verifies every fault scenario's plumbing
    # (injection, recovery, checksum/resend, degradation) end to end; the
    # real 40^3 / 10% run is the standalone acceptance gate.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_chaos.py"),
            "--n", "16",
            "--repeats", "2",
            "--tolerance", "5.0",
            "--budget", "240",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout


def test_check_batch_smoke():
    # Small duplicate-heavy batch with a loose speedup bound: verifies the
    # gate's plumbing (dedup accounting, bit-identity sweep, warm re-run);
    # the real 200-request / 2x run is the standalone acceptance gate.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_batch.py"),
            "--requests", "30",
            "--unique", "6",
            "--n", "16",
            "--repeats", "1",
            "--min-speedup", "1.2",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout and "dedup_ratio=" in result.stdout


def test_check_serve_smoke():
    # Small request count at low concurrency: verifies the gate's three
    # phases end to end (spawn + bit-identity + dedup, tiny-queue 429s,
    # SIGTERM drain); the full 200-request / 16-way run is the standalone
    # acceptance gate.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_serve.py"),
            "--requests", "40",
            "--unique", "8",
            "--n", "12",
            "--concurrency", "8",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout and "dedup_ratio=" in result.stdout


def test_check_runs_smoke():
    # Full round trip of the run-record gate in its own temp store: seed
    # from the committed baseline, record, re-gate against the rolling
    # median, torn-line repair, gc and trend render.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_runs.py"),
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout


def test_check_all_discovers_every_gate():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_all.py"), "--list"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    listed = set(result.stdout.split())
    on_disk = {
        p.name
        for p in (ROOT / "tools").glob("check_*.py")
        if p.name != "check_all.py"
    }
    assert listed == on_disk
    assert "check_serve.py" in listed


def test_check_all_rejects_unknown_gate():
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_all.py"),
            "--only", "no_such_gate",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2


def test_api_doc_mentions_key_entry_points():
    text = (ROOT / "docs" / "api.md").read_text()
    for name in ("align3", "WavefrontPool", "simulate_wavefront",
                 "carrillo_lipman_mask", "align_msa", "run_distributed"):
        assert name in text, name
