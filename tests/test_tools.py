"""Tests for repo tooling (tools/gen_api_doc.py) and the generated doc."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_generator_runs_and_covers_subpackages(tmp_path):
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_doc.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    text = (ROOT / "docs" / "api.md").read_text()
    for module in (
        "repro.core.wavefront",
        "repro.core.hirschberg",
        "repro.cluster.simulate",
        "repro.parallel.executor",
        "repro.msa.progressive",
        "repro.analysis.compare",
        "repro.seqio.fasta",
    ):
        assert f"`{module}`" in text, module


def test_api_doc_mentions_key_entry_points():
    text = (ROOT / "docs" / "api.md").read_text()
    for name in ("align3", "WavefrontPool", "simulate_wavefront",
                 "carrillo_lipman_mask", "align_msa", "run_distributed"):
        assert name in text, name
