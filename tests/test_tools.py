"""Tests for repo tooling (gen_api_doc.py, check_overhead.py, the
check_perf gate plumbing) and the generated doc."""

import copy
import functools
import importlib.util
import json
import os
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@functools.lru_cache(maxsize=1)
def _load_check_perf():
    spec = importlib.util.spec_from_file_location(
        "check_perf", ROOT / "tools" / "check_perf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckPerfGate:
    """In-process check_perf runs with the expensive benchmark stubbed
    out: the gate logic (floors, tolerance, trajectory fallback, loud
    failure on a missing scaling reference) in milliseconds."""

    @pytest.fixture()
    def cp(self, monkeypatch):
        module = _load_check_perf()
        baseline = json.loads(
            (ROOT / "BENCH_kernel.json").read_text()
        )
        # The fresh "measurement" reproduces the baseline exactly, so
        # every ratio gate passes with zero margin consumed.
        monkeypatch.setattr(
            module.bench_kernel,
            "run",
            lambda config: copy.deepcopy(baseline),
        )
        return module

    def test_passes_and_reports_every_gate(self, cp, tmp_path, capsys):
        rc = cp.main(
            ["--no-record", "--runs-file", str(tmp_path / "RUNS.jsonl")]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        for label in ("small", "large", "pruned", "scaling"):
            assert f"{label} reference:" in out

    def test_missing_scaling_section_fails_loudly(
        self, cp, tmp_path, monkeypatch, capsys
    ):
        # A hand-edited baseline without the scaling section must fail
        # the gate outright — not silently skip the block-tiled check.
        doc = json.loads((ROOT / "BENCH_kernel.json").read_text())
        doc.pop("scaling")
        mangled = tmp_path / "BENCH_kernel.json"
        mangled.write_text(json.dumps(doc))
        monkeypatch.setattr(
            cp.bench_kernel, "baseline_path", lambda: mangled
        )
        rc = cp.main(
            ["--no-record", "--runs-file", str(tmp_path / "RUNS.jsonl")]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "no scaling section" in out

    def test_missing_baseline_is_a_hard_error_even_with_trajectory(
        self, cp, tmp_path, monkeypatch, capsys
    ):
        # Neither source exists: empty run store and no committed
        # baseline — the gate must refuse to run, not vacuously pass.
        monkeypatch.setattr(
            cp.bench_kernel,
            "baseline_path",
            lambda: tmp_path / "nope.json",
        )
        rc = cp.main(
            [
                "--trajectory",
                "--no-record",
                "--runs-file",
                str(tmp_path / "RUNS.jsonl"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 2
        assert "FAIL" in out

    def test_trajectory_on_empty_store_falls_back_to_baseline(
        self, cp, tmp_path, capsys
    ):
        runs = tmp_path / "RUNS.jsonl"
        rc = cp.main(["--trajectory", "--no-record", "--runs-file", str(runs)])
        out = capsys.readouterr().out
        assert rc == 0, out
        # Every gate — including the new scaling one — reports the
        # committed-baseline fallback while the trajectory is thin.
        assert out.count("from baseline (trajectory has 0") == 4
        # The baseline was migrated as the seed row, scaling metric
        # included, so the trend view starts non-empty.
        from repro.runs import RunStore

        rows = RunStore(runs).records(kind="bench_kernel")
        assert len(rows) == 1
        assert rows[0].metric("scaling_speedup") > 0


def test_generator_runs_and_covers_subpackages(tmp_path):
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_doc.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    text = (ROOT / "docs" / "api.md").read_text()
    for module in (
        "repro.core.wavefront",
        "repro.core.hirschberg",
        "repro.cluster.simulate",
        "repro.parallel.executor",
        "repro.msa.progressive",
        "repro.analysis.compare",
        "repro.seqio.fasta",
    ):
        assert f"`{module}`" in text, module


def test_check_overhead_smoke():
    # Tiny cube and a loose tolerance: this verifies the guard's plumbing
    # (imports, measurement loop, output-identity check), not the 10%
    # budget itself — that is enforced by running the tool standalone on a
    # quiet machine.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_overhead.py"),
            "--n", "16",
            "--repeats", "2",
            "--tolerance", "5.0",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout and "overhead=" in result.stdout


def test_check_chaos_smoke():
    # Small cube and loose limits: verifies every fault scenario's plumbing
    # (injection, recovery, checksum/resend, degradation) end to end; the
    # real 40^3 / 10% run is the standalone acceptance gate.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_chaos.py"),
            "--n", "16",
            "--repeats", "2",
            "--tolerance", "5.0",
            "--budget", "240",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout


def test_check_batch_smoke():
    # Small duplicate-heavy batch with a loose speedup bound: verifies the
    # gate's plumbing (dedup accounting, bit-identity sweep, warm re-run);
    # the real 200-request / 2x run is the standalone acceptance gate.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_batch.py"),
            "--requests", "30",
            "--unique", "6",
            "--n", "16",
            "--repeats", "1",
            "--min-speedup", "1.2",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout and "dedup_ratio=" in result.stdout


def test_check_serve_smoke():
    # Small request count at low concurrency: verifies the gate's three
    # phases end to end (spawn + bit-identity + dedup, tiny-queue 429s,
    # SIGTERM drain); the full 200-request / 16-way run is the standalone
    # acceptance gate.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_serve.py"),
            "--requests", "40",
            "--unique", "8",
            "--n", "12",
            "--concurrency", "8",
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout and "dedup_ratio=" in result.stdout


def test_check_runs_smoke():
    # Full round trip of the run-record gate in its own temp store: seed
    # from the committed baseline, record, re-gate against the rolling
    # median, torn-line repair, gc and trend render.
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_runs.py"),
            "--no-record",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout


def test_check_all_discovers_every_gate():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_all.py"), "--list"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    listed = set(result.stdout.split())
    on_disk = {
        p.name
        for p in (ROOT / "tools").glob("check_*.py")
        if p.name != "check_all.py"
    }
    assert listed == on_disk
    assert "check_serve.py" in listed


def test_check_all_rejects_unknown_gate():
    result = subprocess.run(
        [
            sys.executable,
            str(ROOT / "tools" / "check_all.py"),
            "--only", "no_such_gate",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2


def test_api_doc_mentions_key_entry_points():
    text = (ROOT / "docs" / "api.md").read_text()
    for name in ("align3", "WavefrontPool", "simulate_wavefront",
                 "carrillo_lipman_mask", "align_msa", "run_distributed"):
        assert name in text, name
