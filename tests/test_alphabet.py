"""Unit tests for repro.seqio.alphabet."""

import numpy as np
import pytest

from repro.seqio.alphabet import (
    DNA,
    GAP_CHAR,
    PROTEIN,
    RNA,
    Alphabet,
    guess_alphabet,
)


class TestEncodeDecode:
    def test_roundtrip_dna(self):
        seq = "ACGTACGT"
        assert DNA.decode(DNA.encode(seq)) == seq

    def test_roundtrip_protein(self):
        seq = "ARNDCQEGHILKMFPSTWYV"
        assert PROTEIN.decode(PROTEIN.encode(seq)) == seq

    def test_codes_are_positional(self):
        codes = DNA.encode("ACGT")
        assert list(codes) == [0, 1, 2, 3]

    def test_encode_dtype(self):
        assert DNA.encode("ACGT").dtype == np.uint8

    def test_lowercase_accepted(self):
        assert list(DNA.encode("acgt")) == [0, 1, 2, 3]

    def test_empty_sequence(self):
        assert len(DNA.encode("")) == 0
        assert DNA.decode(np.array([], dtype=np.uint8)) == ""

    def test_wildcard_encodes_to_last_code(self):
        assert int(DNA.encode("N")[0]) == 4
        assert int(PROTEIN.encode("X")[0]) == 20

    def test_wildcard_decodes(self):
        assert DNA.decode(np.array([4])) == "N"

    def test_invalid_character_raises(self):
        with pytest.raises(ValueError, match="not in alphabet"):
            DNA.encode("ACGZ")

    def test_decode_out_of_range_raises(self):
        with pytest.raises(ValueError, match="outside alphabet"):
            DNA.decode(np.array([99]))


class TestAlphabetProperties:
    def test_sizes(self):
        assert DNA.size == 5  # ACGT + N
        assert RNA.size == 5
        assert PROTEIN.size == 21  # 20 + X

    def test_contains(self):
        assert "A" in DNA
        assert "a" in DNA
        assert "N" in DNA
        assert "Z" not in DNA

    def test_is_valid(self):
        assert DNA.is_valid("ACGTN")
        assert not DNA.is_valid("ACGU")

    def test_duplicate_letters_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet("bad", "AAC")

    def test_gap_char_rejected_as_letter(self):
        with pytest.raises(ValueError, match="gap character"):
            Alphabet("bad", "AB-")

    def test_wildcard_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            Alphabet("bad", "ABC", wildcard="A")

    def test_gap_char_constant(self):
        assert GAP_CHAR == "-"


class TestGuessAlphabet:
    def test_guess_dna(self):
        assert guess_alphabet("ACGTACGT").name == "dna"

    def test_guess_rna(self):
        assert guess_alphabet("ACGUACGU").name == "rna"

    def test_guess_protein(self):
        assert guess_alphabet("MVLSPADKTNVK").name == "protein"

    def test_guess_failure(self):
        with pytest.raises(ValueError, match="does not match"):
            guess_alphabet("B1Z@")

    def test_dna_preferred_over_protein(self):
        # ACGT are all valid amino acids too; DNA wins by priority.
        assert guess_alphabet("ACGT").name == "dna"
