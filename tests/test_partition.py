"""Unit tests for repro.parallel.partition."""

import pytest

from repro.parallel.partition import (
    active_workers,
    balanced_blocks,
    band_depth,
    block_predecessors,
    max_plane_rows,
    plane_bands,
    plane_window,
    row_slabs,
    split_cyclic,
    split_range,
)


class TestSplitRange:
    def test_even_split(self):
        assert split_range(0, 9, 2) == [(0, 4), (5, 9)]

    def test_uneven_split_differs_by_one(self):
        chunks = split_range(0, 10, 4)
        sizes = [hi - lo + 1 for lo, hi in chunks]
        assert sum(sizes) == 11
        assert max(sizes) - min(sizes) <= 1

    def test_covers_range_contiguously(self):
        chunks = split_range(3, 17, 5)
        cells = [x for lo, hi in chunks for x in range(lo, hi + 1)]
        assert cells == list(range(3, 18))

    def test_more_parts_than_items(self):
        chunks = split_range(0, 1, 4)
        nonempty = [(lo, hi) for lo, hi in chunks if lo <= hi]
        assert len(chunks) == 4
        assert sum(hi - lo + 1 for lo, hi in nonempty) == 2

    def test_empty_range(self):
        chunks = split_range(5, 4, 3)
        assert all(lo > hi for lo, hi in chunks)
        assert len(chunks) == 3

    def test_single_part(self):
        assert split_range(2, 8, 1) == [(2, 8)]

    def test_parts_validated(self):
        with pytest.raises(ValueError):
            split_range(0, 5, 0)


class TestSplitCyclic:
    def test_round_robin(self):
        assert split_cyclic(5, 2) == [[0, 2, 4], [1, 3]]

    def test_all_indices_assigned_once(self):
        owners = split_cyclic(17, 5)
        flat = sorted(x for lst in owners for x in lst)
        assert flat == list(range(17))

    def test_zero_count(self):
        assert split_cyclic(0, 3) == [[], [], []]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            split_cyclic(-1, 2)


class TestBalancedBlocks:
    def test_exact_division(self):
        assert balanced_blocks(8, 4) == [(0, 3), (4, 7)]

    def test_remainder_block(self):
        assert balanced_blocks(10, 4) == [(0, 3), (4, 7), (8, 9)]

    def test_block_larger_than_total(self):
        assert balanced_blocks(3, 10) == [(0, 2)]

    def test_zero_total(self):
        assert balanced_blocks(0, 4) == []

    def test_block_validated(self):
        with pytest.raises(ValueError):
            balanced_blocks(10, 0)


class TestPlaneGeometry:
    def test_max_plane_rows_small_first_dim(self):
        # Widest plane is bounded by n1 when n1 is the short axis.
        assert max_plane_rows((3, 10, 10)) == 4

    def test_max_plane_rows_large_first_dim(self):
        # ...and by n2 + n3 when it is the long one.
        assert max_plane_rows((50, 2, 3)) == 6

    def test_active_workers_clamped_to_widest_plane(self):
        assert active_workers((3, 10, 10), 64) == 4
        assert active_workers((3, 10, 10), 2) == 2

    def test_active_workers_at_least_one(self):
        assert active_workers((0, 0, 0), 8) == 1

    def test_active_workers_validates(self):
        with pytest.raises(ValueError):
            active_workers((3, 3, 3), 0)


class TestRowSlabs:
    def test_never_emits_empty_slabs(self):
        # parts > rows: split_range would pad with empty chunks; row_slabs
        # must instead shrink the worker count so every slab has work.
        slabs = row_slabs(2, 8)
        assert slabs == [(0, 0), (1, 1), (2, 2)]
        assert all(lo <= hi for lo, hi in slabs)

    def test_covers_all_rows_contiguously(self):
        slabs = row_slabs(10, 3)
        rows = [i for lo, hi in slabs for i in range(lo, hi + 1)]
        assert rows == list(range(11))

    def test_zero_rows_single_slab(self):
        assert row_slabs(0, 4) == [(0, 0)]

    def test_validates(self):
        with pytest.raises(ValueError):
            row_slabs(5, 0)
        with pytest.raises(ValueError):
            row_slabs(-1, 2)


class TestPlaneBands:
    def test_counts_match_balanced_blocks(self):
        for dmax, depth in [(0, 1), (10, 4), (17, 5), (30, 16)]:
            assert plane_bands(dmax, depth) == balanced_blocks(
                dmax + 1, depth
            )

    def test_bands_cover_every_plane_once(self):
        bands = plane_bands(23, 7)
        planes = [d for s, e in bands for d in range(s, e + 1)]
        assert planes == list(range(24))

    def test_zero_length_cube_is_one_band(self):
        # dmax = 0 (three empty sequences): a single one-plane band.
        assert plane_bands(0, 8) == [(0, 0)]

    def test_negative_dmax_rejected(self):
        with pytest.raises(ValueError):
            plane_bands(-1, 4)


class TestPlaneWindow:
    def test_window_formula(self):
        # W = 2T + 3: writing plane d destroys plane d - W; with a full
        # band of slack on top of the 3-plane read horizon, adjacent
        # workers stream a band apart without blocking.
        assert plane_window(1) == 5
        assert plane_window(8) == 19

    def test_validates(self):
        with pytest.raises(ValueError):
            plane_window(0)


class TestBandDepth:
    def test_floor_and_cap(self):
        assert band_depth(0, 4) == 4  # tiny cube: floor wins
        assert band_depth(10_000, 2) == 16  # huge cube: cap wins
        assert band_depth(10_000, 2, cap=32) == 32

    def test_two_bands_in_flight_per_worker(self):
        dmax, workers = 100, 4
        depth = band_depth(dmax, workers)
        assert depth == min(16, max(4, (dmax + 1) // (2 * workers)))

    def test_validates(self):
        with pytest.raises(ValueError):
            band_depth(10, 0)
        with pytest.raises(ValueError):
            band_depth(-1, 2)


class TestBlockPredecessors:
    def test_corner_blocks(self):
        assert block_predecessors(0, 0, 3, 4) == []
        assert block_predecessors(0, 2, 3, 4) == [(0, 1)]
        assert block_predecessors(2, 0, 3, 4) == [(1, 0)]
        assert block_predecessors(1, 1, 3, 4) == [(1, 0), (0, 1)]

    def test_out_of_grid_rejected(self):
        for w, b in [(-1, 0), (3, 0), (0, -1), (0, 4)]:
            with pytest.raises(ValueError):
                block_predecessors(w, b, 3, 4)

    def test_complete_vs_brute_force_cell_dependencies(self):
        """Every cross-block DP dependency must be covered by the
        transitive closure of the declared predecessor edges — i.e. a
        scheduler honouring ``block_predecessors`` can never read a cell
        before the block owning it has run."""
        n1, n2, n3 = 5, 4, 3
        workers, depth = 3, 2
        slabs = row_slabs(n1, workers)
        bands = plane_bands(n1 + n2 + n3, depth)

        def owner(i, j, k):
            w = next(x for x, (lo, hi) in enumerate(slabs) if lo <= i <= hi)
            d = i + j + k
            b = next(x for x, (s, e) in enumerate(bands) if s <= d <= e)
            return (w, b)

        # Transitive closure of the declared grid edges.
        reach = {}
        for w in range(len(slabs)):
            for b in range(len(bands)):
                closed = set()
                frontier = [(w, b)]
                while frontier:
                    node = frontier.pop()
                    for dep in block_predecessors(
                        *node, len(slabs), len(bands)
                    ):
                        if dep not in closed:
                            closed.add(dep)
                            frontier.append(dep)
                reach[(w, b)] = closed

        moves = [
            (1, 1, 1), (1, 1, 0), (1, 0, 1), (0, 1, 1),
            (1, 0, 0), (0, 1, 0), (0, 0, 1),
        ]
        for i in range(n1 + 1):
            for j in range(n2 + 1):
                for k in range(n3 + 1):
                    blk = owner(i, j, k)
                    for di, dj, dk in moves:
                        pi, pj, pk = i - di, j - dj, k - dk
                        if pi < 0 or pj < 0 or pk < 0:
                            continue
                        dep = owner(pi, pj, pk)
                        if dep != blk:
                            assert dep in reach[blk], (
                                f"cell ({i},{j},{k}) in block {blk} reads "
                                f"({pi},{pj},{pk}) in uncovered block {dep}"
                            )

    def test_dependencies_point_strictly_backwards(self):
        # The grid is a DAG ordered by (w + b): every predecessor sits
        # strictly earlier, so the sweep order 'band-major within slab'
        # can never deadlock.
        for w in range(4):
            for b in range(5):
                for pw, pb in block_predecessors(w, b, 4, 5):
                    assert pw + pb < w + b
