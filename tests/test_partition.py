"""Unit tests for repro.parallel.partition."""

import pytest

from repro.parallel.partition import balanced_blocks, split_cyclic, split_range


class TestSplitRange:
    def test_even_split(self):
        assert split_range(0, 9, 2) == [(0, 4), (5, 9)]

    def test_uneven_split_differs_by_one(self):
        chunks = split_range(0, 10, 4)
        sizes = [hi - lo + 1 for lo, hi in chunks]
        assert sum(sizes) == 11
        assert max(sizes) - min(sizes) <= 1

    def test_covers_range_contiguously(self):
        chunks = split_range(3, 17, 5)
        cells = [x for lo, hi in chunks for x in range(lo, hi + 1)]
        assert cells == list(range(3, 18))

    def test_more_parts_than_items(self):
        chunks = split_range(0, 1, 4)
        nonempty = [(lo, hi) for lo, hi in chunks if lo <= hi]
        assert len(chunks) == 4
        assert sum(hi - lo + 1 for lo, hi in nonempty) == 2

    def test_empty_range(self):
        chunks = split_range(5, 4, 3)
        assert all(lo > hi for lo, hi in chunks)
        assert len(chunks) == 3

    def test_single_part(self):
        assert split_range(2, 8, 1) == [(2, 8)]

    def test_parts_validated(self):
        with pytest.raises(ValueError):
            split_range(0, 5, 0)


class TestSplitCyclic:
    def test_round_robin(self):
        assert split_cyclic(5, 2) == [[0, 2, 4], [1, 3]]

    def test_all_indices_assigned_once(self):
        owners = split_cyclic(17, 5)
        flat = sorted(x for lst in owners for x in lst)
        assert flat == list(range(17))

    def test_zero_count(self):
        assert split_cyclic(0, 3) == [[], [], []]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            split_cyclic(-1, 2)


class TestBalancedBlocks:
    def test_exact_division(self):
        assert balanced_blocks(8, 4) == [(0, 3), (4, 7)]

    def test_remainder_block(self):
        assert balanced_blocks(10, 4) == [(0, 3), (4, 7), (8, 9)]

    def test_block_larger_than_total(self):
        assert balanced_blocks(3, 10) == [(0, 2)]

    def test_zero_total(self):
        assert balanced_blocks(0, 4) == []

    def test_block_validated(self):
        with pytest.raises(ValueError):
            balanced_blocks(10, 0)
