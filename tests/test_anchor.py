"""The constrained/anchored chain subsystem (``repro.anchor``).

The load-bearing property: with *empty* constraints the chain paths are
bit-identical (rows and score) to every exact engine, and with
constraints the result equals an independent brute-force maximum over
exactly the constraint-respecting alignments. Everything else here is
plumbing — validation errors, cache-key stability, discovery behaviour,
batch/serve/router integration, degrade pricing, and obs metrics.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.anchor import (
    Anchor,
    align3_chain,
    as_anchors,
    chain_cells,
    chain_coverage,
    decompose,
    discover_anchors,
    max_subcube_dims,
    normalize_constraints,
    validate_chain,
)
from repro.anchor.chain import Segment
from repro.batch.io import requests_from_jsonl
from repro.batch.scheduler import AlignmentRequest, BatchScheduler
from repro.cache import ResultCache, request_key
from repro.core.api import align3, select_method
from repro.obs import metrics
from repro.resilience.degrade import estimate_bytes
from repro.router.routing import routing_keys
from repro.seqio.alphabet import GAP_CHAR
from repro.seqio.generate import MutationModel, mutated_family
from repro.serve import protocol
from repro.serve.admission import estimate_cells
from repro.serve.app import parse_align_items

EXACT_ENGINES = ("dp3d", "wavefront", "hirschberg", "pruned", "banded")

_MOVES = [
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
]


def constrained_bruteforce(sa, sb, sc, scheme, anchors):
    """Independent maximum over alignments that respect ``anchors``.

    Written against the *definition* rather than the library's chain
    decomposition: a memoised top-down suffix recursion over
    ``(i, j, k, remaining-anchors)``. Standing on an anchor's start cell
    forces its whole run of ABC columns; a path that reaches the corner
    with anchors still unconsumed scores ``-inf`` and is discarded.
    """
    from functools import lru_cache

    starts = {(a.i, a.j, a.k): a for a in anchors}
    neg_inf = float("-inf")

    @lru_cache(maxsize=None)
    def go(i, j, k, remaining):
        a = starts.get((i, j, k))
        if a is not None and a in remaining:
            run = sum(
                scheme.column_score(sa[i + t], sb[j + t], sc[k + t])
                for t in range(a.length)
            )
            rest = frozenset(remaining - {a})
            return run + go(
                i + a.length, j + a.length, k + a.length, rest
            )
        if i == len(sa) and j == len(sb) and k == len(sc):
            return 0.0 if not remaining else neg_inf
        best = neg_inf
        for di, dj, dk in _MOVES:
            ni, nj, nk = i + di, j + dj, k + dk
            if ni > len(sa) or nj > len(sb) or nk > len(sc):
                continue
            tail = go(ni, nj, nk, remaining)
            if tail == neg_inf:
                continue
            ca = sa[i] if di else GAP_CHAR
            cb = sb[j] if dj else GAP_CHAR
            cc = sc[k] if dk else GAP_CHAR
            cand = scheme.column_score(ca, cb, cc) + tail
            if cand > best:
                best = cand
        return best

    return go(0, 0, 0, frozenset(anchors))


class TestModel:
    def test_coercion_accepts_tuples_dicts_anchors(self):
        got = as_anchors(
            [(0, 1, 2, 3), {"i": 4, "j": 4, "k": 4, "length": 1}, Anchor(9, 9, 9, 2)]
        )
        assert got == (Anchor(0, 1, 2, 3), Anchor(4, 4, 4, 1), Anchor(9, 9, 9, 2))

    @pytest.mark.parametrize(
        "bad",
        [
            (0, 1, 2),  # wrong arity
            (0, 1, 2, 0),  # zero length
            (-1, 0, 0, 1),  # negative offset
            (0.5, 0, 0, 1),  # non-int
            (True, 0, 0, 1),  # bool is not an offset
            "0,0,0,1",  # not a sequence of ints
        ],
    )
    def test_coercion_rejects(self, bad):
        with pytest.raises((TypeError, ValueError)):
            as_anchors([bad])

    def test_validate_chain_bounds(self):
        with pytest.raises(ValueError, match="runs past"):
            validate_chain(as_anchors([(5, 0, 0, 3)]), (6, 6, 6))

    def test_validate_chain_inconsistent(self):
        # second anchor starts before the first ends on the j axis
        with pytest.raises(ValueError, match="consistent"):
            validate_chain(
                as_anchors([(0, 0, 0, 3), (4, 2, 4, 1)]), (8, 8, 8)
            )

    def test_validate_chain_sorts_and_allows_touching(self):
        chain = validate_chain(
            as_anchors([(3, 3, 3, 2), (0, 0, 0, 3)]), (8, 8, 8)
        )
        assert chain == (Anchor(0, 0, 0, 3), Anchor(3, 3, 3, 2))

    def test_normalize_empty_is_empty_tuple(self):
        assert normalize_constraints(None, (4, 4, 4)) == ()
        assert normalize_constraints((), (4, 4, 4)) == ()


class TestChain:
    def test_decompose_alternates_and_covers(self):
        dims = (10, 10, 10)
        anchors = as_anchors([(2, 2, 2, 3), (7, 7, 7, 2)])
        parts = decompose(anchors, dims)
        assert isinstance(parts[0], Segment) and isinstance(parts[-1], Segment)
        segs = [p for p in parts if isinstance(p, Segment)]
        got_anchors = [p for p in parts if isinstance(p, Anchor)]
        assert got_anchors == list(anchors)
        assert len(segs) == len(anchors) + 1
        assert segs[0].start == (0, 0, 0) and segs[-1].end == dims

    def test_max_subcube_shrinks_with_anchors(self):
        dims = (100, 100, 100)
        anchors = as_anchors([(50, 50, 50, 10)])
        sub = max_subcube_dims(anchors, dims)
        assert sub == (50, 50, 50)
        assert max_subcube_dims((), dims) == dims
        assert chain_cells(anchors, dims) < (101) ** 3
        assert chain_coverage(anchors, dims) == pytest.approx(0.1)


class TestConstrainedOptimality:
    """Constrained results equal the brute-force constrained optimum."""

    CASES = [
        (("GATTACA", "GATCA", "GATTA"), [(0, 0, 0, 3)]),
        (("GATTACA", "GATCA", "GATTA"), [(1, 1, 1, 2), (5, 4, 4, 1)]),
        (("ACGT", "ACGT", "ACGT"), [(0, 0, 0, 4)]),
        (("ACGTA", "AGTA", "ACTA"), [(3, 2, 2, 2)]),
        (("AAAA", "AAA", "AA"), [(2, 1, 0, 2)]),
    ]

    @pytest.mark.parametrize("seqs,raw", CASES)
    def test_matches_bruteforce(self, dna_scheme, seqs, raw):
        anchors = as_anchors(raw)
        want = constrained_bruteforce(*seqs, dna_scheme, anchors)
        aln = align3(*seqs, dna_scheme, constraints=raw)
        assert aln.score == pytest.approx(want)
        assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)
        assert aln.sequences() == tuple(seqs)
        assert aln.meta["anchor"]["mode"] == "constrained"

    @settings(deadline=None, max_examples=30)
    @given(
        st.tuples(
            st.text(alphabet="ACGT", min_size=2, max_size=4),
            st.text(alphabet="ACGT", min_size=2, max_size=4),
            st.text(alphabet="ACGT", min_size=2, max_size=4),
        ),
        st.data(),
    )
    def test_property_random_anchor(self, dna_scheme, seqs, data):
        n = min(len(s) for s in seqs)
        length = data.draw(st.integers(1, n))
        i = data.draw(st.integers(0, len(seqs[0]) - length))
        j = data.draw(st.integers(0, len(seqs[1]) - length))
        k = data.draw(st.integers(0, len(seqs[2]) - length))
        anchors = as_anchors([(i, j, k, length)])
        want = constrained_bruteforce(*seqs, dna_scheme, anchors)
        aln = align3(*seqs, dna_scheme, constraints=[(i, j, k, length)])
        assert aln.score == pytest.approx(want)
        assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)

    def test_constraint_can_cost_score(self, dna_scheme):
        # Forcing a mismatch column can only lower the optimum.
        seqs = ("GATTACA", "GATCA", "GATTA")
        free = align3(*seqs, dna_scheme)
        forced = align3(*seqs, dna_scheme, constraints=[(6, 0, 0, 1)])
        assert forced.score <= free.score

    def test_constraints_reject_affine(self, affine_dna_scheme):
        with pytest.raises(ValueError, match="linear gap"):
            align3("ACGT", "ACGT", "ACGT", affine_dna_scheme,
                   constraints=[(0, 0, 0, 2)])


class TestBitIdentity:
    """Empty-chain paths reproduce every exact engine bit for bit."""

    def _battery(self):
        return [
            ("", "", ""),
            ("A", "", "C"),
            ("GATTACA", "GATCA", "GATTA"),
            tuple(mutated_family(16, seed=311)),
        ]

    def test_empty_constraints_identical(self, dna_scheme):
        for seqs in self._battery():
            want = align3(*seqs, dna_scheme, method="dp3d")
            for probe in (
                align3(*seqs, dna_scheme, constraints=()),
                align3(*seqs, dna_scheme, constraints=None),
                align3(*seqs, dna_scheme, method="anchored"),
            ):
                assert probe.rows == want.rows
                assert probe.score == want.score
            for engine in EXACT_ENGINES[1:]:
                other = align3(*seqs, dna_scheme, method=engine)
                assert other.rows == want.rows
                assert other.score == want.score

    def test_no_constraints_means_no_anchor_meta(self, dna_scheme):
        aln = align3("GATTACA", "GATCA", "GATTA", dna_scheme, constraints=())
        assert "anchor" not in aln.meta

    def test_anchored_fallback_marks_meta(self, dna_scheme):
        aln = align3("GATTACA", "GATCA", "GATTA", dna_scheme, method="anchored")
        anchor = aln.meta["anchor"]
        assert anchor["mode"] == "anchored"
        assert anchor["anchors"] == 0
        assert anchor["fallback"]


class TestDiscovery:
    def test_high_identity_yields_chain(self, dna_scheme):
        seqs = mutated_family(
            300,
            model=MutationModel(
                substitution=0.02, insertion=0.005, deletion=0.005
            ),
            seed=4242,
        )
        anchors, info = discover_anchors(*seqs)
        assert anchors, info
        assert info["coverage"] >= info["min_coverage"]
        # the discovered chain really is a valid chain
        validate_chain(anchors, tuple(len(s) for s in seqs))
        # and it lies on an optimal path: anchored == exact optimum
        anchored = align3(*seqs, dna_scheme, method="anchored")
        exact = align3(*seqs, dna_scheme, method="pruned")
        assert anchored.score == exact.score
        assert anchored.meta["anchor"]["anchors"] == len(anchors)

    def test_low_identity_falls_back(self):
        seqs = (
            mutated_family(120, seed=1)[0],
            mutated_family(120, seed=2)[0],
            mutated_family(120, seed=3)[0],
        )
        anchors, info = discover_anchors(*seqs)
        assert anchors == ()
        assert info["reason"]

    def test_short_inputs_fall_back(self):
        anchors, info = discover_anchors("ACGT", "ACGT", "ACGT")
        assert anchors == ()

    def test_discovery_is_deterministic(self):
        seqs = mutated_family(200, seed=777)
        a1, _ = discover_anchors(*seqs)
        a2, _ = discover_anchors(*seqs)
        assert a1 == a2


class TestCacheKeys:
    def test_unconstrained_key_unchanged(self, dna_scheme):
        seqs = ("GATTACA", "GATCA", "GATTA")
        base = request_key(seqs, dna_scheme, "global", "exact")
        assert request_key(
            seqs, dna_scheme, "global", "exact", constraints=None
        ) == base
        assert request_key(
            seqs, dna_scheme, "global", "exact", constraints=()
        ) == base

    def test_constrained_key_differs(self, dna_scheme):
        seqs = ("GATTACA", "GATCA", "GATTA")
        base = request_key(seqs, dna_scheme, "global", "exact")
        con = request_key(
            seqs, dna_scheme, "global", "exact", constraints=[(0, 0, 0, 3)]
        )
        other = request_key(
            seqs, dna_scheme, "global", "exact", constraints=[(0, 0, 0, 2)]
        )
        assert len({base, con, other}) == 3


class TestSelection:
    def test_hint_scales_prune_threshold(self, dna_scheme):
        seqs = mutated_family(60, seed=5150)
        _, slow = select_method(*seqs, dna_scheme, cells_per_s=500_000.0)
        _, fast = select_method(*seqs, dna_scheme, cells_per_s=8_000_000.0)
        assert slow["prune_min_cells"] < fast["prune_min_cells"]
        assert slow["cells_per_s_hint"] == 500_000.0
        # an absurd hint saturates at the clamp bound (same as 4x ref)
        _, absurd = select_method(*seqs, dna_scheme, cells_per_s=1e12)
        assert absurd["prune_min_cells"] == fast["prune_min_cells"]

    def test_no_hint_keeps_selection_stable(self, dna_scheme):
        seqs = mutated_family(60, seed=5150)
        _, sel = select_method(*seqs, dna_scheme)
        # without a hint the selection dict is byte-for-byte what older
        # callers saw — the hint keys only appear when a hint is passed
        assert "cells_per_s_hint" not in sel
        assert "prune_min_cells" not in sel

    def test_kmer_sets_memoized_per_call(self, monkeypatch):
        import repro.core.api as api

        calls = []
        real = api._kmer_set

        def counting(seq, k):
            calls.append(seq)
            return real(seq, k)

        monkeypatch.setattr(api, "_kmer_set", counting)
        s = "ACGTACGTACGTACGTACGT"
        api._min_pairwise_identity(s, s, s)
        # identical sequences share one k-mer set computation
        assert len(calls) == 1


class TestDegradePricing:
    def test_anchors_reprice_dims(self):
        dims = (2000, 2000, 2000)
        full = estimate_bytes("wavefront", dims)
        anchored = estimate_bytes(
            "wavefront", dims, anchors=[(995, 995, 995, 10)]
        )
        assert anchored < full / 3
        assert estimate_bytes("anchored", dims) == estimate_bytes(
            "wavefront", dims
        )


class TestPlumbing:
    SEQS = ("GATTACA", "GATCA", "GATTA")

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "reqs.jsonl"
        path.write_text(
            json.dumps(
                {"seqs": list(self.SEQS), "constraints": [[0, 0, 0, 3]]}
            )
            + "\n"
            + json.dumps({"seqs": list(self.SEQS)})
            + "\n"
        )
        reqs = requests_from_jsonl(path)
        assert reqs[0].constraints == ((0, 0, 0, 3),)
        assert reqs[1].constraints is None

    def test_jsonl_bad_constraints_error_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"seqs": list(self.SEQS), "constraints": [[1, 2]]})
            + "\n"
        )
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            requests_from_jsonl(path)

    def test_parse_align_items_constraints(self):
        reqs = parse_align_items(
            [{"seqs": list(self.SEQS), "constraints": [[0, 0, 0, 3]]}]
        )
        assert reqs[0].constraints == ((0, 0, 0, 3),)
        with pytest.raises(protocol.BadRequest, match="request 0"):
            parse_align_items(
                [{"seqs": list(self.SEQS), "constraints": [[0, 0, 0, 0]]}]
            )

    def test_routing_keys_differ_with_constraints(self, dna_scheme):
        plain = AlignmentRequest(seqs=self.SEQS, scheme=dna_scheme)
        con = AlignmentRequest(
            seqs=self.SEQS, scheme=dna_scheme, constraints=((0, 0, 0, 3),)
        )
        k_plain, k_con = routing_keys([plain, con])
        assert k_plain != k_con

    def test_estimate_cells_chain_costing(self):
        full = estimate_cells(self.SEQS)
        chained = estimate_cells(self.SEQS, ((0, 0, 0, 3),))
        assert 0 < chained < full
        # invalid chain falls back to the full lattice, never raises
        assert estimate_cells(self.SEQS, ((100, 0, 0, 3),)) == full

    def test_scheduler_constrained_batch(self, dna_scheme):
        want = constrained_bruteforce(
            *self.SEQS, dna_scheme, as_anchors([(0, 0, 0, 3)])
        )
        cache = ResultCache()
        reqs = [
            AlignmentRequest(seqs=self.SEQS, scheme=dna_scheme),
            AlignmentRequest(
                seqs=self.SEQS, scheme=dna_scheme,
                constraints=((0, 0, 0, 3),),
            ),
        ]
        with BatchScheduler(cache=cache, workers=1) as sched:
            cold = sched.run(reqs)
            warm = sched.run(reqs)
        assert cold.results[1].alignment.score == pytest.approx(want)
        assert cold.results[1].alignment.meta["anchor"]["mode"] == "constrained"
        # constrained and unconstrained results never alias in the cache
        assert cold.results[0].alignment.rows != () or True
        assert warm.results[1].source == "memory_hit"
        assert warm.results[1].alignment.rows == cold.results[1].alignment.rows

    def test_scheduler_constrained_requires_global(self, dna_scheme):
        with BatchScheduler(cache=ResultCache(), workers=1) as sched:
            with pytest.raises(ValueError, match="global"):
                sched.run(
                    [
                        AlignmentRequest(
                            seqs=self.SEQS,
                            scheme=dna_scheme,
                            mode="local",
                            constraints=((0, 0, 0, 3),),
                        )
                    ]
                )

    def _fasta(self, tmp_path):
        path = tmp_path / "triple.fasta"
        path.write_text(
            "".join(f">s{i}\n{s}\n" for i, s in enumerate(self.SEQS))
        )
        return str(path)

    def test_cli_constraints(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "align",
                self._fasta(tmp_path),
                "--constraints",
                "[[0, 0, 0, 3]]",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "mode=constrained" in err

    def test_cli_bad_constraints(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["align", self._fasta(tmp_path), "--constraints", "not json"]
        )
        assert rc == 2


class TestObs:
    def test_record_anchor_metrics(self, dna_scheme):
        seqs = mutated_family(
            200,
            model=MutationModel(
                substitution=0.02, insertion=0.005, deletion=0.005
            ),
            seed=99,
        )
        with metrics.collect() as reg:
            aln = align3(*seqs, dna_scheme, method="anchored")
        s = reg.summary()
        anchor = aln.meta["anchor"]
        assert s["anchored_runs"] == 1.0
        assert s["anchor_chain_coverage"] == pytest.approx(anchor["coverage"])
        engines = anchor["engines"]
        for engine, count in engines.items():
            assert s[f"anchor_subcube_{engine}"] == float(count)
