"""Smoke tests: every shipped example must run cleanly end-to-end.

Run as subprocesses so import side effects and __main__ blocks are
exercised exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_checks_passed():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert "All checks passed." in result.stdout


def test_motif_search_recovers_motif():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "motif_search.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert "Motif recovered." in result.stdout
