"""Unit tests for the align3 front door (repro.core.api)."""

import pytest

import repro
from repro.core.api import AVAILABLE_METHODS, align3, align3_score
from repro.core.dp3d import score3_dp3d


class TestDispatch:
    @pytest.mark.parametrize(
        "method",
        ["dp3d", "wavefront", "hirschberg", "pruned", "banded", "shared",
         "threads"],
    )
    def test_all_linear_methods_agree(self, method, dna_scheme, family_small):
        expected = score3_dp3d(*family_small, dna_scheme)
        aln = align3(*family_small, dna_scheme, method=method)
        assert aln.score == pytest.approx(expected), method
        assert dna_scheme.sp_score(aln.rows) == pytest.approx(expected)
        assert aln.meta["method"] == method
        assert "wall_time_s" in aln.meta

    def test_auto_small_is_wavefront(self, dna_scheme):
        aln = align3("GATTACA", "GATCA", "GTT", dna_scheme)
        assert aln.meta["engine"] == "wavefront"

    def test_auto_affine_scheme_routes_to_affine(self, affine_dna_scheme):
        aln = align3("GAT", "GT", "GAT", affine_dna_scheme)
        assert aln.meta["engine"] == "affine"

    def test_affine_scheme_with_linear_method_rejected(self, affine_dna_scheme):
        with pytest.raises(ValueError, match="gap_open"):
            align3("A", "A", "A", affine_dna_scheme, method="wavefront")

    def test_unknown_method_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="unknown method"):
            align3("A", "A", "A", dna_scheme, method="magic")

    def test_pruned_records_stats(self, dna_scheme, family_small):
        aln = align3(*family_small, dna_scheme, method="pruned")
        assert 0 < aln.meta["pruning"]["kept_fraction"] <= 1

    def test_methods_listed(self):
        assert "wavefront" in AVAILABLE_METHODS
        assert "auto" in AVAILABLE_METHODS


class TestSchemeGuessing:
    def test_dna_guessed(self):
        aln = align3("GATTACA", "GATCA", "GTTACA")
        assert aln.meta["scheme"] == "dna5-4"

    def test_protein_guessed(self):
        aln = align3("MVLSPAD", "MVHLTPE", "MGLSDGE")
        assert aln.meta["scheme"] == "blosum62"

    def test_explicit_scheme_wins(self, protein_scheme):
        # ACGT is valid protein too; forcing the protein scheme must work.
        aln = align3("ACGT", "ACG", "AGT", scheme=protein_scheme)
        assert aln.meta["scheme"] == "blosum62"


class TestScoreOnly:
    def test_matches_alignment_score(self, dna_scheme, family_small):
        aln = align3(*family_small, dna_scheme)
        assert align3_score(*family_small, dna_scheme) == pytest.approx(aln.score)

    def test_affine_score(self, affine_dna_scheme, family_small):
        from repro.core.affine import score3_affine

        got = align3_score(*family_small, affine_dna_scheme)
        assert got == pytest.approx(score3_affine(*family_small, affine_dna_scheme))


class TestTopLevelExports:
    def test_align3_reexported(self):
        assert repro.align3 is align3

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_example(self):
        aln = repro.align3("GATTACA", "GATCA", "GATTA")
        assert aln.sequences() == ("GATTACA", "GATCA", "GATTA")
