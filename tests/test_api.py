"""Unit tests for the align3 front door (repro.core.api)."""

import pytest

import repro
from repro.core.api import AVAILABLE_METHODS, align3, align3_score
from repro.core.dp3d import score3_dp3d


class TestDispatch:
    @pytest.mark.parametrize(
        "method",
        ["dp3d", "wavefront", "hirschberg", "pruned", "banded", "shared",
         "threads"],
    )
    def test_all_linear_methods_agree(self, method, dna_scheme, family_small):
        expected = score3_dp3d(*family_small, dna_scheme)
        aln = align3(*family_small, dna_scheme, method=method)
        assert aln.score == pytest.approx(expected), method
        assert dna_scheme.sp_score(aln.rows) == pytest.approx(expected)
        assert aln.meta["method"] == method
        assert "wall_time_s" in aln.meta

    def test_auto_small_is_wavefront(self, dna_scheme):
        aln = align3("GATTACA", "GATCA", "GTT", dna_scheme)
        assert aln.meta["engine"] == "wavefront"

    def test_auto_affine_scheme_routes_to_affine(self, affine_dna_scheme):
        aln = align3("GAT", "GT", "GAT", affine_dna_scheme)
        assert aln.meta["engine"] == "affine"

    def test_affine_scheme_with_linear_method_rejected(self, affine_dna_scheme):
        with pytest.raises(ValueError, match="gap_open"):
            align3("A", "A", "A", affine_dna_scheme, method="wavefront")

    def test_unknown_method_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="unknown method"):
            align3("A", "A", "A", dna_scheme, method="magic")

    def test_pruned_records_stats(self, dna_scheme, family_small):
        aln = align3(*family_small, dna_scheme, method="pruned")
        assert 0 < aln.meta["pruning"]["kept_fraction"] <= 1

    def test_methods_listed(self):
        assert "wavefront" in AVAILABLE_METHODS
        assert "auto" in AVAILABLE_METHODS


class TestSchemeGuessing:
    def test_dna_guessed(self):
        aln = align3("GATTACA", "GATCA", "GTTACA")
        assert aln.meta["scheme"] == "dna5-4"

    def test_protein_guessed(self):
        aln = align3("MVLSPAD", "MVHLTPE", "MGLSDGE")
        assert aln.meta["scheme"] == "blosum62"

    def test_explicit_scheme_wins(self, protein_scheme):
        # ACGT is valid protein too; forcing the protein scheme must work.
        aln = align3("ACGT", "ACG", "AGT", scheme=protein_scheme)
        assert aln.meta["scheme"] == "blosum62"


class TestDocstringDrift:
    def test_every_method_documented(self):
        # The dispatch table in the module docstring once omitted
        # ``banded``; keep it in lockstep with the dispatcher.
        import repro.core.api as api

        for method in AVAILABLE_METHODS:
            assert f"``{method}``" in api.__doc__, (
                f"method {method!r} missing from the repro.core.api "
                "docstring dispatch table"
            )


class TestPerSequenceAlphabetGuessing:
    def test_mixed_alphabets_rejected(self):
        # "GATTACA" guesses DNA, "MVLSPAD" guesses protein. The old
        # concatenation-based guess scored both under BLOSUM62 silently.
        with pytest.raises(ValueError, match="mixed alphabets"):
            align3("GATTACA", "MVLSPAD", "GATCA")

    def test_resolve_scheme_mixed_rejected(self):
        from repro.core.api import resolve_scheme

        with pytest.raises(ValueError, match="mixed alphabets"):
            resolve_scheme(("ACGT", "ACGU", "MVLSPAD"))

    def test_explicit_scheme_bypasses_guess(self, protein_scheme):
        # An explicit scheme must silence the mixed-alphabet check ...
        aln = align3("ACGT", "MVLSPAD", "ACG", scheme=protein_scheme)
        assert aln.meta["scheme"] == "blosum62"

    def test_empty_sequences_skipped(self):
        aln = align3("", "GATCA", "GATTA")
        assert aln.meta["scheme"] == "dna5-4"

    def test_all_empty_defaults_to_dna(self):
        from repro.core.api import resolve_scheme

        assert resolve_scheme(("", "", "")).name == "dna5-4"

    def test_private_alias_still_resolves(self):
        # pre-1.1 internal name, kept as an alias for API drift safety
        from repro.core.api import _resolve_scheme, resolve_scheme

        assert _resolve_scheme is resolve_scheme


def _scheme_for(method, dna_scheme, affine_dna_scheme):
    return affine_dna_scheme if method == "affine" else dna_scheme


class TestDegenerateInputs:
    """Empty and single-character sequences through every engine."""

    CASES = [
        ("", "AC", "GT"),
        ("A", "", ""),
        ("", "", ""),
        ("A", "C", "G"),
    ]

    @pytest.mark.parametrize("method", AVAILABLE_METHODS)
    @pytest.mark.parametrize("seqs", CASES, ids=lambda s: "/".join(s) or "empty")
    def test_engines_agree_with_reference(
        self, method, seqs, dna_scheme, affine_dna_scheme
    ):
        scheme = _scheme_for(method, dna_scheme, affine_dna_scheme)
        if method == "affine":
            from repro.core.affine import score3_affine

            expected = score3_affine(*seqs, scheme)
        else:
            expected = score3_dp3d(*seqs, scheme)
        aln = align3(*seqs, scheme, method=method)
        assert aln.score == pytest.approx(expected), (method, seqs)
        if method != "affine":  # sp_score implements the linear gap model
            assert scheme.sp_score(aln.rows) == pytest.approx(expected)
        assert aln.sequences() == seqs

    def test_documented_empty_first_score(self, dna_scheme):
        # ("", "AC", "GT"): two columns, each a gap against a mismatched
        # pair: 2 * (gap + gap + mismatch) = 2 * (-6 - 6 - 4).
        assert align3("", "AC", "GT", dna_scheme).score == -32.0

    @pytest.mark.parametrize("seqs", CASES, ids=lambda s: "/".join(s) or "empty")
    def test_cache_round_trip(self, seqs, dna_scheme, tmp_path):
        from repro.cache import ResultCache, comparable_meta

        cache = ResultCache(cache_dir=tmp_path)
        cold = align3(*seqs, dna_scheme, cache=cache)
        assert cold.meta["cache"]["hit"] is False
        hit = align3(*seqs, dna_scheme, cache=cache)
        assert hit.meta["cache"]["hit"] is True
        assert hit.rows == cold.rows
        assert hit.score == cold.score
        assert comparable_meta(hit.meta) == comparable_meta(cold.meta)


class TestScoreOnly:
    def test_matches_alignment_score(self, dna_scheme, family_small):
        aln = align3(*family_small, dna_scheme)
        assert align3_score(*family_small, dna_scheme) == pytest.approx(aln.score)

    def test_affine_score(self, affine_dna_scheme, family_small):
        from repro.core.affine import score3_affine

        got = align3_score(*family_small, affine_dna_scheme)
        assert got == pytest.approx(score3_affine(*family_small, affine_dna_scheme))


class TestTopLevelExports:
    def test_align3_reexported(self):
        assert repro.align3 is align3

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_example(self):
        aln = repro.align3("GATTACA", "GATCA", "GATTA")
        assert aln.sequences() == ("GATTACA", "GATCA", "GATTA")
