"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.seqio.fasta import parse_fasta, write_fasta
from repro.seqio.generate import mutated_family


@pytest.fixture
def fasta3(tmp_path):
    fam = mutated_family(25, seed=2)
    path = tmp_path / "three.fasta"
    write_fasta(path, [(f"s{i}", s) for i, s in enumerate(fam)])
    return str(path), fam


@pytest.fixture
def fasta5(tmp_path):
    fam = mutated_family(20, count=5, seed=3)
    path = tmp_path / "five.fasta"
    write_fasta(path, [(f"s{i}", s) for i, s in enumerate(fam)])
    return str(path), fam


class TestAlign:
    def test_pretty_output(self, fasta3, capsys):
        path, fam = fasta3
        assert main(["align", path]) == 0
        captured = capsys.readouterr()
        assert "s0" in captured.out
        assert "score=" in captured.err

    def test_fasta_output_roundtrip(self, fasta3, capsys):
        path, fam = fasta3
        assert main(["align", path, "--format", "fasta"]) == 0
        out = capsys.readouterr().out
        records = parse_fasta(out)
        assert len(records) == 3
        assert [s.replace("-", "") for _h, s in records] == fam

    def test_method_selection(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(["align", path, "--method", "hirschberg"]) == 0
        assert "engine=hirschberg" in capsys.readouterr().err

    def test_affine_via_gap_open(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(
            ["align", path, "--gap", "-3", "--gap-open", "-9"]
        ) == 0
        assert "engine=affine" in capsys.readouterr().err

    def test_msa_for_five(self, fasta5, capsys):
        path, fam = fasta5
        assert main(["align", path, "--format", "fasta"]) == 0
        records = parse_fasta(capsys.readouterr().out)
        assert len(records) == 5
        assert [s.replace("-", "") for _h, s in records] == fam

    def test_single_record_errors(self, tmp_path, capsys):
        path = tmp_path / "one.fasta"
        write_fasta(path, [("only", "ACGT")])
        assert main(["align", str(path)]) == 2
        assert "at least two" in capsys.readouterr().err


class TestScore:
    def test_matches_api(self, fasta3, capsys, dna_scheme):
        from repro.core.api import align3_score

        path, fam = fasta3
        assert main(["score", path]) == 0
        printed = float(capsys.readouterr().out.strip())
        assert printed == pytest.approx(align3_score(*fam, dna_scheme))

    def test_explicit_matrix_and_gap(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(["score", path, "--matrix", "unit", "--gap", "-2"]) == 0
        float(capsys.readouterr().out.strip())  # parses as a number


class TestGenerate:
    def test_emits_fasta(self, capsys):
        assert main(["generate", "--length", "30", "--count", "4",
                     "--seed", "9"]) == 0
        records = parse_fasta(capsys.readouterr().out)
        assert len(records) == 4
        assert all(set(s) <= set("ACGT") for _h, s in records)

    def test_deterministic(self, capsys):
        main(["generate", "--seed", "11"])
        first = capsys.readouterr().out
        main(["generate", "--seed", "11"])
        assert capsys.readouterr().out == first

    def test_protein_alphabet(self, capsys):
        assert main(["generate", "--alphabet", "protein", "--length", "20"]) == 0
        _h, seq = parse_fasta(capsys.readouterr().out)[0]
        from repro.seqio.alphabet import PROTEIN

        assert PROTEIN.is_valid(seq)


class TestSimulate:
    def test_table_printed(self, capsys):
        assert main(["simulate", "--n", "60", "--procs", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "comm_MB" in out

    def test_network_choice(self, capsys):
        assert main(
            ["simulate", "--n", "60", "--procs", "2", "--network", "modern"]
        ) == 0
        assert "modern" in capsys.readouterr().out


class TestObservability:
    def test_align_trace_and_metrics(self, fasta3, tmp_path, capsys):
        from repro.obs.trace import read_trace

        path, _fam = fasta3
        out = tmp_path / "trace.jsonl"
        assert main(["align", path, "--trace", str(out), "--metrics"]) == 0
        err = capsys.readouterr().err
        assert "cells_computed" in err  # --metrics summary on stderr
        records = read_trace(out)
        types = {r["type"] for r in records}
        assert {"span", "sweep", "planes"} <= types

    def test_tracing_off_by_default(self, fasta3, capsys):
        from repro.obs import metrics, trace

        path, _fam = fasta3
        assert main(["align", path]) == 0
        capsys.readouterr()
        assert not trace.enabled and not metrics.enabled

    def test_report_renders_tables(self, fasta3, tmp_path, capsys):
        path, _fam = fasta3
        out = tmp_path / "trace.jsonl"
        main(["align", path, "--trace", str(out)])
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "phases" in text and "sweeps" in text and "planes" in text

    def test_unwritable_trace_path(self, fasta3, tmp_path, capsys):
        path, _fam = fasta3
        bad = tmp_path / "missing-dir" / "t.jsonl"
        with pytest.raises(SystemExit) as exc:
            main(["align", path, "--trace", str(bad)])
        assert exc.value.code == 2
        assert "cannot open --trace" in capsys.readouterr().err

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such" in capsys.readouterr().err.lower()

    def test_simulate_trace(self, tmp_path, capsys):
        from repro.obs.trace import read_trace

        out = tmp_path / "sim.jsonl"
        assert main(
            ["simulate", "--n", "60", "--procs", "2", "--trace", str(out)]
        ) == 0
        capsys.readouterr()
        sims = [r for r in read_trace(out) if r["type"] == "sim"]
        assert sims and sims[0]["procs"] == 2


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "wavefront" in out


class TestAlignModes:
    def test_local_mode(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(["align", path, "--mode", "local"]) == 0
        assert "engine=local" in capsys.readouterr().err

    def test_semiglobal_mode(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(["align", path, "--mode", "semiglobal"]) == 0
        captured = capsys.readouterr()
        assert "engine=semiglobal" in captured.err

    def test_semiglobal_rows_cover_inputs(self, fasta3, capsys):
        path, fam = fasta3
        assert main(["align", path, "--mode", "semiglobal",
                     "--format", "fasta"]) == 0
        records = parse_fasta(capsys.readouterr().out)
        assert [s.replace("-", "") for _h, s in records] == fam

    def test_mode_requires_three(self, fasta5, capsys):
        path, _fam = fasta5
        assert main(["align", path, "--mode", "local"]) == 2
        assert "exactly three" in capsys.readouterr().err

    def test_banded_method(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(["align", path, "--method", "banded"]) == 0
        assert "engine=banded" in capsys.readouterr().err


class TestBenchOut:
    def test_out_dir_written(self, tmp_path, capsys):
        from repro.bench.__main__ import main as bench_main

        out = tmp_path / "results"
        assert bench_main(["--exp", "f6", "--quick", "--out", str(out)]) == 0
        text = (out / "f6.txt").read_text()
        assert "comm_MB" in text


class TestCount:
    def test_count_printed(self, fasta3, capsys):
        path, fam = fasta3
        assert main(["count", path]) == 0
        n = int(capsys.readouterr().out.strip())
        from repro.core.countopt import count_optimal
        from repro.core.scoring import default_scheme_for
        from repro.seqio.alphabet import DNA

        assert n == count_optimal(*fam, default_scheme_for(DNA))

    def test_show_alignments(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(["count", path, "--show", "2"]) == 0
        out = capsys.readouterr().out
        # The count line plus at least one pretty-printed block.
        assert out.splitlines()[0].strip().isdigit()
        assert "\nA " in out

    def test_requires_three(self, fasta5, capsys):
        path, _fam = fasta5
        assert main(["count", path]) == 2
        assert "exactly three" in capsys.readouterr().err

    def test_affine_rejected(self, fasta3, capsys):
        path, _fam = fasta3
        assert main(["count", path, "--gap-open", "-5"]) == 2
        assert "linear" in capsys.readouterr().err


class TestSimulateExtras:
    def test_calibrate_flag(self, capsys):
        assert main(
            ["simulate", "--n", "60", "--procs", "1", "2", "--calibrate"]
        ) == 0
        assert "speedup" in capsys.readouterr().out

    def test_mapping_flag(self, capsys):
        assert main(
            ["simulate", "--n", "60", "--procs", "4", "--mapping", "slab"]
        ) == 0
        assert "slab" in capsys.readouterr().out

    def test_block_flag(self, capsys):
        assert main(
            ["simulate", "--n", "60", "--procs", "2", "--block", "8"]
        ) == 0
        assert "block=8" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture
    def reqs_jsonl(self, tmp_path):
        import json

        t1 = ["GATTACA", "GATCA", "GTTACA"]
        t2 = ["ACGTAC", "ACTAC", "AGTAC"]
        path = tmp_path / "reqs.jsonl"
        lines = [
            json.dumps({"seqs": t1, "id": "a"}),
            json.dumps({"seqs": t1, "id": "b"}),  # exact duplicate
            json.dumps({"seqs": t2, "id": "c"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_jsonl_batch(self, reqs_jsonl, capsys):
        assert main(["batch", reqs_jsonl, "--workers", "1"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3
        rid, score, source = lines[0].split("\t")
        assert rid == "a" and source == "computed"
        assert lines[1].split("\t")[2] == "dedup"
        assert lines[0].split("\t")[1] == lines[1].split("\t")[1]
        assert "dedup_ratio=0.33" in captured.err

    def test_fasta_batch(self, tmp_path, capsys):
        fam = mutated_family(15, seed=9)
        path = tmp_path / "six.fasta"
        write_fasta(
            path, [(f"s{i}", s) for i, s in enumerate(fam + fam)]
        )
        assert main(["batch", str(path), "--workers", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[1].split("\t")[2] == "dedup"

    def test_cache_dir_warm_restart(self, reqs_jsonl, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["batch", reqs_jsonl, "--workers", "1", "--cache-dir", cache_dir]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0  # fresh process state, same disk tier
        captured = capsys.readouterr()
        sources = [l.split("\t")[2] for l in captured.out.strip().splitlines()]
        assert sources == ["disk_hit", "dedup", "disk_hit"]
        assert "dedup_ratio=1.00" in captured.err

    def test_explicit_scheme_flags(self, reqs_jsonl, capsys):
        assert main(
            ["batch", reqs_jsonl, "--workers", "1", "--gap", "-2"]
        ) == 0
        assert capsys.readouterr().out.count("\t") == 6

    def test_metrics_summary(self, reqs_jsonl, capsys):
        assert main(
            ["batch", reqs_jsonl, "--workers", "1", "--metrics"]
        ) == 0
        err = capsys.readouterr().err
        assert "batch_requests" in err
        assert "request_latency_s" in err

    def test_missing_file(self, capsys):
        assert main(["batch", "/nonexistent/x.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_input(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("# nothing here\n")
        assert main(["batch", str(path)]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_bad_fasta_count(self, tmp_path, capsys):
        path = tmp_path / "four.fasta"
        write_fasta(path, [(f"s{i}", "ACGT") for i in range(4)])
        assert main(["batch", str(path)]) == 2
        assert "multiple of three" in capsys.readouterr().err


class TestBatchOutputFormats:
    @pytest.fixture
    def reqs_jsonl(self, tmp_path):
        import json

        t1 = ["GATTACA", "GATCA", "GTTACA"]
        path = tmp_path / "reqs.jsonl"
        path.write_text(
            json.dumps({"seqs": t1, "id": "a"})
            + "\n"
            + json.dumps({"seqs": t1, "id": "b"})
            + "\n"
        )
        return str(path)

    def test_jsonl_output_carries_rows(self, reqs_jsonl, capsys):
        import json

        assert main(
            ["batch", reqs_jsonl, "--workers", "1", "--output", "jsonl"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        recs = [json.loads(l) for l in lines]
        assert [r["id"] for r in recs] == ["a", "b"]
        assert recs[0]["rows"] == recs[1]["rows"]
        assert len(recs[0]["rows"]) == 3
        assert recs[0]["source"] == "computed"
        assert recs[1]["source"] == "dedup"
        assert recs[0]["score"] == recs[1]["score"]


class TestCliDocDrift:
    """Every subcommand the parser knows must be documented; a new
    subparser without docs (or docs for a removed command) fails here."""

    @staticmethod
    def _subcommands():
        import argparse

        from repro.cli import _build_parser

        parser = _build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                return sorted(action.choices)
        raise AssertionError("no subparsers found on the CLI parser")

    def test_expected_surface(self):
        # the drift check below is only meaningful if discovery works
        cmds = self._subcommands()
        for expected in ("align", "batch", "serve", "score", "info"):
            assert expected in cmds

    def test_every_subcommand_in_readme(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        readme = (root / "README.md").read_text()
        missing = [
            c for c in self._subcommands() if f"repro {c}" not in readme
        ]
        assert not missing, (
            f"subcommands absent from README.md: {missing}"
        )

    def test_every_subcommand_in_docs(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        corpus = "".join(
            p.read_text() for p in sorted((root / "docs").glob("*.md"))
        )
        missing = [
            c for c in self._subcommands() if f"repro {c}" not in corpus
        ]
        assert not missing, (
            f"subcommands absent from docs/*.md: {missing}"
        )

    def test_module_docstring_lists_every_subcommand(self):
        import repro.cli as cli

        doc = cli.__doc__ or ""
        missing = [
            c for c in self._subcommands() if f"``{c}``" not in doc
        ]
        assert not missing, (
            f"subcommands absent from the repro.cli docstring: {missing}"
        )


class TestServeCli:
    def test_bad_config_rejected(self, capsys):
        assert main(["serve", "--port", "-2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_accepts_all_knobs(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            [
                "serve", "--host", "0.0.0.0", "--port", "0",
                "--workers", "3", "--queue-depth", "64",
                "--max-inflight-cells", "1000000",
                "--max-request-cells", "2000000",
                "--batch-max", "16", "--batch-age-ms", "5",
                "--deadline", "10", "--drain-timeout", "5",
                "--cache-dir", "/tmp/x", "--max-entries", "128",
            ]
        )
        assert args.command == "serve"
        assert args.batch_age_ms == 5.0
