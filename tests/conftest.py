"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scoring import ScoringScheme, default_scheme_for
from repro.seqio.alphabet import DNA, PROTEIN
from repro.seqio.generate import MutationModel, mutated_family, random_sequence


@pytest.fixture(scope="session")
def dna_scheme() -> ScoringScheme:
    """Default DNA scheme (5/-4 matrix, gap -6, linear)."""
    return default_scheme_for(DNA)


@pytest.fixture(scope="session")
def protein_scheme() -> ScoringScheme:
    """Default protein scheme (BLOSUM62, gap -8, linear)."""
    return default_scheme_for(PROTEIN)


@pytest.fixture(scope="session")
def affine_dna_scheme(dna_scheme) -> ScoringScheme:
    """DNA scheme with affine gaps (-10 open, -4 extend)."""
    return dna_scheme.with_gaps(gap=-4.0, gap_open=-10.0)


@pytest.fixture(scope="session")
def small_triples() -> list[tuple[str, str, str]]:
    """A battery of deterministic small DNA triples, including degenerate
    shapes (empty sequences, single residues, unequal lengths)."""
    rng = np.random.default_rng(12345)
    out: list[tuple[str, str, str]] = [
        ("", "", ""),
        ("A", "", ""),
        ("", "C", ""),
        ("", "", "G"),
        ("A", "A", "A"),
        ("A", "C", "G"),
        ("ACGT", "", "ACGT"),
        ("GATTACA", "GATCA", "GTTACA"),
    ]
    for trial in range(10):
        lens = rng.integers(0, 9, size=3)
        out.append(
            tuple(
                random_sequence(int(n), DNA, seed=1000 + 3 * trial + t)
                for t, n in enumerate(lens)
            )
        )
    return out


@pytest.fixture(scope="session")
def family_small() -> list[str]:
    """A related triple (common ancestor, default mutation model)."""
    return mutated_family(20, seed=77)


@pytest.fixture(scope="session")
def family_medium() -> list[str]:
    """A longer related triple for the vectorised/parallel engines."""
    return mutated_family(45, model=MutationModel(0.15, 0.04, 0.04), seed=78)
