"""Unit tests for repro.seqio.generate."""

import pytest

from repro.seqio.alphabet import DNA, PROTEIN
from repro.seqio.generate import (
    MutationModel,
    identity_fraction,
    mutate_sequence,
    mutated_family,
    random_sequence,
)


class TestRandomSequence:
    def test_length(self):
        assert len(random_sequence(50, seed=1)) == 50

    def test_deterministic_given_seed(self):
        assert random_sequence(40, seed=7) == random_sequence(40, seed=7)

    def test_seeds_differ(self):
        assert random_sequence(40, seed=1) != random_sequence(40, seed=2)

    def test_alphabet_respected(self):
        seq = random_sequence(200, DNA, seed=3)
        assert set(seq) <= set("ACGT")

    def test_no_wildcards_emitted(self):
        seq = random_sequence(500, PROTEIN, seed=4)
        assert "X" not in seq

    def test_zero_length(self):
        assert random_sequence(0, seed=1) == ""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_sequence(-1)


class TestMutationModel:
    def test_defaults_valid(self):
        MutationModel()

    def test_rate_bounds_checked(self):
        with pytest.raises(ValueError):
            MutationModel(substitution=1.5)
        with pytest.raises(ValueError):
            MutationModel(insertion=-0.1)

    def test_indel_sum_bound(self):
        with pytest.raises(ValueError, match="insertion"):
            MutationModel(insertion=0.6, deletion=0.6)

    def test_scaled(self):
        m = MutationModel(0.1, 0.02, 0.02).scaled(2.0)
        assert m.substitution == pytest.approx(0.2)
        assert m.insertion == pytest.approx(0.04)

    def test_scaled_clips_at_one(self):
        m = MutationModel(0.5, 0.0, 0.0).scaled(10.0)
        assert m.substitution == 1.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MutationModel().scaled(0.0)


class TestMutateSequence:
    def test_zero_rates_identity(self):
        model = MutationModel(0.0, 0.0, 0.0)
        seq = random_sequence(60, seed=5)
        assert mutate_sequence(seq, model, seed=9) == seq

    def test_full_deletion(self):
        model = MutationModel(0.0, 0.0, 1.0)
        assert mutate_sequence("ACGTACGT", model, seed=1) == ""

    def test_substitution_changes_residue(self):
        model = MutationModel(1.0, 0.0, 0.0)
        seq = "A" * 50
        mutated = mutate_sequence(seq, model, seed=2)
        assert len(mutated) == 50
        assert all(c != "A" for c in mutated)

    def test_deterministic(self):
        model = MutationModel(0.3, 0.1, 0.1)
        seq = random_sequence(80, seed=6)
        assert mutate_sequence(seq, model, seed=3) == mutate_sequence(
            seq, model, seed=3
        )

    def test_alphabet_respected(self):
        model = MutationModel(0.5, 0.2, 0.2)
        seq = random_sequence(100, DNA, seed=8)
        assert set(mutate_sequence(seq, model, seed=4)) <= set("ACGT")


class TestMutatedFamily:
    def test_count(self):
        fam = mutated_family(30, count=3, seed=1)
        assert len(fam) == 3

    def test_members_are_related(self):
        fam = mutated_family(200, model=MutationModel(0.05, 0.0, 0.0), seed=2)
        # With only 5% substitutions and no indels, identity stays high.
        assert identity_fraction(fam[0], fam[1]) > 0.8

    def test_members_differ(self):
        fam = mutated_family(100, seed=3)
        assert len(set(fam)) > 1

    def test_deterministic(self):
        assert mutated_family(40, seed=4) == mutated_family(40, seed=4)

    def test_count_validated(self):
        with pytest.raises(ValueError):
            mutated_family(10, count=0)


class TestIdentityFraction:
    def test_identical(self):
        assert identity_fraction("ACGT", "ACGT") == 1.0

    def test_disjoint(self):
        assert identity_fraction("AAAA", "CCCC") == 0.0

    def test_empty(self):
        assert identity_fraction("", "ACGT") == 0.0


class TestBlockIndels:
    def test_zero_rates_identity(self):
        from repro.seqio.generate import mutate_with_blocks

        model = MutationModel(0.0, 0.0, 0.0)
        seq = random_sequence(60, seed=31)
        assert mutate_with_blocks(seq, model, seed=5, block_rate=0.0) == seq

    def test_deterministic(self):
        from repro.seqio.generate import mutate_with_blocks

        model = MutationModel(0.1, 0.0, 0.0)
        seq = random_sequence(80, seed=32)
        a = mutate_with_blocks(seq, model, seed=6, block_rate=0.05)
        b = mutate_with_blocks(seq, model, seed=6, block_rate=0.05)
        assert a == b

    def test_blocks_change_length_substantially(self):
        from repro.seqio.generate import mutate_with_blocks

        model = MutationModel(0.0, 0.0, 0.0)
        seq = random_sequence(200, seed=33)
        mutated = mutate_with_blocks(
            seq, model, seed=7, block_rate=0.2, mean_block=8.0
        )
        assert mutated != seq
        assert abs(len(mutated) - len(seq)) > 0

    def test_alphabet_respected(self):
        from repro.seqio.generate import mutate_with_blocks

        model = MutationModel(0.2, 0.0, 0.0)
        seq = random_sequence(100, seed=34)
        out = mutate_with_blocks(seq, model, seed=8, block_rate=0.1)
        assert set(out) <= set("ACGT")

    def test_rate_validated(self):
        from repro.seqio.generate import mutate_with_blocks

        with pytest.raises(ValueError):
            mutate_with_blocks("ACGT", MutationModel(), block_rate=2.0)
        with pytest.raises(ValueError):
            mutate_with_blocks("ACGT", MutationModel(), mean_block=0.0)

    def test_family(self):
        from repro.seqio.generate import block_indel_family, identity_fraction

        fam = block_indel_family(80, seed=9)
        assert len(fam) == 3
        # Members share ancestry: decent identity despite indels.
        assert identity_fraction(fam[0], fam[1]) > 0.3

    def test_family_count_validated(self):
        from repro.seqio.generate import block_indel_family

        with pytest.raises(ValueError):
            block_indel_family(10, count=0)

    def test_affine_prefers_block_indel_families(self, dna_scheme):
        """On a block-indel workload, the affine optimum concentrates gaps:
        its alignment has fewer, longer gap runs than the linear one."""
        from repro.analysis.stats import alignment_stats
        from repro.core.affine import align3_affine
        from repro.core.wavefront import align3_wavefront
        from repro.seqio.generate import block_indel_family

        fam = block_indel_family(40, seed=10, block_rate=0.05, mean_block=6.0)
        linear = align3_wavefront(*fam, dna_scheme.with_gaps(gap=-2.0))
        affine = align3_affine(
            *fam, dna_scheme.with_gaps(gap=-0.5, gap_open=-12.0)
        )
        s_lin = alignment_stats(linear.rows)
        s_aff = alignment_stats(affine.rows)
        if s_aff.gap_runs and s_lin.gap_runs:
            assert s_aff.mean_gap_run >= s_lin.mean_gap_run - 1e-9
