"""Tests for the block-tiled multiprocess wavefront engine
(repro.parallel.blocks): bit-identity against the serial oracle across
worker counts and band depths, pruning-tube composition, degenerate
shapes and validation."""

import numpy as np
import pytest

from repro.core.bounds import carrillo_lipman_tube
from repro.core.dp3d import align3_dp3d, score3_dp3d
from repro.core.scoring import ScoringScheme
from repro.core.wavefront import align3_wavefront, wavefront_sweep
from repro.parallel.blocks import align3_blocks, score3_blocks
from repro.parallel.shared import fork_available
from repro.seqio.alphabet import DNA

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestScoreIdentity:
    @needs_fork
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_matches_dp3d(self, dna_scheme, family_small, workers):
        ref = score3_dp3d(*family_small, dna_scheme)
        got = score3_blocks(*family_small, dna_scheme, workers=workers)
        assert got == ref  # bit-identical, not approx

    @needs_fork
    def test_more_workers_than_rows(self, dna_scheme, family_small):
        # workers > n1 + 1: the slab split must shrink to the row count
        # rather than spawn idle workers (or worse, empty slabs).
        ref = score3_dp3d(*family_small, dna_scheme)
        got = score3_blocks(*family_small, dna_scheme, workers=64)
        assert got == ref

    @needs_fork
    @pytest.mark.parametrize("band", [1, 2, 7])
    def test_shallow_bands_force_many_blocks(
        self, dna_scheme, family_small, band
    ):
        # band=1 degenerates to per-plane synchronisation through the
        # counter protocol — the worst case for the window rotation.
        ref = score3_dp3d(*family_small, dna_scheme)
        got = score3_blocks(
            *family_small, dna_scheme, workers=3, band=band
        )
        assert got == ref

    @needs_fork
    def test_asymmetric_dims(self, dna_scheme):
        sa, sb, sc = "GATTACAGATTACA", "GAT", "ACGTACGT"
        ref = score3_dp3d(sa, sb, sc, dna_scheme)
        assert score3_blocks(sa, sb, sc, dna_scheme, workers=3) == ref

    def test_single_worker_serial_fallback(self, dna_scheme, family_small):
        ref = score3_dp3d(*family_small, dna_scheme)
        got = score3_blocks(*family_small, dna_scheme, workers=1)
        assert got == ref


class TestAlignmentIdentity:
    @needs_fork
    def test_rows_bit_identical_to_wavefront(self, dna_scheme, family_small):
        ref = align3_wavefront(*family_small, dna_scheme)
        aln = align3_blocks(*family_small, dna_scheme, workers=3)
        assert aln.rows == ref.rows
        assert aln.score == ref.score
        assert aln.sequences() == tuple(family_small)

    @needs_fork
    def test_alignment_optimal(self, dna_scheme, family_small):
        ref = align3_dp3d(*family_small, dna_scheme)
        aln = align3_blocks(*family_small, dna_scheme, workers=2)
        assert aln.score == ref.score

    @needs_fork
    def test_deterministic_across_runs(self, dna_scheme, family_small):
        a = align3_blocks(*family_small, dna_scheme, workers=4)
        b = align3_blocks(*family_small, dna_scheme, workers=4)
        assert a.rows == b.rows and a.score == b.score


class TestTubeComposition:
    @needs_fork
    def test_pruned_score_and_cells_match_serial(
        self, dna_scheme, family_small
    ):
        tube, _stats = carrillo_lipman_tube(*family_small, dna_scheme)
        serial = wavefront_sweep(
            *family_small, dna_scheme, tube=tube, score_only=True
        )
        got = score3_blocks(
            *family_small, dna_scheme, workers=3, tube=tube
        )
        assert got == serial.score
        # Cell-count parity proves the engine computed exactly the live
        # cells — blocks fully outside the tube were skipped, none of
        # the pruning speedup was given back.
        _score, _moves, meta = _sweep_meta(
            *family_small, dna_scheme, workers=3, tube=tube
        )
        assert meta["cells"] == serial.cells_computed

    @needs_fork
    def test_pruned_alignment_bit_identical(self, dna_scheme, family_small):
        tube, _stats = carrillo_lipman_tube(*family_small, dna_scheme)
        ref = align3_wavefront(*family_small, dna_scheme, tube=tube)
        aln = align3_blocks(
            *family_small, dna_scheme, workers=3, tube=tube
        )
        assert aln.rows == ref.rows and aln.score == ref.score

    def test_tube_shape_validated(self, dna_scheme, family_small):
        bad = np.ones((2, 2, 2), dtype=bool)
        with pytest.raises(ValueError, match="tube"):
            score3_blocks(
                *family_small, dna_scheme, workers=2, tube=bad
            )


class TestValidationAndMeta:
    def test_workers_validated(self, dna_scheme, family_small):
        with pytest.raises(ValueError):
            score3_blocks(*family_small, dna_scheme, workers=-1)

    def test_affine_rejected(self, dna_scheme, family_small):
        affine = ScoringScheme(
            alphabet=DNA,
            matrix=dna_scheme.matrix,
            gap=dna_scheme.gap,
            gap_open=-10.0,
        )
        with pytest.raises(ValueError, match="linear"):
            score3_blocks(*family_small, affine, workers=2)

    def test_serial_fallback_meta(self, dna_scheme, family_small):
        _score, _moves, meta = _sweep_meta(
            *family_small, dna_scheme, workers=1
        )
        assert meta["engine"] == "blocks"
        assert meta["fallback"] == "serial"
        assert meta["active_workers"] == 1

    @needs_fork
    def test_parallel_meta_shape(self, dna_scheme, family_small):
        _score, _moves, meta = _sweep_meta(
            *family_small, dna_scheme, workers=3
        )
        assert meta["engine"] == "blocks"
        assert meta["workers"] == 3
        assert 1 < meta["active_workers"] <= 3
        assert meta["band"] >= 1
        # The rotating window covers two bands plus the 3-plane read
        # horizon (clamped to the cube depth).
        dmax = sum(len(s) for s in family_small)
        assert meta["window"] <= min(2 * meta["band"] + 3, dmax + 4)
        n1 = len(family_small[0])
        n2, n3 = len(family_small[1]), len(family_small[2])
        assert meta["cells"] == (n1 + 1) * (n2 + 1) * (n3 + 1)


def _sweep_meta(sa, sb, sc, scheme, workers, tube=None):
    from repro.parallel.blocks import _blocks_sweep

    return _blocks_sweep(
        sa, sb, sc, scheme, workers, score_only=tube is None, tube=tube
    )
