"""Unit tests for semi-global (overlap) alignment (repro.core.semiglobal)."""

import numpy as np
import pytest

from repro.core.dp3d import score3_dp3d
from repro.core.local import score3_local
from repro.core.semiglobal import (
    _best_end_cell,
    align3_semiglobal,
    score3_semiglobal,
    semiglobal_dp3d_matrix,
)
from repro.seqio.generate import random_sequence


class TestEnginesAgree:
    def test_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            D, _ = semiglobal_dp3d_matrix(*triple, dna_scheme)
            n1, n2, n3 = (len(s) for s in triple)
            ref, _cell = _best_end_cell(D, n1, n2, n3)
            got = score3_semiglobal(*triple, dna_scheme)
            assert got == pytest.approx(ref), triple

    def test_random_medium(self, dna_scheme):
        rng = np.random.default_rng(11)
        for trial in range(5):
            seqs = [
                random_sequence(int(n), seed=900 + trial * 3 + t)
                for t, n in enumerate(rng.integers(4, 18, size=3))
            ]
            D, _ = semiglobal_dp3d_matrix(*seqs, dna_scheme)
            ref, _ = _best_end_cell(D, *(len(s) for s in seqs))
            assert score3_semiglobal(*seqs, dna_scheme) == pytest.approx(ref)


class TestSemantics:
    def test_bracketed_by_global_and_local(self, dna_scheme, family_small):
        g = score3_dp3d(*family_small, dna_scheme)
        sg = score3_semiglobal(*family_small, dna_scheme)
        loc = score3_local(*family_small, dna_scheme)
        # Free ends can only help over global; local can only help over
        # semiglobal (it may also drop interior prefix/suffix columns).
        assert g - 1e-9 <= sg <= loc + 1e-9

    def test_staggered_fragments(self, dna_scheme):
        # Three overlapping windows of one source: overlap mode should
        # recover the shared core without paying for the staggered ends.
        src = "GATTACAGATTACAGGATCC"
        sa, sb, sc = src[:14], src[3:17], src[6:]
        sg = score3_semiglobal(sa, sb, sc, dna_scheme)
        g = score3_dp3d(sa, sb, sc, dna_scheme)
        assert sg > g

    def test_identical_inputs_equal_global(self, dna_scheme):
        s = "ACGTACGT"
        assert score3_semiglobal(s, s, s, dna_scheme) == pytest.approx(
            score3_dp3d(s, s, s, dna_scheme)
        )

    def test_empty_input_scores_zero(self, dna_scheme):
        assert score3_semiglobal("ACGT", "", "GG", dna_scheme) == 0.0

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            score3_semiglobal("A", "A", "A", dna_scheme.with_gaps(-1, -1))


class TestAlignment:
    def test_full_sequences_recovered(self, dna_scheme, family_small):
        aln = align3_semiglobal(*family_small, dna_scheme)
        assert aln.sequences() == tuple(family_small)

    def test_core_region_scores_reported_value(self, dna_scheme):
        src = "GATTACAGATTACAGGATCC"
        sa, sb, sc = src[:14], src[3:17], src[6:]
        aln = align3_semiglobal(sa, sb, sc, dna_scheme)
        lo, hi = aln.meta["core"]
        core_rows = tuple(r[lo:hi] for r in aln.rows)
        assert dna_scheme.sp_score(core_rows) == pytest.approx(aln.score)

    def test_end_gaps_surround_core(self, dna_scheme):
        src = "GATTACAGATTACAGGATCC"
        sa, sb, sc = src[:14], src[3:17], src[6:]
        aln = align3_semiglobal(sa, sb, sc, dna_scheme)
        lo, hi = aln.meta["core"]
        for col in list(zip(*aln.rows))[:lo]:
            assert sum(1 for ch in col if ch != "-") == 1
        for col in list(zip(*aln.rows))[hi:]:
            assert sum(1 for ch in col if ch != "-") == 1

    def test_all_empty(self, dna_scheme):
        aln = align3_semiglobal("", "", "", dna_scheme)
        assert aln.rows == ("", "", "")
        assert aln.score == 0.0
