"""Unit tests for repro.cluster.machine."""

import pytest

from repro.cluster.machine import (
    MachineModel,
    calibrate_t_cell,
    ethernet_2007,
    gigabit_2007,
    modern_cluster,
)


class TestMachineModel:
    def test_comm_time_affine_in_bytes(self):
        m = MachineModel(procs=4, alpha=1e-4, beta=1e-8)
        assert m.comm_time(0) == pytest.approx(1e-4)
        assert m.comm_time(1000) == pytest.approx(1e-4 + 1e-5)

    def test_compute_time_linear(self):
        m = MachineModel(procs=1, t_cell=2e-8)
        assert m.compute_time(1_000_000) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(procs=0)
        with pytest.raises(ValueError):
            MachineModel(procs=1, t_cell=0)
        with pytest.raises(ValueError):
            MachineModel(procs=1, alpha=-1)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(procs=1).comm_time(-1)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(procs=1).compute_time(-1)

    def test_with_procs(self):
        m = ethernet_2007(4)
        m2 = m.with_procs(16)
        assert m2.procs == 16
        assert m2.alpha == m.alpha
        assert m2.name == m.name


class TestPresets:
    def test_era_ordering(self):
        # Latency and per-byte cost must improve era over era.
        eth, gig, mod = ethernet_2007(1), gigabit_2007(1), modern_cluster(1)
        assert eth.alpha > gig.alpha > mod.alpha
        assert eth.beta > gig.beta > mod.beta

    def test_names(self):
        assert ethernet_2007(1).name == "ethernet-2007"
        assert gigabit_2007(1).name == "gigabit-2007"
        assert modern_cluster(1).name == "modern"


class TestCalibration:
    def test_calibrate_returns_plausible_value(self):
        t = calibrate_t_cell(n=24, seed=1)
        # Vectorised NumPy on this machine: between 0.1 ns and 10 us/cell.
        assert 1e-10 < t < 1e-5

    def test_calibrate_validates_n(self):
        with pytest.raises(ValueError):
            calibrate_t_cell(n=0)
