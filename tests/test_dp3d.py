"""Unit tests for the reference full-matrix 3-D DP (repro.core.dp3d)."""

import numpy as np
import pytest

from repro.core.dp3d import NEG, align3_dp3d, dp3d_matrix, score3_dp3d
from tests.reference.bruteforce import bruteforce_enumerate, memo_optimal_score


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "triple",
        [
            ("", "", ""),
            ("A", "", ""),
            ("A", "C", ""),
            ("A", "C", "G"),
            ("AC", "AG", "AT"),
            ("ACG", "CG", "A"),
            ("GAT", "GTT", "GAT"),
        ],
    )
    def test_exhaustive_tiny(self, triple, dna_scheme):
        expected = bruteforce_enumerate(*triple, dna_scheme)
        if triple == ("", "", ""):
            expected = 0.0  # enumerator returns -inf only for the base call
        assert score3_dp3d(*triple, dna_scheme) == pytest.approx(expected)

    def test_memoised_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            expected = memo_optimal_score(*triple, dna_scheme)
            got = score3_dp3d(*triple, dna_scheme)
            assert got == pytest.approx(expected), triple


class TestMatrixProperties:
    def test_origin_zero(self, dna_scheme):
        D, M = dp3d_matrix("AC", "AG", "A", dna_scheme)
        assert D[0, 0, 0] == 0.0
        assert M[0, 0, 0] == 0

    def test_axis_edges_are_gap_chains(self, dna_scheme):
        D, _ = dp3d_matrix("ACGT", "", "", dna_scheme)
        # Along the A axis each step costs two residue/gap pairs.
        for i in range(5):
            assert D[i, 0, 0] == pytest.approx(i * 2 * dna_scheme.gap)

    def test_face_matches_pairwise(self, dna_scheme):
        # On the k=0 face the recurrence reduces to pairwise NW with
        # substitution s(a,b) + 2g and gap 2g.
        from repro.pairwise.nw import score2

        sa, sb = "GATTACA", "GATCA"
        D, _ = dp3d_matrix(sa, sb, "", dna_scheme)
        got = D[len(sa), len(sb), 0]
        expected = memo_optimal_score(sa, sb, "", dna_scheme)
        assert got == pytest.approx(expected)
        # And the pairwise projection identity: the 3-way score with an
        # empty third sequence equals the pairwise score with the modified
        # gap model (each column pays an extra 2g... checked via memo).
        del score2

    def test_affine_scheme_rejected(self, dna_scheme):
        aff = dna_scheme.with_gaps(gap=-2, gap_open=-5)
        with pytest.raises(ValueError, match="linear gap"):
            dp3d_matrix("A", "A", "A", aff)

    def test_mask_validation(self, dna_scheme):
        bad = np.zeros((2, 2, 2), dtype=bool)
        with pytest.raises(ValueError, match="origin and terminal"):
            dp3d_matrix("A", "A", "A", dna_scheme, mask=bad)

    def test_mask_shape_validation(self, dna_scheme):
        with pytest.raises(ValueError, match="mask shape"):
            dp3d_matrix("AC", "A", "A", dna_scheme, mask=np.ones((2, 2, 2), bool))


class TestAlignment:
    def test_alignment_score_consistent(self, dna_scheme, small_triples):
        for triple in small_triples:
            aln = align3_dp3d(*triple, dna_scheme)
            assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)

    def test_alignment_recovers_inputs(self, dna_scheme, family_small):
        aln = align3_dp3d(*family_small, dna_scheme)
        assert aln.sequences() == tuple(family_small)

    def test_meta(self, dna_scheme):
        aln = align3_dp3d("AC", "AG", "AT", dna_scheme)
        assert aln.meta["engine"] == "dp3d"
        assert aln.meta["cells"] == 27

    def test_empty_inputs(self, dna_scheme):
        aln = align3_dp3d("", "", "", dna_scheme)
        assert aln.rows == ("", "", "")
        assert aln.score == 0.0

    def test_identical_inputs_align_without_gaps(self, dna_scheme):
        aln = align3_dp3d("ACGT", "ACGT", "ACGT", dna_scheme)
        assert aln.rows == ("ACGT", "ACGT", "ACGT")
        assert aln.score == pytest.approx(4 * 15.0)

    def test_overpruned_mask_raises(self, dna_scheme):
        mask = np.zeros((3, 3, 3), dtype=bool)
        mask[0, 0, 0] = mask[2, 2, 2] = True  # unreachable terminal
        with pytest.raises(RuntimeError, match="unreachable"):
            align3_dp3d("AC", "AG", "AT", dna_scheme, mask=mask)

    def test_neg_sentinel_is_very_negative(self):
        assert NEG < -1e20
