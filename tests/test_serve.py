"""The serving layer: HTTP framing, admission control, and the live
service end to end.

The protocol/admission/config tests are plain unit tests. The
``@pytest.mark.serve`` tests run a real :class:`AlignServer` on an
ephemeral port inside a background thread's event loop and talk to it
with the stdlib client — the same path ``tools/check_serve.py``
exercises across processes, kept here in-process so the tier-1 suite
stays fast.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading

import pytest

from repro.core.api import align3
from repro.core.scoring import default_scheme_for
from repro.seqio.alphabet import DNA
from repro.seqio.generate import mutated_family
from repro.serve import (
    AdmissionController,
    AlignServer,
    ServeClient,
    ServeConfig,
    estimate_cells,
)
from repro.serve.protocol import (
    BadRequest,
    PayloadTooLarge,
    error_payload,
    read_request,
    render_response,
)

# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------


def _parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestProtocol:
    def test_parses_request_line_headers_and_body(self):
        body = b'{"x": 1}'
        raw = (
            b"POST /v1/align?mode=global HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        req = _parse(raw)
        assert req.method == "POST"
        assert req.path == "/v1/align"
        assert req.query == "mode=global"
        assert req.headers["host"] == "localhost"
        assert req.json() == {"x": 1}

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_mid_request_eof_raises(self):
        with pytest.raises(BadRequest):
            _parse(b"GET /healthz HT")

    def test_malformed_request_line(self):
        with pytest.raises(BadRequest):
            _parse(b"NONSENSE\r\n\r\n")

    def test_unknown_method_rejected(self):
        with pytest.raises(BadRequest):
            _parse(b"BREW /coffee HTTP/1.1\r\n\r\n")

    def test_chunked_uploads_rejected(self):
        raw = (
            b"POST /v1/align HTTP/1.1\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        with pytest.raises(BadRequest):
            _parse(raw)

    def test_oversized_body_rejected_before_read(self):
        raw = (
            b"POST /v1/align HTTP/1.1\r\n"
            b"Content-Length: 1000\r\n\r\n"
        )
        with pytest.raises(PayloadTooLarge):
            _parse(raw, max_body_bytes=100)

    def test_bad_content_length(self):
        for bad in (b"nope", b"-5"):
            raw = (
                b"POST / HTTP/1.1\r\nContent-Length: " + bad + b"\r\n\r\n"
            )
            with pytest.raises(BadRequest):
                _parse(raw)

    def test_keep_alive_semantics(self):
        req = _parse(b"GET / HTTP/1.1\r\n\r\n")
        assert not req.wants_close
        req = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert req.wants_close
        req = _parse(b"GET / HTTP/1.0\r\n\r\n")
        assert req.wants_close
        req = _parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert not req.wants_close

    def test_json_of_empty_body_raises(self):
        req = _parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(BadRequest):
            req.json()

    def test_render_response_roundtrip(self):
        raw = render_response(
            429,
            error_payload("overloaded", "busy", retry_after_s=3),
            keep_alive=False,
            extra_headers=[("Retry-After", "3")],
        )
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 429 Too Many Requests"
        assert "Retry-After: 3" in lines
        assert "Connection: close" in lines
        payload = json.loads(body)
        assert payload["error"]["type"] == "overloaded"
        assert payload["error"]["retry_after_s"] == 3
        assert int(
            [ln for ln in lines if ln.startswith("Content-Length")][0]
            .split(":")[1]
        ) == len(body)


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------


class TestAdmission:
    def test_estimate_cells_is_full_lattice(self):
        assert estimate_cells(["AA", "AAA", "A"]) == 3 * 4 * 2

    def test_queue_bound_sheds(self):
        adm = AdmissionController(2, 10**9)
        assert adm.try_admit(2, 100).admitted
        d = adm.try_admit(1, 100)
        assert not d.admitted
        assert d.reason == "queue_full"
        assert d.retry_after_s >= 1

    def test_cell_bound_sheds(self):
        adm = AdmissionController(100, 1000)
        assert adm.try_admit(1, 900).admitted
        d = adm.try_admit(1, 200)
        assert not d.admitted
        assert d.reason == "cells_full"

    def test_flush_frees_queue_not_cells(self):
        adm = AdmissionController(1, 10**9)
        assert adm.try_admit(1, 500).admitted
        assert not adm.try_admit(1, 1).admitted
        adm.on_flush(1)
        assert adm.queued_requests == 0
        assert adm.inflight_cells == 500
        assert adm.try_admit(1, 1).admitted

    def test_complete_frees_cells_with_floor(self):
        adm = AdmissionController(10, 1000)
        adm.try_admit(1, 600)
        adm.on_complete(600)
        assert adm.inflight_cells == 0
        adm.on_complete(999)  # double-complete must not go negative
        assert adm.inflight_cells == 0

    def test_retry_after_tracks_backlog_and_clamps(self):
        adm = AdmissionController(10, 10**12)
        assert adm.retry_after() == 1  # empty backlog -> minimum
        adm.try_admit(1, int(adm.cells_per_s * 5))
        assert 5 <= adm.retry_after() <= 6
        adm.try_admit(1, int(adm.cells_per_s * 500))
        assert adm.retry_after() == 60  # clamped

    def test_throughput_ewma_moves_toward_observation(self):
        adm = AdmissionController(10, 10**9)
        before = adm.cells_per_s
        adm.observe_throughput(int(before * 10), 1.0)
        assert before < adm.cells_per_s < before * 10
        adm.observe_throughput(0, 1.0)  # ignored
        adm.observe_throughput(100, 0.0)  # ignored

    def test_snapshot_counts(self):
        adm = AdmissionController(1, 10)
        adm.try_admit(1, 5)
        adm.try_admit(1, 5)
        snap = adm.snapshot()
        assert snap["admitted_total"] == 1
        assert snap["shed_total"] == 1

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(0, 10)
        with pytest.raises(ValueError):
            AdmissionController(10, 0)


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------


class TestConfig:
    def test_defaults_validate(self):
        ServeConfig().validate()
        ServeConfig(port=0).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"port": -1},
            {"port": 70000},
            {"workers": 0},
            {"queue_depth": 0},
            {"max_inflight_cells": 0},
            {"batch_max_requests": 0},
            {"batch_max_age_s": -0.1},
            {"default_deadline_s": 0},
            {"drain_timeout_s": -1},
            {"drain_grace_s": -0.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs).validate()

    def test_router_facing_knobs_validate(self):
        ServeConfig(
            instance="r0",
            cache_url="127.0.0.1:9999",
            drain_grace_s=0.5,
        ).validate()


# ----------------------------------------------------------------------
# job table
# ----------------------------------------------------------------------


class TestJobTable:
    def test_only_finished_jobs_are_evicted(self, capsys):
        from repro.serve.app import JobTable

        table = JobTable(capacity=2)
        jid1, rec1 = table.register(1)
        jid2, rec2 = table.register(1)
        jid3, rec3 = table.register(1)
        # All three queued: nothing evictable, table grows past
        # capacity with a warning rather than orphaning a live job.
        assert len(table) == 3
        assert table.get(jid1) is rec1
        assert "over capacity" in capsys.readouterr().err

        rec1.status = "done"
        jid4, _rec4 = table.register(1)
        # The finished job went; every in-flight record survived.
        assert table.get(jid1) is None
        assert table.get(jid2) is rec2
        assert table.get(jid3) is rec3
        assert table.get(jid4) is not None
        assert len(table) == 3

    def test_warning_fires_once_per_overflow_episode(self, capsys):
        from repro.serve.app import JobTable

        table = JobTable(capacity=1)
        _jid1, rec1 = table.register(1)
        table.register(1)
        table.register(1)
        assert capsys.readouterr().err.count("over capacity") == 1
        rec1.status = "failed"
        table.register(1)  # evicts rec1; still the same episode
        table.register(1)
        # readouterr() drained the buffer above: no *new* warnings.
        assert capsys.readouterr().err.count("over capacity") == 0

    def test_bad_capacity_rejected(self):
        from repro.serve.app import JobTable

        with pytest.raises(ValueError):
            JobTable(capacity=0)


# ----------------------------------------------------------------------
# live server (in-process, ephemeral port)
# ----------------------------------------------------------------------


class ServerThread:
    """An AlignServer on its own thread + event loop, drained on exit."""

    def __init__(self, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 1)
        self.config = ServeConfig(**overrides)
        self.server: AlignServer | None = None
        self._ready: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        item = self._ready.get(timeout=30)
        if isinstance(item, BaseException):
            raise item
        self.port: int = item

    def _run(self) -> None:
        async def amain():
            self.server = AlignServer(self.config)
            try:
                _host, port = await self.server.start()
            except BaseException as exc:  # pragma: no cover - setup only
                self._ready.put(exc)
                return
            self._ready.put(port)
            await self.server.serve_until_drained()

        asyncio.run(amain())

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        assert self.server is not None
        self.server.request_drain()
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "server failed to drain"


TRIPLE = ("GATTACA", "GATCA", "GTTACA")


@pytest.mark.serve
class TestAlignServer:
    def test_align_matches_direct_align3(self):
        scheme = default_scheme_for(DNA)
        want = align3(*TRIPLE, scheme)
        with ServerThread() as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            resp = client.align(seqs=list(TRIPLE))
            assert resp.status == 200
            res = resp.body["results"][0]
            assert tuple(res["rows"]) == want.rows
            assert float(res["score"]) == want.score
            assert res["source"] == "computed"

            again = client.align(seqs=list(TRIPLE))
            assert again.body["results"][0]["source"] == "memory_hit"
            assert tuple(again.body["results"][0]["rows"]) == want.rows

    def test_batch_and_concurrent_clients_dedup(self):
        uniq = [tuple(mutated_family(12, seed=40 + i)) for i in range(4)]
        with ServerThread() as srv:
            responses = [None] * 8

            def hit(i: int) -> None:
                with ServeClient("127.0.0.1", srv.port) as c:
                    responses[i] = c.align(seqs=list(uniq[i % 4]))

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r.status == 200 for r in responses)
            for i, r in enumerate(responses):
                want = align3(*uniq[i % 4], default_scheme_for(DNA))
                got = r.body["results"][0]
                assert tuple(got["rows"]) == want.rows
                assert float(got["score"]) == want.score

    def test_multi_request_post(self):
        with ServerThread() as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            resp = client.align(
                requests=[
                    {"id": "a", "seqs": list(TRIPLE)},
                    {"id": "b", "seqs": list(TRIPLE)},
                ]
            )
            assert resp.status == 200
            assert resp.body["count"] == 2
            ids = [r["id"] for r in resp.body["results"]]
            assert ids == ["a", "b"]
            sources = {r["source"] for r in resp.body["results"]}
            assert "dedup" in sources or "memory_hit" in sources

    def test_healthz_and_metrics(self):
        with ServerThread() as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            assert client.healthz().status == 200
            client.align(seqs=list(TRIPLE))
            m = client.metrics()
            assert m.status == 200
            counters = m.body["metrics"]["counters"]
            assert counters["serve_requests"] >= 1
            assert "admission" in m.body
            assert "cache" in m.body

    def test_bad_requests_get_400_not_a_dropped_connection(self):
        with ServerThread() as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            resp = client._request(
                "POST", "/v1/align", {"seqs": ["AC", "AC"]}
            )
            assert resp.status == 400
            assert resp.body["error"]["type"] == "bad_request"
            resp = client._request("POST", "/v1/align", {"nope": 1})
            assert resp.status == 400

    def test_unknown_route_404_and_bad_method_405(self):
        with ServerThread() as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            assert client._request("GET", "/nope", None).status == 404
            resp = client._request("POST", "/healthz", {"x": 1})
            assert resp.status == 405

    def test_oversized_request_413(self):
        with ServerThread(max_request_cells=1000) as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            resp = client.align(seqs=["A" * 50, "C" * 50, "G" * 50])
            assert resp.status == 413
            assert resp.body["error"]["type"] == "request_too_large"

    def test_tiny_queue_sheds_with_retry_after(self):
        with ServerThread(
            queue_depth=1, batch_max_requests=1, batch_max_age_s=0.2
        ) as srv:
            seqs = list(mutated_family(30, seed=77))
            statuses, retry_afters = [], []

            def fire() -> None:
                with ServeClient("127.0.0.1", srv.port) as c:
                    r = c.align(seqs=seqs)
                    statuses.append(r.status)
                    if r.status == 429:
                        retry_afters.append(r.retry_after_s)

            threads = [
                threading.Thread(target=fire) for _ in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert 429 in statuses
            assert all(s in (200, 429) for s in statuses)
            assert all(ra is not None and ra >= 1 for ra in retry_afters)

    def test_coalesced_jobs_get_job_relative_indices(self):
        # Two clients landing in one micro-batch: each response must
        # number its results from 0 (the scheduler's batch-global
        # indices are an implementation detail the wire never shows).
        uniq = [tuple(mutated_family(10, seed=150 + i)) for i in range(4)]
        with ServerThread(
            batch_max_requests=16, batch_max_age_s=0.25
        ) as srv:
            responses = [None] * 4

            def hit(i: int) -> None:
                with ServeClient("127.0.0.1", srv.port) as c:
                    responses[i] = c.align(seqs=list(uniq[i]))

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r.status == 200 for r in responses)
            for r in responses:
                assert [res["index"] for res in r.body["results"]] == [0]

    def test_async_job_lifecycle(self):
        with ServerThread() as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            resp = client.align(seqs=list(TRIPLE), want_async=True)
            assert resp.status == 202
            jid = resp.body["job"]
            deadline = 50
            while deadline:
                job = client.job(jid)
                assert job.status == 200
                if job.body["status"] == "done":
                    break
                deadline -= 1
                import time as _time

                _time.sleep(0.05)
            assert job.body["status"] == "done"
            want = align3(*TRIPLE, default_scheme_for(DNA))
            got = job.body["results"][0]
            assert tuple(got["rows"]) == want.rows
            assert client.job("missing").status == 404

    def test_drain_completes_inflight_then_healthz_refuses(self):
        with ServerThread(
            batch_max_requests=4, batch_max_age_s=0.05
        ) as srv:
            seqs = [list(mutated_family(24, seed=60 + i)) for i in range(4)]
            results = [None] * 4

            def one(i: int) -> None:
                with ServeClient("127.0.0.1", srv.port, timeout=60) as c:
                    results[i] = c.align(seqs=seqs[i])

            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            import time as _time

            _time.sleep(0.05)
            assert srv.server is not None
            srv.server.request_drain()
            for t in threads:
                t.join(timeout=60)
            scheme = default_scheme_for(DNA)
            for i, r in enumerate(results):
                assert r is not None
                if r.status == 200:
                    want = align3(*seqs[i], scheme)
                    assert tuple(r.body["results"][0]["rows"]) == want.rows
                else:
                    assert r.status == 503  # refused at the door
            assert any(r.status == 200 for r in results)

    def test_serve_cache_hits_persist_across_restart(self, tmp_path):
        seqs = list(mutated_family(16, seed=99))
        with ServerThread(cache_dir=str(tmp_path)) as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            first = client.align(seqs=seqs)
            assert first.body["results"][0]["source"] == "computed"
        with ServerThread(cache_dir=str(tmp_path)) as srv, ServeClient(
            "127.0.0.1", srv.port
        ) as client:
            second = client.align(seqs=seqs)
            assert second.body["results"][0]["source"] == "disk_hit"
            assert (
                second.body["results"][0]["rows"]
                == first.body["results"][0]["rows"]
            )
