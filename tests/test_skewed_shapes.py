"""Regression battery for strongly skewed cube shapes.

The padded-plane engine's correctness rests on a subtle invariant about
which buffer rows may hold stale data when the four plane buffers rotate
(see docs/algorithms.md section 3). Skewed shapes (one sequence much
longer/shorter than the others) exercise the extreme bounding boxes where
that argument has the least slack, so every engine is pinned against the
scalar reference on a battery of adversarial shapes.
"""

import pytest

from repro.core.dp3d import score3_dp3d
from repro.core.hirschberg import align3_hirschberg
from repro.core.local import local_dp3d_matrix, score3_local
from repro.core.rolling import score3_slab
from repro.core.semiglobal import (
    _best_end_cell,
    score3_semiglobal,
    semiglobal_dp3d_matrix,
)
from repro.core.wavefront import score3_wavefront
from repro.parallel.threads import score3_threads
from repro.seqio.generate import random_sequence

SHAPES = [
    (1, 40, 3),
    (40, 1, 3),
    (3, 1, 40),
    (2, 35, 35),
    (35, 35, 2),
    (35, 2, 35),
    (1, 1, 50),
    (50, 1, 1),
    (4, 18, 44),
    (44, 18, 4),
    (0, 25, 25),
    (25, 25, 0),
    (7, 0, 31),
]


def _seqs(shape, seed_base):
    return tuple(
        random_sequence(n, seed=seed_base + t) for t, n in enumerate(shape)
    )


@pytest.mark.parametrize("shape", SHAPES)
def test_global_engines_on_skewed_shapes(shape, dna_scheme):
    seqs = _seqs(shape, 3000)
    ref = score3_dp3d(*seqs, dna_scheme)
    assert score3_wavefront(*seqs, dna_scheme) == pytest.approx(ref)
    assert score3_slab(*seqs, dna_scheme) == pytest.approx(ref)
    assert score3_threads(*seqs, dna_scheme, workers=3) == pytest.approx(ref)
    assert align3_hirschberg(
        *seqs, dna_scheme, base_cells=50
    ).score == pytest.approx(ref)


@pytest.mark.parametrize("shape", SHAPES[:8])
def test_local_engine_on_skewed_shapes(shape, dna_scheme):
    seqs = _seqs(shape, 4000)
    D, _ = local_dp3d_matrix(*seqs, dna_scheme)
    assert score3_local(*seqs, dna_scheme) == pytest.approx(float(D.max()))


@pytest.mark.parametrize("shape", SHAPES[:8])
def test_semiglobal_engine_on_skewed_shapes(shape, dna_scheme):
    seqs = _seqs(shape, 5000)
    D, _ = semiglobal_dp3d_matrix(*seqs, dna_scheme)
    ref, _cell = _best_end_cell(D, *(len(s) for s in seqs))
    assert score3_semiglobal(*seqs, dna_scheme) == pytest.approx(ref)


def test_extremely_long_thin_cube(dna_scheme):
    # Long A against short B/C stresses plane-buffer reuse the hardest:
    # hundreds of plane rotations with single-digit box heights.
    sa = random_sequence(300, seed=6000)
    sb = random_sequence(4, seed=6001)
    sc = random_sequence(5, seed=6002)
    ref = score3_dp3d(sa, sb, sc, dna_scheme)
    assert score3_wavefront(sa, sb, sc, dna_scheme) == pytest.approx(ref)
    assert score3_slab(sa, sb, sc, dna_scheme) == pytest.approx(ref)
