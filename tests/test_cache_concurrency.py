"""Disk-tier concurrency and crash-recovery tests for ResultCache.

The persistent tier is an append-only JSONL file shared by whatever
processes point ``--cache-dir`` at the same directory (batch CLI runs,
``repro serve`` restarts). These tests exercise the guarantees that make
that sharing safe:

- concurrent multi-process appends never corrupt each other (O_APPEND
  line atomicity);
- a fresh open rebuilds a key→offset index where the *last* write for a
  key wins;
- a stale in-process offset (another writer appended between fstat and
  write) is detected by key verification rather than silently returning
  the wrong alignment;
- a writer killed mid-append leaves a torn final line that is skipped on
  reload and repaired (newline-terminated) by the next append instead of
  corrupting it.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.cache import ResultCache
from repro.cache.store import decode_alignment, encode_alignment
from repro.core.types import Alignment3


def _aln(tag: str, score: float = 1.0) -> Alignment3:
    return Alignment3(
        rows=("ACG", "A-G", "AC-"), score=score, meta={"tag": tag}
    )


def _writer_proc(cache_dir: str, worker: int, n_keys: int) -> None:
    cache = ResultCache(max_entries=8, cache_dir=cache_dir)
    for i in range(n_keys):
        cache.put(f"k{i}", _aln(f"w{worker}-k{i}", score=float(worker)))


def test_concurrent_appends_keep_every_line_parseable(tmp_path):
    n_workers, n_keys = 4, 25
    procs = [
        multiprocessing.Process(
            target=_writer_proc, args=(str(tmp_path), w, n_keys)
        )
        for w in range(n_workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    path = tmp_path / "results.jsonl"
    lines = path.read_bytes().splitlines(keepends=True)
    assert len(lines) == n_workers * n_keys
    for line in lines:
        assert line.endswith(b"\n")  # no interleaved/torn writes
        rec = json.loads(line)
        assert rec["key"].startswith("k")
        decode_alignment(rec["alignment"])


def test_reopened_index_is_last_write_wins(tmp_path):
    cache = ResultCache(max_entries=4, cache_dir=tmp_path)
    cache.put("shared", _aln("old", score=1.0))
    cache.put("other", _aln("other", score=7.0))
    cache.put("shared", _aln("new", score=2.0))

    fresh = ResultCache(max_entries=4, cache_dir=tmp_path)
    got = fresh.get("shared")
    assert got is not None
    assert got.score == 2.0
    assert got.meta["tag"] == "new"
    assert fresh.get("other").score == 7.0
    assert fresh.stats.disk_hits == 2


def test_stale_offset_returns_none_not_wrong_record(tmp_path):
    cache = ResultCache(max_entries=4, cache_dir=tmp_path)
    cache.put("mine", _aln("mine"))
    # Simulate the fstat/write race: another process appended first, so
    # the offset this cache recorded actually points at a foreign record.
    path = tmp_path / "results.jsonl"
    foreign = json.dumps(
        {"key": "theirs", "alignment": encode_alignment(_aln("theirs"))}
    )
    path.write_text(foreign + "\n" + path.read_text())
    cache._disk_index["mine"] = 0  # now points at "theirs"
    cache.clear_memory()
    assert cache.get("mine") is None  # verified mismatch, not a lie


def test_torn_final_line_is_skipped_and_repaired(tmp_path):
    cache = ResultCache(max_entries=4, cache_dir=tmp_path)
    cache.put("good", _aln("good", score=5.0))
    path = tmp_path / "results.jsonl"
    # A writer died mid-append: half a record, no trailing newline.
    with open(path, "ab") as fh:
        torn = json.dumps(
            {"key": "torn", "alignment": encode_alignment(_aln("torn"))}
        )
        fh.write(torn[: len(torn) // 2].encode())

    survivor = ResultCache(max_entries=4, cache_dir=tmp_path)
    assert survivor.get("good").score == 5.0
    assert survivor.get("torn") is None
    assert survivor._repair_newline

    # The next append must start on a fresh line — and be readable both
    # through the live index and after a fresh reload.
    survivor.put("after", _aln("after", score=9.0))
    assert not survivor._repair_newline
    survivor.clear_memory()
    assert survivor.get("after").score == 9.0

    reloaded = ResultCache(max_entries=4, cache_dir=tmp_path)
    assert reloaded.get("after").score == 9.0
    assert reloaded.get("good").score == 5.0
    # Without repair the glued line would have swallowed "after" too.
    lines = path.read_bytes().splitlines()
    assert sum(1 for ln in lines if ln.strip()) == 3  # good, torn, after


def test_read_only_open_does_not_touch_torn_file(tmp_path):
    path = tmp_path / "results.jsonl"
    path.write_bytes(b'{"key":"x","alignment"')
    before = path.read_bytes()
    cache = ResultCache(max_entries=4, cache_dir=tmp_path)
    assert cache.get("x") is None
    assert path.read_bytes() == before  # repair is lazy, on first put


@pytest.mark.parametrize("n_procs", [2, 6])
def test_concurrent_writers_then_fresh_reader_sees_all_keys(
    tmp_path, n_procs
):
    procs = [
        multiprocessing.Process(
            target=_writer_proc, args=(str(tmp_path), w, 10)
        )
        for w in range(n_procs)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    reader = ResultCache(max_entries=4, cache_dir=tmp_path)
    for i in range(10):
        got = reader.get(f"k{i}")
        assert got is not None
        # Which worker won is racy; that it's *some* whole record is not.
        assert got.meta["tag"].endswith(f"k{i}")
        assert got.score in {float(w) for w in range(n_procs)}


def test_disk_put_offset_valid_within_process(tmp_path):
    cache = ResultCache(max_entries=1, cache_dir=tmp_path)
    for i in range(20):
        cache.put(f"k{i}", _aln(f"t{i}", score=float(i)))
    # max_entries=1 means everything but the newest was evicted from
    # memory, so these gets all exercise the recorded disk offsets.
    for i in range(20):
        got = cache.get(f"k{i}")
        assert got is not None and got.score == float(i)
    assert cache.stats.disk_hits >= 19
