"""Unit tests for the heterogeneous cluster model (repro.cluster.hetero)."""

import pytest

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.hetero import (
    HeterogeneousMachine,
    simulate_wavefront_hetero,
    uniform_with_stragglers,
    weighted_pencil_owners,
)


@pytest.fixture
def grid():
    return BlockGrid.for_sequences(80, 80, 80, 16)


class TestMachine:
    def test_basic_properties(self):
        m = HeterogeneousMachine(t_cells=(1e-8, 2e-8))
        assert m.procs == 2
        assert m.total_speed == pytest.approx(1e8 + 5e7)

    def test_compute_time_uses_proc_speed(self):
        m = HeterogeneousMachine(t_cells=(1e-8, 4e-8))
        assert m.compute_time(100, 1) == pytest.approx(4 * m.compute_time(100, 0))

    def test_ideal_serial_uses_fastest(self):
        m = HeterogeneousMachine(t_cells=(3e-8, 1e-8))
        assert m.ideal_serial_time(1000) == pytest.approx(1000 * 1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousMachine(t_cells=())
        with pytest.raises(ValueError):
            HeterogeneousMachine(t_cells=(0.0,))
        with pytest.raises(ValueError):
            HeterogeneousMachine(t_cells=(1e-8,), alpha=-1)

    def test_stragglers_factory(self):
        m = uniform_with_stragglers(8, stragglers=2, slowdown=3.0)
        assert m.procs == 8
        assert sum(1 for t in m.t_cells if t > 2.5e-8) == 2

    def test_stragglers_validation(self):
        with pytest.raises(ValueError):
            uniform_with_stragglers(4, stragglers=5)


class TestWeightedOwners:
    def test_every_pencil_assigned(self, grid):
        m = uniform_with_stragglers(5, stragglers=1)
        owners = weighted_pencil_owners(grid, m)
        _gi, gj, gk = grid.grid_shape
        assert len(owners) == gj * gk
        assert set(owners.values()) <= set(range(5))

    def test_fast_nodes_get_more_work(self, grid):
        m = HeterogeneousMachine(t_cells=(1e-8, 8e-8))
        owners = weighted_pencil_owners(grid, m)
        counts = [0, 0]
        for p in owners.values():
            counts[p] += 1
        assert counts[0] > counts[1]

    def test_balanced_when_uniform(self, grid):
        # Pencil loads differ (boundary pencils are smaller), so balance is
        # judged by accumulated cells, not pencil counts.
        m = HeterogeneousMachine(t_cells=(1e-8,) * 4)
        owners = weighted_pencil_owners(grid, m)
        load = [0] * 4
        for blk in grid.blocks():
            load[owners[(blk[1], blk[2])]] += grid.block_cells(blk)
        assert max(load) <= 1.2 * min(load)


class TestSimulation:
    def test_uniform_matches_homogeneous_shape(self, grid):
        m = uniform_with_stragglers(8, stragglers=0)
        r = simulate_wavefront_hetero(grid, m, mapping="pencil")
        assert 1 < r.speedup <= 8

    def test_stragglers_hurt_naive_mapping(self, grid):
        fast = uniform_with_stragglers(8, stragglers=0)
        slowed = uniform_with_stragglers(8, stragglers=2, slowdown=4.0)
        r_fast = simulate_wavefront_hetero(grid, fast, mapping="pencil")
        r_slow = simulate_wavefront_hetero(grid, slowed, mapping="pencil")
        assert r_slow.speedup < r_fast.speedup

    def test_weighted_recovers_speedup(self, grid):
        m = uniform_with_stragglers(8, stragglers=2, slowdown=4.0)
        naive = simulate_wavefront_hetero(grid, m, mapping="pencil")
        weighted = simulate_wavefront_hetero(grid, m, mapping="weighted")
        assert weighted.speedup > naive.speedup * 1.3

    def test_speedup_bounded_by_aggregate_speed(self, grid):
        m = uniform_with_stragglers(8, stragglers=4, slowdown=4.0)
        r = simulate_wavefront_hetero(grid, m, mapping="weighted")
        # Baseline is the fastest node; the aggregate speed bounds speedup.
        bound = m.total_speed * min(m.t_cells)
        assert r.speedup <= bound + 1e-9

    def test_busy_time_sums_to_work(self, grid):
        m = uniform_with_stragglers(4, stragglers=1, slowdown=2.0)
        r = simulate_wavefront_hetero(grid, m, mapping="weighted")
        assert r.blocks == grid.n_blocks
        assert all(b >= 0 for b in r.busy_time)
