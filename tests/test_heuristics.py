"""Unit tests for the heuristic 3-way aligners (center-star, progressive)."""

import pytest

from repro.core.dp3d import score3_dp3d
from repro.heuristics import align3_centerstar, align3_progressive
from repro.seqio.generate import MutationModel, mutated_family


class TestCenterStar:
    def test_feasible_alignment(self, dna_scheme, small_triples):
        for triple in small_triples:
            aln = align3_centerstar(*triple, dna_scheme)
            assert aln.sequences() == tuple(triple)
            assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)

    def test_never_exceeds_optimum(self, dna_scheme, small_triples):
        for triple in small_triples:
            aln = align3_centerstar(*triple, dna_scheme)
            opt = score3_dp3d(*triple, dna_scheme)
            assert aln.score <= opt + 1e-9, triple

    def test_optimal_on_identical_sequences(self, dna_scheme):
        s = "ACGTACGT"
        aln = align3_centerstar(s, s, s, dna_scheme)
        assert aln.score == pytest.approx(score3_dp3d(s, s, s, dna_scheme))

    def test_center_choice_recorded(self, dna_scheme):
        aln = align3_centerstar("ACGT", "ACGT", "TTTT", dna_scheme)
        # The two identical sequences make one of them the center.
        assert aln.meta["center"] in (0, 1)

    def test_empty_sequences(self, dna_scheme):
        aln = align3_centerstar("", "", "", dna_scheme)
        assert aln.rows == ("", "", "")


class TestProgressive:
    def test_feasible_alignment(self, dna_scheme, small_triples):
        for triple in small_triples:
            aln = align3_progressive(*triple, dna_scheme)
            assert aln.sequences() == tuple(triple)
            assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)

    def test_never_exceeds_optimum(self, dna_scheme, small_triples):
        for triple in small_triples:
            aln = align3_progressive(*triple, dna_scheme)
            opt = score3_dp3d(*triple, dna_scheme)
            assert aln.score <= opt + 1e-9, triple

    def test_seed_pair_is_closest(self, dna_scheme):
        aln = align3_progressive("ACGTACGT", "ACGTACGA", "TTTTTTTT", dna_scheme)
        assert tuple(sorted(aln.meta["seed_pair"])) == (0, 1)

    def test_optimal_on_identical_sequences(self, dna_scheme):
        s = "GATTACA"
        aln = align3_progressive(s, s, s, dna_scheme)
        assert aln.score == pytest.approx(score3_dp3d(s, s, s, dna_scheme))


class TestOptimalityGapTrend:
    def test_gap_grows_with_divergence(self, dna_scheme):
        # Averaged over a few trials, the heuristic gap at high divergence
        # should be at least the gap at low divergence.
        def mean_gap(scale):
            total = 0.0
            for trial in range(4):
                fam = mutated_family(
                    25, model=MutationModel().scaled(scale), seed=trial * 31
                )
                opt = score3_dp3d(*fam, dna_scheme)
                heur = max(
                    align3_centerstar(*fam, dna_scheme).score,
                    align3_progressive(*fam, dna_scheme).score,
                )
                total += opt - heur
            return total / 4

        assert mean_gap(4.0) >= mean_gap(0.25) - 1e-9


class TestCenterStarAffine:
    def test_affine_lower_bound(self, affine_dna_scheme, family_small):
        from repro.core.affine import score3_affine

        aln = align3_centerstar(*family_small, affine_dna_scheme)
        exact = score3_affine(*family_small, affine_dna_scheme)
        assert aln.score <= exact + 1e-9

    def test_affine_score_matches_scorer(self, affine_dna_scheme, family_small):
        aln = align3_centerstar(*family_small, affine_dna_scheme)
        recomputed = affine_dna_scheme.sp_score_affine_quasinatural(aln.rows)
        assert recomputed == pytest.approx(aln.score)

    def test_affine_sequences_recovered(self, affine_dna_scheme):
        seqs = ("GATTACA", "GAACA", "GATTA")
        aln = align3_centerstar(*seqs, affine_dna_scheme)
        assert aln.sequences() == seqs

    def test_affine_optimal_on_identical(self, affine_dna_scheme):
        from repro.core.affine import score3_affine

        s = "ACGTACGT"
        aln = align3_centerstar(s, s, s, affine_dna_scheme)
        assert aln.score == pytest.approx(
            score3_affine(s, s, s, affine_dna_scheme)
        )
