"""Unit tests for profile-profile alignment and the progressive MSA."""

import numpy as np
import pytest

from repro.core.dp3d import score3_dp3d
from repro.msa.profilealign import align_profiles, column_pair_scores, profile_counts
from repro.msa.progressive import align_msa
from repro.pairwise.nw import score2
from repro.seqio.generate import MutationModel, mutated_family


class TestProfileCounts:
    def test_counts_and_gaps(self, dna_scheme):
        counts, gaps = profile_counts(("AC-", "A-G"), dna_scheme)
        assert counts.shape == (3, dna_scheme.alphabet.size)
        assert counts[0].sum() == 2 and gaps[0] == 0
        assert counts[1].sum() == 1 and gaps[1] == 1

    def test_unequal_rows_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="unequal"):
            profile_counts(("AC", "A"), dna_scheme)

    def test_empty_profile_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="at least one"):
            profile_counts((), dna_scheme)


class TestColumnPairScores:
    def test_single_rows_match_pair_score(self, dna_scheme):
        cp, gp = profile_counts(("AC",), dna_scheme)
        cq, gq = profile_counts(("AG",), dna_scheme)
        S = column_pair_scores(cp, gp, cq, gq, dna_scheme)
        assert S[0, 0] == pytest.approx(dna_scheme.pair_score("A", "A"))
        assert S[1, 1] == pytest.approx(dna_scheme.pair_score("C", "G"))

    def test_gap_column_contribution(self, dna_scheme):
        cp, gp = profile_counts(("A-",), dna_scheme)
        cq, gq = profile_counts(("AA",), dna_scheme)
        S = column_pair_scores(cp, gp, cq, gq, dna_scheme)
        # P column 1 is a gap: pairing with Q's residue costs gap.
        assert S[1, 0] == pytest.approx(dna_scheme.gap)


class TestAlignProfiles:
    def test_two_singletons_equal_pairwise_nw(self, dna_scheme):
        merged, score = align_profiles(("GATTACA",), ("GATCA",), dna_scheme)
        assert score == pytest.approx(score2("GATTACA", "GATCA", dna_scheme))
        assert merged[0].replace("-", "") == "GATTACA"
        assert merged[1].replace("-", "") == "GATCA"

    def test_merged_depth(self, dna_scheme):
        merged, _ = align_profiles(("AC", "AG"), ("AT",), dna_scheme)
        assert len(merged) == 3
        assert len({len(r) for r in merged}) == 1

    def test_existing_columns_preserved(self, dna_scheme):
        # Profile-internal gap structure is frozen: stripping the third row
        # must reproduce P's original alignment (once-a-gap-always-a-gap).
        rows_p = ("AC-G", "A-TG")
        merged, _ = align_profiles(rows_p, ("ACTG",), dna_scheme)
        restored = [
            "".join(
                merged[r][c]
                for c in range(len(merged[0]))
                if not all(merged[i][c] == "-" for i in (0, 1))
            )
            for r in (0, 1)
        ]
        assert tuple(restored) == rows_p

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            align_profiles(("A",), ("A",), dna_scheme.with_gaps(-1, -1))


class TestAlignMsa:
    def test_two_sequences(self, dna_scheme):
        msa = align_msa(["GATTACA", "GATCA"], dna_scheme)
        assert msa.meta["engine"] == "pairwise"
        assert msa.sequences() == ("GATTACA", "GATCA")

    def test_five_sequences_roundtrip(self, dna_scheme):
        fam = mutated_family(30, count=5, seed=5)
        msa = align_msa(fam, dna_scheme)
        assert msa.sequences() == tuple(fam)
        assert msa.depth == 5
        assert "tree" in msa.meta

    def test_row_order_preserved(self, dna_scheme):
        # Shuffle-resistant: row i must correspond to input i even though
        # the guide tree merges in similarity order.
        seqs = ["TTTTTTTT", "ACGTACGT", "ACGTACGA", "TTTTTTTA"]
        msa = align_msa(seqs, dna_scheme)
        assert msa.sequences() == tuple(seqs)

    def test_exact_triples_at_least_as_good(self, dna_scheme):
        for seed in (1, 2, 3):
            fam = mutated_family(
                20, model=MutationModel(0.3, 0.08, 0.08), seed=seed
            )
            exact = align_msa(fam, dna_scheme, exact_triples=True)
            prog = align_msa(fam, dna_scheme)
            assert prog.sp_score(dna_scheme) <= exact.sp_score(dna_scheme) + 1e-9
            assert exact.sp_score(dna_scheme) == pytest.approx(
                score3_dp3d(*fam, dna_scheme)
            )

    def test_custom_names(self, dna_scheme):
        msa = align_msa(["AC", "AG"], dna_scheme, names=["x", "y"])
        assert msa.names == ("x", "y")

    def test_validation(self, dna_scheme):
        with pytest.raises(ValueError, match="at least two"):
            align_msa(["AC"], dna_scheme)
        with pytest.raises(ValueError, match="mismatch"):
            align_msa(["AC", "AG"], dna_scheme, names=["x"])
        with pytest.raises(ValueError, match="linear"):
            align_msa(["AC", "AG"], dna_scheme.with_gaps(-1, -1))

    def test_wrong_tree_rejected(self, dna_scheme):
        from repro.msa.guidetree import upgma

        tree = upgma(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="leaves"):
            align_msa(["AC", "AG", "AT"], dna_scheme, tree=tree)

    def test_identical_family_aligns_gapless(self, dna_scheme):
        msa = align_msa(["ACGTACGT"] * 4, dna_scheme)
        assert all(row == "ACGTACGT" for row in msa.rows)
