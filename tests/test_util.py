"""Unit tests for repro.util (timing, tables, validation)."""

import time

import pytest

from repro.util.tables import Table, format_series, format_table
from repro.util.timing import (
    RepeatStats,
    Timer,
    format_seconds,
    repeat_min,
    repeat_stats,
)
from repro.util.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_sequences,
    check_type,
    ensure_distinct,
)


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_manual_start_stop(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed >= 0.004
        assert t.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="without a matching start"):
            Timer().stop()

    def test_stop_twice_raises(self):
        t = Timer()
        t.start()
        t.stop()
        with pytest.raises(RuntimeError):
            t.stop()

    def test_stop_after_context_exit_raises(self):
        with Timer() as t:
            pass
        with pytest.raises(RuntimeError):
            t.stop()

    def test_exit_after_stop_inside_block_raises_runtime_error(self):
        # stop() inside the with block consumes _start; __exit__ must
        # raise the same descriptive RuntimeError, not a bare TypeError
        # from `float - None`.
        with pytest.raises(RuntimeError, match="without a matching start"):
            with Timer() as t:
                t.stop()


class TestRepeatMin:
    def test_returns_min_and_result(self):
        calls = []

        def fn():
            calls.append(1)
            return 42

        best, result = repeat_min(fn, repeats=3)
        assert result == 42
        assert len(calls) == 3
        assert best >= 0

    def test_warmup_not_timed(self):
        calls = []
        repeat_min(lambda: calls.append(1), repeats=2, warmup=2)
        assert len(calls) == 4

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            repeat_min(lambda: None, repeats=0)


class TestRepeatStats:
    def test_fields_consistent(self):
        stats, result = repeat_stats(lambda: "r", repeats=5)
        assert isinstance(stats, RepeatStats)
        assert result == "r"
        assert stats.repeats == 5
        assert stats.min <= stats.median
        assert stats.min <= stats.mean
        assert stats.stdev >= 0.0

    def test_single_repeat_has_zero_stdev(self):
        stats, _ = repeat_stats(lambda: None, repeats=1)
        assert stats.stdev == 0.0
        assert stats.min == stats.median == stats.mean

    def test_repeat_min_matches_stats_min(self):
        calls = []
        best, _ = repeat_min(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert best >= 0.0


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0123) == "12.30 ms"
        assert format_seconds(4.56e-5) == "45.60 us"
        assert format_seconds(7.8e-9) == "7.8 ns"

    def test_nan(self):
        assert format_seconds(float("nan")) == "nan"

    def test_negative_durations_format_magnitude_with_sign(self):
        # Negative values used to fall through every >= threshold into
        # the ns branch (-0.5 -> "-500000000.0 ns").
        assert format_seconds(-0.5) == "-500.00 ms"
        assert format_seconds(-2.5) == "-2.500 s"
        assert format_seconds(-4.56e-5) == "-45.60 us"
        assert format_seconds(-7.8e-9) == "-7.8 ns"

    def test_zero(self):
        assert format_seconds(0.0) == "0.0 ns"


class TestTables:
    def test_table_roundtrip(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        text = t.render()
        assert "demo" in text and "2.5" in text

    def test_row_arity_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row(1)

    def test_csv(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        assert t.to_csv() == "a,b\n1,2\n"

    def test_format_table_alignment(self):
        text = format_table("t", ["col"], [[123456]])
        lines = text.splitlines()
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all box lines equal width

    def test_format_series(self):
        text = format_series("fig", "x", [1, 2], {"y1": [10, 20], "y2": [3, 4]})
        assert "y1" in text and "y2" in text and "20" in text

    def test_float_rendering(self):
        t = Table("demo", ["v"])
        t.add_row(1.23456e-9)
        assert "e-09" in t.render()
        t2 = Table("demo", ["v"])
        t2.add_row(float("nan"))
        assert "nan" in t2.render()


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 2, 0, 1)

    def test_check_type(self):
        check_type("x", 1, int)
        with pytest.raises(TypeError, match="must be int"):
            check_type("x", "s", int)

    def test_check_type_union(self):
        check_type("x", 1.5, (int, float))
        with pytest.raises(TypeError, match="int | float"):
            check_type("x", "s", (int, float))

    def test_check_sequences(self):
        check_sequences(["a", "b"], count=2)
        with pytest.raises(ValueError, match="expected 3"):
            check_sequences(["a"], count=3)
        with pytest.raises(TypeError, match="must be str"):
            check_sequences(["a", 1])  # type: ignore[list-item]

    def test_ensure_distinct(self):
        ensure_distinct(["a", "b"])
        with pytest.raises(ValueError, match="duplicate"):
            ensure_distinct(["a", "a"])
