"""Unit tests for the 3-D Hirschberg engine (repro.core.hirschberg)."""

import pytest

from repro.core.dp3d import score3_dp3d
from repro.core.hirschberg import (
    DEFAULT_BASE_CELLS,
    align3_hirschberg,
    memory_estimate_bytes,
)


class TestOptimality:
    def test_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            aln = align3_hirschberg(*triple, dna_scheme, base_cells=30)
            expected = score3_dp3d(*triple, dna_scheme)
            assert aln.score == pytest.approx(expected), triple
            assert dna_scheme.sp_score(aln.rows) == pytest.approx(aln.score)
            assert aln.sequences() == tuple(triple)

    def test_medium_family_forced_recursion(self, family_medium, dna_scheme):
        aln = align3_hirschberg(*family_medium, dna_scheme, base_cells=500)
        expected = score3_dp3d(*family_medium, dna_scheme)
        assert aln.score == pytest.approx(expected)
        assert aln.meta["slab_sweeps"] >= 2

    @pytest.mark.parametrize("engine", ["wavefront", "slab"])
    def test_both_slab_backends(self, engine, family_small, dna_scheme):
        aln = align3_hirschberg(
            *family_small, dna_scheme, base_cells=100, engine=engine
        )
        assert aln.score == pytest.approx(score3_dp3d(*family_small, dna_scheme))

    def test_unbalanced_lengths(self, dna_scheme):
        # Longest sequence must be rotated to the split axis.
        sa, sb, sc = "AC", "GATTACAGATTACAGATTACA", "GAT"
        aln = align3_hirschberg(sa, sb, sc, dna_scheme, base_cells=60)
        assert aln.score == pytest.approx(score3_dp3d(sa, sb, sc, dna_scheme))
        assert aln.sequences() == (sa, sb, sc)

    def test_one_empty_sequence(self, dna_scheme):
        aln = align3_hirschberg(
            "GATTACAGATTACA", "GATCAGGTACA", "", dna_scheme, base_cells=40
        )
        expected = score3_dp3d("GATTACAGATTACA", "GATCAGGTACA", "", dna_scheme)
        assert aln.score == pytest.approx(expected)


class TestGuards:
    def test_base_cells_validated(self, dna_scheme):
        with pytest.raises(ValueError, match="base_cells"):
            align3_hirschberg("A", "A", "A", dna_scheme, base_cells=1)

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            align3_hirschberg(
                "A", "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-1)
            )

    def test_small_problem_uses_base_case_directly(self, dna_scheme):
        aln = align3_hirschberg("AC", "AG", "AT", dna_scheme)
        assert aln.meta["slab_sweeps"] == 0
        assert aln.meta["base_calls"] == 1


class TestMeta:
    def test_splits_recorded(self, family_medium, dna_scheme):
        aln = align3_hirschberg(*family_medium, dna_scheme, base_cells=500)
        assert len(aln.meta["splits"]) == aln.meta["slab_sweeps"] // 2

    def test_engine_name(self, dna_scheme):
        aln = align3_hirschberg("AC", "AG", "AT", dna_scheme)
        assert aln.meta["engine"] == "hirschberg"


class TestMemoryEstimate:
    def test_scales_quadratically_not_cubically(self):
        m100 = memory_estimate_bytes(100, 100, 100)
        m200 = memory_estimate_bytes(200, 200, 200)
        # Doubling n should roughly 4x the variable part, not 8x; with the
        # constant base-case term the ratio stays well under 8.
        assert m200 / m100 < 5

    def test_smaller_than_full_cube_at_scale(self):
        n = 300
        full = (n + 1) ** 3 * 9
        assert memory_estimate_bytes(n, n, n) < full / 10

    def test_default_base_cells_reasonable(self):
        assert 10_000 <= DEFAULT_BASE_CELLS <= 10_000_000
