"""Property-based tests for the cluster substrate (grids, simulation)."""

from hypothesis import given, settings, strategies as st

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.machine import MachineModel
from repro.cluster.memory import per_rank_memory
from repro.cluster.simulate import simulate_wavefront

dims = st.tuples(
    st.integers(1, 40), st.integers(1, 40), st.integers(1, 40)
)
blocks = st.tuples(
    st.integers(1, 12), st.integers(1, 12), st.integers(1, 12)
)

COMMON = dict(deadline=None, max_examples=30)


@settings(**COMMON)
@given(dims, blocks)
def test_blocks_partition_lattice(d, b):
    grid = BlockGrid(dims=d, block=b)
    blks = list(grid.blocks())
    assert len(blks) == grid.n_blocks
    assert len(set(blks)) == len(blks)
    assert sum(grid.block_cells(x) for x in blks) == grid.total_cells()


@settings(**COMMON)
@given(dims, blocks)
def test_wavefront_order_and_backward_edges(d, b):
    grid = BlockGrid(dims=d, block=b)
    planes = [sum(x) for x in grid.blocks()]
    assert planes == sorted(planes)
    for blk in grid.blocks():
        for src, payload in grid.dependencies(blk):
            assert sum(src) < sum(blk)
            assert payload >= 1


@settings(**COMMON)
@given(dims, blocks, st.integers(1, 12))
def test_simulation_invariants(d, b, procs):
    grid = BlockGrid(dims=d, block=b)
    machine = MachineModel(procs=procs)
    r = simulate_wavefront(grid, machine)
    assert 0 < r.speedup <= procs + 1e-9
    assert 0 < r.efficiency <= 1 + 1e-9
    assert r.makespan >= r.serial_time / procs - 1e-12
    assert sum(r.busy_time) <= r.serial_time + 1e-9
    assert abs(sum(r.busy_time) - r.serial_time) < 1e-9
    assert r.blocks == grid.n_blocks
    if procs == 1:
        assert r.messages == 0


@settings(**COMMON)
@given(dims, st.integers(1, 8))
def test_memory_modes_and_partition(d, procs):
    grid = BlockGrid(dims=d, block=(4, 4, 4))
    full = per_rank_memory(grid, procs, mode="full")
    so = per_rank_memory(grid, procs, mode="score_only")
    assert len(full.per_rank) == procs
    assert all(x >= 0 for x in full.per_rank)
    # Full mode stores at least the whole cube across ranks.
    assert sum(full.per_rank) >= grid.total_cells() * 9
    # Score-only never exceeds full for the constrained rank (+ slack for
    # degenerate tiny grids where plane buffers dominate).
    if grid.total_cells() > 4096:
        assert so.max_rank <= full.max_rank


@settings(**COMMON)
@given(dims, st.integers(1, 8), st.sampled_from(["pencil", "linear", "slab"]))
def test_owner_total_coverage(d, procs, mapping):
    grid = BlockGrid(dims=d, block=(3, 5, 2))
    owners = {grid.owner(b, procs, mapping) for b in grid.blocks()}
    assert owners <= set(range(procs))
