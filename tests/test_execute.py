"""Unit tests for the blocked executor (repro.cluster.execute).

These tie the timing simulator to a functional execution: same grid, same
mapping, same communication ledger — and the blocked computation must
reproduce the monolithic engines' optimum exactly.
"""

import pytest

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.execute import execute_blocked
from repro.cluster.machine import MachineModel
from repro.cluster.simulate import simulate_wavefront
from repro.core.dp3d import score3_dp3d
from repro.seqio.generate import mutated_family, random_sequence


class TestCorrectness:
    def test_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            res = execute_blocked(*triple, dna_scheme, block=3, procs=3)
            assert res.score == pytest.approx(
                score3_dp3d(*triple, dna_scheme)
            ), triple

    @pytest.mark.parametrize("block", [2, 5, 8, 100])
    def test_block_size_irrelevant_to_result(self, block, dna_scheme):
        fam = mutated_family(20, seed=17)
        res = execute_blocked(*fam, dna_scheme, block=block, procs=4)
        assert res.score == pytest.approx(score3_dp3d(*fam, dna_scheme))

    @pytest.mark.parametrize("mapping", ["pencil", "linear", "slab"])
    def test_mapping_irrelevant_to_result(self, mapping, dna_scheme):
        fam = mutated_family(15, seed=18)
        res = execute_blocked(*fam, dna_scheme, block=4, procs=3, mapping=mapping)
        assert res.score == pytest.approx(score3_dp3d(*fam, dna_scheme))

    def test_uneven_lengths(self, dna_scheme):
        seqs = (
            random_sequence(25, seed=1),
            random_sequence(7, seed=2),
            random_sequence(14, seed=3),
        )
        res = execute_blocked(*seqs, dna_scheme, block=(8, 3, 5), procs=5)
        assert res.score == pytest.approx(score3_dp3d(*seqs, dna_scheme))

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            execute_blocked("A", "A", "A", dna_scheme.with_gaps(-1, -1))


class TestLedgerMatchesSimulator:
    @pytest.mark.parametrize("procs", [1, 2, 5])
    @pytest.mark.parametrize("mapping", ["pencil", "linear"])
    def test_messages_and_bytes_match(self, procs, mapping, dna_scheme):
        fam = mutated_family(20, seed=19)
        n1, n2, n3 = (len(s) for s in fam)
        res = execute_blocked(
            *fam, dna_scheme, block=6, procs=procs, mapping=mapping
        )
        grid = BlockGrid.for_sequences(n1, n2, n3, 6)
        sim = simulate_wavefront(
            grid, MachineModel(procs=procs), mapping=mapping
        )
        assert res.messages == sim.messages
        assert res.comm_bytes == sim.comm_volume_bytes
        assert res.blocks == sim.blocks

    def test_single_proc_no_messages(self, dna_scheme, family_small):
        res = execute_blocked(*family_small, dna_scheme, block=5, procs=1)
        assert res.messages == 0
        assert res.comm_bytes == 0

    def test_work_partition(self, dna_scheme, family_small):
        res = execute_blocked(*family_small, dna_scheme, block=5, procs=3)
        total = sum(res.per_proc_cells)
        n1, n2, n3 = (len(s) for s in family_small)
        assert total == (n1 + 1) * (n2 + 1) * (n3 + 1)
