"""Property-based tests for the pairwise substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.scoring import default_scheme_for
from repro.pairwise.gotoh import score2_affine
from repro.pairwise.hirschberg2 import align2_linear_space
from repro.pairwise.matrices2d import through_matrix
from repro.pairwise.nw import align2, nw_score_last_row, score2, score2_matrixfree
from repro.seqio.alphabet import DNA
from tests.reference.bruteforce import memo_optimal_pairwise

SCHEME = default_scheme_for(DNA)
AFFINE = SCHEME.with_gaps(gap=-2.0, gap_open=-9.0)

dna_seq = st.text(alphabet="ACGT", min_size=0, max_size=14)

COMMON = dict(deadline=None, max_examples=50)


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_vectorised_row_matches_oracle(sx, sy):
    got = float(nw_score_last_row(sx, sy, SCHEME)[-1])
    assert abs(got - memo_optimal_pairwise(sx, sy, SCHEME)) < 1e-9


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_scalar_and_vector_fills_agree(sx, sy):
    assert abs(
        score2_matrixfree(sx, sy, SCHEME) - score2(sx, sy, SCHEME)
    ) < 1e-9


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_symmetry(sx, sy):
    assert abs(score2(sx, sy, SCHEME) - score2(sy, sx, SCHEME)) < 1e-9


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_alignment_consistency(sx, sy):
    aln = align2(sx, sy, SCHEME)
    assert aln.sequences() == (sx, sy)
    assert abs(aln.score_with(SCHEME) - aln.score) < 1e-9
    assert abs(aln.score - score2(sx, sy, SCHEME)) < 1e-9


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_linear_space_equals_full_matrix(sx, sy):
    aln = align2_linear_space(sx, sy, SCHEME)
    assert abs(aln.score - score2(sx, sy, SCHEME)) < 1e-9
    assert aln.sequences() == (sx, sy)


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_through_matrix_bracket(sx, sy):
    T = through_matrix(sx, sy, SCHEME)
    opt = score2(sx, sy, SCHEME)
    assert abs(T.max() - opt) < 1e-9
    assert (T <= opt + 1e-9).all()


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_affine_never_beats_linear_with_same_extend(sx, sy):
    """gap_open <= 0 only removes score relative to the linear model with
    the same per-column gap cost."""
    lin = SCHEME.with_gaps(gap=AFFINE.gap)
    assert score2_affine(sx, sy, AFFINE) <= score2(sx, sy, lin) + 1e-9


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_affine_zero_open_equals_linear(sx, sy):
    zero = SCHEME.with_gaps(gap=-3.0, gap_open=0.0)
    lin = SCHEME.with_gaps(gap=-3.0)
    assert abs(score2_affine(sx, sy, zero) - score2(sx, sy, lin)) < 1e-9


@settings(**COMMON)
@given(dna_seq)
def test_self_alignment_is_perfect(s):
    expected = sum(SCHEME.pair_score(c, c) for c in s)
    assert abs(score2(s, s, SCHEME) - expected) < 1e-9


@settings(**COMMON)
@given(dna_seq, dna_seq, dna_seq)
def test_concatenation_superadditivity(sa, sb, sx):
    """Aligning concatenations can only do as well or better than the sum of
    the parts (the concatenated optimal alignments are feasible)."""
    whole = score2(sa + sx, sb + sx, SCHEME)
    parts = score2(sa, sb, SCHEME) + score2(sx, sx, SCHEME)
    assert whole >= parts - 1e-9
