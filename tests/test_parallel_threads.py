"""Unit tests for the thread-pool engine."""

import pytest

from repro.core.dp3d import score3_dp3d
from repro.parallel.threads import align3_threads, score3_threads


class TestScores:
    def test_matches_reference_small(self, dna_scheme, small_triples):
        for triple in small_triples:
            got = score3_threads(*triple, dna_scheme, workers=2)
            assert got == pytest.approx(score3_dp3d(*triple, dna_scheme)), triple

    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    def test_worker_counts(self, workers, dna_scheme, family_small):
        got = score3_threads(*family_small, dna_scheme, workers=workers)
        assert got == pytest.approx(score3_dp3d(*family_small, dna_scheme))

    def test_workers_validated(self, dna_scheme):
        with pytest.raises(ValueError):
            score3_threads("A", "A", "A", dna_scheme, workers=-1)

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            score3_threads(
                "A", "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-1)
            )


class TestAlignment:
    def test_alignment_optimal(self, dna_scheme, family_small):
        aln = align3_threads(*family_small, dna_scheme, workers=2)
        expected = score3_dp3d(*family_small, dna_scheme)
        assert aln.score == pytest.approx(expected)
        assert aln.sequences() == tuple(family_small)

    def test_bit_identical_to_serial_engine(self, dna_scheme, family_medium):
        from repro.core.wavefront import align3_wavefront

        par = align3_threads(*family_medium, dna_scheme, workers=3)
        ser = align3_wavefront(*family_medium, dna_scheme)
        assert par.rows == ser.rows
        assert par.score == ser.score

    def test_deterministic(self, dna_scheme, family_small):
        a = align3_threads(*family_small, dna_scheme, workers=4)
        b = align3_threads(*family_small, dna_scheme, workers=4)
        assert a.rows == b.rows
