"""Unit tests for per-rank memory accounting (repro.cluster.memory)."""

import pytest

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.memory import (
    FULL_CELL_BYTES,
    MemoryProfile,
    max_length_for_budget,
    per_rank_memory,
)


@pytest.fixture
def grid():
    return BlockGrid.for_sequences(60, 60, 60, 16)


class TestPerRankMemory:
    def test_single_rank_full_holds_whole_cube(self, grid):
        prof = per_rank_memory(grid, 1, mode="full")
        assert prof.per_rank[0] == grid.total_cells() * FULL_CELL_BYTES
        assert prof.imbalance == pytest.approx(1.0)

    def test_full_memory_splits_across_ranks(self, grid):
        p1 = per_rank_memory(grid, 1, mode="full").max_rank
        p8 = per_rank_memory(grid, 8, mode="full").max_rank
        assert p8 < p1
        assert p8 >= p1 / 8  # ghosts make it strictly super-ideal

    def test_score_only_much_smaller_than_full(self, grid):
        full = per_rank_memory(grid, 4, mode="full").max_rank
        so = per_rank_memory(grid, 4, mode="score_only").max_rank
        assert so < full / 5

    def test_owned_cells_partition(self, grid):
        prof = per_rank_memory(grid, 8, mode="full")
        ghost_free = sum(prof.per_rank)
        # Sum of owned cells (9 B each) plus ghosts >= the whole cube.
        assert ghost_free >= grid.total_cells() * FULL_CELL_BYTES

    def test_mode_validated(self, grid):
        with pytest.raises(ValueError, match="unknown mode"):
            per_rank_memory(grid, 2, mode="bogus")

    def test_procs_validated(self, grid):
        with pytest.raises(ValueError):
            per_rank_memory(grid, 0)

    def test_profile_properties(self):
        prof = MemoryProfile(per_rank=[10, 20, 30], mode="full")
        assert prof.max_rank == 30
        assert prof.mean_rank == pytest.approx(20.0)
        assert prof.imbalance == pytest.approx(1.5)

    def test_empty_profile(self):
        prof = MemoryProfile(per_rank=[], mode="full")
        assert prof.max_rank == 0
        assert prof.mean_rank == 0.0
        assert prof.imbalance == 0.0


class TestMaxLengthForBudget:
    def test_more_ranks_allow_longer_sequences(self):
        budget = 8 * 2**20
        n1 = max_length_for_budget(budget, 1, mode="full", max_n=256)
        n16 = max_length_for_budget(budget, 16, mode="full", max_n=256)
        assert n16 > n1

    def test_score_only_allows_much_longer(self):
        budget = 2 * 2**20
        nf = max_length_for_budget(budget, 1, mode="full", max_n=256)
        ns = max_length_for_budget(budget, 1, mode="score_only", max_n=256)
        assert ns > nf

    def test_budget_monotone(self):
        small = max_length_for_budget(1 * 2**20, 4, mode="full", max_n=256)
        large = max_length_for_budget(16 * 2**20, 4, mode="full", max_n=256)
        assert large >= small

    def test_cap_respected(self):
        n = max_length_for_budget(1 << 60, 4, mode="score_only", max_n=64)
        assert n == 64

    def test_tiny_budget(self):
        assert max_length_for_budget(1, 1, max_n=32) == 0

    def test_result_actually_fits(self):
        budget = 4 * 2**20
        n = max_length_for_budget(budget, 2, mode="full", max_n=256)
        grid = BlockGrid.for_sequences(n, n, n, 16)
        assert per_rank_memory(grid, 2, mode="full").max_rank <= budget
        grid1 = BlockGrid.for_sequences(n + 1, n + 1, n + 1, 16)
        assert per_rank_memory(grid1, 2, mode="full").max_rank > budget

    def test_validation(self):
        with pytest.raises(ValueError):
            max_length_for_budget(0, 1)
        with pytest.raises(ValueError):
            max_length_for_budget(100, 1, max_n=0)
