"""Tests for the observability layer (repro.obs)."""

import json
import os

import pytest

from repro.core.scoring import default_scheme_for
from repro.core.wavefront import align3_wavefront
from repro.obs import hooks, metrics, trace
from repro.obs.report import render_metrics, render_report
from repro.obs.trace import TraceRecorder, read_trace
from repro.parallel.shared import align3_shared, fork_available
from repro.seqio.alphabet import DNA
from repro.seqio.generate import mutated_family


@pytest.fixture
def tracing(tmp_path):
    """Install a recorder for the duration of one test, yielding its path."""
    path = tmp_path / "trace.jsonl"
    recorder = TraceRecorder(path)
    trace.install(recorder)
    try:
        yield path
    finally:
        trace.uninstall()
        recorder.close()


class TestSpans:
    def test_noop_when_disabled(self, tmp_path):
        assert not trace.enabled
        with trace.span("anything") as s:
            pass
        # The shared null span: no sid, no record, no recorder needed.
        assert not hasattr(s, "sid")

    def test_nesting_links_parent_sid(self, tracing):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        trace.flush()
        spans = {r["name"]: r for r in read_trace(tracing)}
        assert spans["inner"]["parent"] == spans["outer"]["sid"]
        assert spans["outer"]["parent"] is None
        # The inner span closes first and nests inside the outer window.
        assert spans["outer"]["t0"] <= spans["inner"]["t0"]
        assert spans["inner"]["t1"] <= spans["outer"]["t1"]

    def test_attributes_recorded(self, tracing):
        with trace.span("work", method="wavefront", n=3):
            pass
        trace.flush()
        (rec,) = read_trace(tracing)
        assert rec["method"] == "wavefront" and rec["n"] == 3

    def test_stack_unwinds_on_exception(self, tracing):
        with pytest.raises(RuntimeError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise RuntimeError("boom")
        # A fresh span after the exception must be parentless again.
        with trace.span("after"):
            pass
        trace.flush()
        spans = {r["name"]: r for r in read_trace(tracing)}
        assert spans["after"]["parent"] is None

    def test_event_record(self, tracing):
        trace.event("marker", stage=2)
        trace.flush()
        (rec,) = read_trace(tracing)
        assert rec["type"] == "event" and rec["stage"] == 2


class TestRecorder:
    def test_truncated_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type":"event","name":"ok","pid":1,"t":0}\n{"trunc')
        records = read_trace(path)
        assert len(records) == 1 and records[0]["name"] == "ok"

    def test_flush_before_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as rec:
            rec.emit({"type": "event", "name": "x", "pid": 0, "t": 0})
            # Below the auto-flush threshold: nothing on disk yet.
            assert path.read_text() == ""
        assert len(read_trace(path)) == 1

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_forked_workers_merge_into_one_file(self, tracing, dna_scheme):
        seqs = mutated_family(18, seed=5)
        aln = align3_shared(*seqs, dna_scheme, workers=3)
        trace.flush()
        records = read_trace(tracing)
        pids = {r["pid"] for r in records}
        assert len(pids) >= 2  # parent plus at least one forked child
        workers = [r for r in records if r["type"] == "worker"]
        assert {w["worker"] for w in workers} == {0, 1, 2}
        # Every line parsed back cleanly (no interleaved partial writes).
        raw = [ln for ln in tracing.read_text().splitlines() if ln]
        assert len(raw) == len(records)
        for ln in raw:
            json.loads(ln)
        assert aln.score == pytest.approx(
            align3_wavefront(*seqs, dna_scheme).score
        )


class TestHistogram:
    def test_bucketing_edges(self):
        h = metrics.Histogram(bounds=(1.0, 10.0, 100.0))
        h.observe(0.5)  # below first edge -> bucket 0
        h.observe(1.0)  # exactly on an edge -> inclusive, bucket 0
        h.observe(1.5)  # first bucket above edge 1 -> bucket 1
        h.observe(10.0)  # inclusive again -> bucket 1
        h.observe(100.0)  # last bounded bucket
        h.observe(101.0)  # overflow
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5 and h.max == 101.0
        assert h.mean == pytest.approx((0.5 + 1 + 1.5 + 10 + 100 + 101) / 6)

    def test_empty_snapshot(self):
        snap = metrics.Histogram().snapshot()
        assert snap["count"] == 0 and snap["min"] == 0.0 and snap["max"] == 0.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="sorted"):
            metrics.Histogram(bounds=(10.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            metrics.Histogram(bounds=())


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc(2)
        reg.counter("c").inc()
        reg.gauge("g").set(5)
        reg.gauge("g").max_update(3)  # lower value does not win
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.0
        assert snap["gauges"]["g"] == 5.0

    def test_summary_flattens_histograms(self):
        reg = metrics.MetricsRegistry()
        reg.histogram("h").observe(4)
        reg.histogram("h").observe(6)
        s = reg.summary()
        assert s["h_count"] == 2.0
        assert s["h_mean"] == pytest.approx(5.0)
        assert s["h_max"] == 6.0

    def test_collect_restores_prior_state(self):
        assert not metrics.enabled
        with metrics.collect() as outer:
            outer.counter("n").inc()
            with metrics.collect() as inner:
                inner.counter("n").inc(10)
            # Inner block did not leak into the outer registry...
            assert outer.counter("n").value == 1.0
            # ...and the outer registry is active again.
            assert metrics.registry() is outer
        assert not metrics.enabled


class TestEngineIntegration:
    def test_disabled_observability_is_bit_identical(self, dna_scheme, tmp_path):
        seqs = mutated_family(16, seed=11)
        plain = align3_wavefront(*seqs, dna_scheme)

        recorder = TraceRecorder(tmp_path / "t.jsonl")
        trace.install(recorder)
        try:
            with metrics.collect():
                traced = align3_wavefront(*seqs, dna_scheme)
        finally:
            trace.uninstall()
            recorder.close()
        after = align3_wavefront(*seqs, dna_scheme)

        assert traced.rows == plain.rows and traced.score == plain.score
        assert after.rows == plain.rows and after.score == plain.score

    def test_sweep_metrics_collected(self, dna_scheme):
        seqs = mutated_family(14, seed=3)
        with metrics.collect() as reg:
            align3_wavefront(*seqs, dna_scheme)
        s = reg.summary()
        n1, n2, n3 = (len(x) for x in seqs)
        assert s["cells_computed"] == (n1 + 1) * (n2 + 1) * (n3 + 1)
        assert s["sweeps"] == 1.0
        assert s["cells_per_s"] > 0
        assert s["peak_plane_bytes"] > 0
        assert s["plane_cells_count"] == n1 + n2 + n3 + 1

    def test_hooks_active_tracks_both_flags(self):
        assert not hooks.active()
        with metrics.collect():
            assert hooks.active()
        assert not hooks.active()


class TestReport:
    def _capture(self, tmp_path, dna_scheme):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(path)
        trace.install(recorder)
        try:
            align3_wavefront(*mutated_family(15, seed=2), dna_scheme)
        finally:
            trace.uninstall()
            recorder.close()
        return path

    def test_report_sections(self, tmp_path, dna_scheme):
        path = self._capture(tmp_path, dna_scheme)
        text = render_report(path)
        assert "phases" in text and "wavefront.sweep" in text
        assert "sweeps" in text and "Mcells/s" in text
        assert "planes" in text

    def test_plane_binning(self, tmp_path, dna_scheme):
        path = self._capture(tmp_path, dna_scheme)
        binned = render_report(path, plane_bins=5)
        per_plane = render_report(path, plane_bins=0)
        # 46 planes collapse to at most 5 rows when binned, one row each
        # when not; the unbinned report is strictly longer.
        assert len(per_plane.splitlines()) > len(binned.splitlines())

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "no records" in render_report(path)

    def test_render_metrics(self):
        reg = metrics.MetricsRegistry()
        reg.counter("cells_computed").inc(1000)
        reg.histogram("plane_cells").observe(50)
        text = render_metrics(reg.snapshot())
        assert "cells_computed" in text and "plane_cells" in text
        assert render_metrics(metrics.MetricsRegistry().snapshot()) == (
            "no metrics collected"
        )
