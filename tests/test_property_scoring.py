"""Property-based tests for scoring, alignment containers and the affine
engine's objective."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.affine import affine_reference, score3_affine
from repro.core.scoring import default_scheme_for
from repro.core.types import moves_to_columns
from repro.seqio.alphabet import DNA

SCHEME = default_scheme_for(DNA)
AFFINE = SCHEME.with_gaps(gap=-3.0, gap_open=-7.0)

dna_seq = st.text(alphabet="ACGT", min_size=0, max_size=5)
moves = st.lists(st.integers(1, 7), min_size=0, max_size=12)

COMMON = dict(deadline=None, max_examples=50)


def _rows_from_moves(mv):
    """Build three concrete rows realising an arbitrary move sequence."""
    counts = [sum((m >> b) & 1 for m in mv) for b in range(3)]
    seqs = tuple(("ACGT" * 4)[:c] for c in counts)
    cols = moves_to_columns(mv, *seqs)
    return tuple("".join(c[r] for c in cols) for r in range(3))


@settings(**COMMON)
@given(moves)
def test_sp_score_column_additivity(mv):
    rows = _rows_from_moves(mv)
    total = SCHEME.sp_score(rows)
    by_col = sum(SCHEME.column_score(*col) for col in zip(*rows))
    assert abs(total - by_col) < 1e-9


@settings(**COMMON)
@given(moves)
def test_sp_score_row_permutation_invariance(mv):
    rows = _rows_from_moves(mv)
    base = SCHEME.sp_score(rows)
    assert abs(SCHEME.sp_score((rows[1], rows[0], rows[2])) - base) < 1e-9
    assert abs(SCHEME.sp_score((rows[2], rows[1], rows[0])) - base) < 1e-9


multibit_moves = st.lists(
    st.sampled_from([3, 5, 6, 7]), min_size=0, max_size=12
)


@settings(**COMMON)
@given(multibit_moves)
def test_affine_conventions_agree_without_gapgap_interruptions(mv):
    """When no pair's state passes through 'neither' between two gap
    columns, the natural and quasi-natural scorers agree. A sufficient
    condition: no move leaves any pair fully gapped, i.e. every move has
    at least two bits set (sampled directly to avoid filtering)."""
    rows = _rows_from_moves(mv)
    qn = AFFINE.sp_score_affine_quasinatural(rows)
    nat = AFFINE.sp_score_affine_natural(rows)
    assert abs(qn - nat) < 1e-9


@settings(**COMMON)
@given(moves)
def test_quasinatural_never_above_natural(mv):
    """Quasi-natural charges a superset of the natural convention's gap
    opens (re-opening after interruptions), so with nonpositive gap_open it
    can only score lower or equal."""
    rows = _rows_from_moves(mv)
    qn = AFFINE.sp_score_affine_quasinatural(rows)
    nat = AFFINE.sp_score_affine_natural(rows)
    assert qn <= nat + 1e-9


@settings(**COMMON)
@given(moves)
def test_zero_open_affine_equals_linear(mv):
    rows = _rows_from_moves(mv)
    zero = SCHEME.with_gaps(gap=-3.0, gap_open=0.0)
    assert abs(
        zero.sp_score_affine_quasinatural(rows)
        - SCHEME.with_gaps(gap=-3.0).sp_score(rows)
    ) < 1e-9


@settings(deadline=None, max_examples=15)
@given(dna_seq, dna_seq, dna_seq)
def test_affine_engine_matches_scalar_reference(sa, sb, sc):
    got = score3_affine(sa, sb, sc, AFFINE)
    expected = affine_reference(sa, sb, sc, AFFINE)
    assert abs(got - expected) < 1e-9


@settings(deadline=None, max_examples=15)
@given(dna_seq, dna_seq, dna_seq)
def test_affine_optimum_is_attainable_upper_bound(sa, sb, sc):
    """The affine DP optimum dominates the quasi-natural score of any
    feasible alignment — spot-check with the linear-optimal alignment."""
    from repro.core.wavefront import align3_wavefront

    lin = SCHEME.with_gaps(gap=AFFINE.gap)
    aln = align3_wavefront(sa, sb, sc, lin)
    feasible = AFFINE.sp_score_affine_quasinatural(aln.rows)
    assert score3_affine(sa, sb, sc, AFFINE) >= feasible - 1e-9
