"""Unit tests for co-optimal counting/enumeration (repro.core.countopt)."""

import pytest

from repro.core.countopt import (
    count_optimal,
    enumerate_optimal,
    iter_optimal_moves,
    score_cube,
)
from repro.core.dp3d import dp3d_matrix, score3_dp3d
import numpy as np


class TestScoreCube:
    def test_matches_reference(self, dna_scheme):
        sa, sb, sc = "GAT", "GT", "AT"
        D_ref, _ = dp3d_matrix(sa, sb, sc, dna_scheme)
        D = score_cube(sa, sb, sc, dna_scheme)
        np.testing.assert_allclose(D, D_ref, atol=1e-9)


class TestCount:
    def test_identical_sequences_unique_optimum(self, dna_scheme):
        assert count_optimal("ACGT", "ACGT", "ACGT", dna_scheme) == 1

    def test_empty_input(self, dna_scheme):
        assert count_optimal("", "", "", dna_scheme) == 1

    def test_known_degeneracy(self, dna_scheme):
        # "A" vs "" vs "": the single residue pairs with gaps either way —
        # only one column possible, so exactly one alignment.
        assert count_optimal("A", "", "", dna_scheme) == 1

    def test_symmetric_two_residue_tie(self, dna_scheme):
        # AA vs A vs A: the single A of rows B and C can sit under either
        # A of row A; co-optimal placements multiply.
        n = count_optimal("AA", "A", "A", dna_scheme)
        assert n >= 2

    def test_count_at_least_one(self, dna_scheme, small_triples):
        for triple in small_triples:
            assert count_optimal(*triple, dna_scheme) >= 1, triple

    def test_count_matches_enumeration(self, dna_scheme, small_triples):
        for triple in small_triples:
            if sum(len(s) for s in triple) > 12:
                continue
            n = count_optimal(*triple, dna_scheme)
            alns = enumerate_optimal(*triple, dna_scheme, limit=10_000)
            assert len(alns) == n, triple

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            count_optimal("A", "A", "A", dna_scheme.with_gaps(-1, -1))


class TestEnumerate:
    def test_all_enumerated_are_optimal_and_distinct(self, dna_scheme):
        sa, sb, sc = "GATTA", "GTA", "GAT"
        opt = score3_dp3d(sa, sb, sc, dna_scheme)
        alns = enumerate_optimal(sa, sb, sc, dna_scheme, limit=500)
        assert all(a.score == pytest.approx(opt) for a in alns)
        assert all(a.sequences() == (sa, sb, sc) for a in alns)
        assert len({a.rows for a in alns}) == len(alns)

    def test_limit_respected(self, dna_scheme):
        alns = enumerate_optimal("AAAA", "AA", "AA", dna_scheme, limit=3)
        assert len(alns) <= 3

    def test_limit_validated(self, dna_scheme):
        with pytest.raises(ValueError):
            enumerate_optimal("A", "A", "A", dna_scheme, limit=0)

    def test_deterministic(self, dna_scheme):
        a = enumerate_optimal("GAT", "GT", "AT", dna_scheme, limit=50)
        b = enumerate_optimal("GAT", "GT", "AT", dna_scheme, limit=50)
        assert [x.rows for x in a] == [x.rows for x in b]

    def test_empty_input(self, dna_scheme):
        alns = enumerate_optimal("", "", "", dna_scheme)
        assert len(alns) == 1
        assert alns[0].rows == ("", "", "")

    def test_iter_streams_lazily(self, dna_scheme):
        it = iter_optimal_moves("AAAA", "AA", "AA", dna_scheme)
        first = next(it)
        assert isinstance(first, list)
        assert all(1 <= m <= 7 for m in first)


class TestDegeneracyGrowth:
    def test_repeats_increase_degeneracy(self, dna_scheme):
        small = count_optimal("AA", "A", "A", dna_scheme)
        large = count_optimal("AAAA", "AA", "AA", dna_scheme)
        assert large > small
