"""Unit tests for the batch scheduler and request IO (repro.batch)."""

import json

import pytest

from repro.batch import (
    AlignmentRequest,
    BatchScheduler,
    read_requests,
    requests_from_fasta,
    requests_from_jsonl,
    run_batch,
)
from repro.cache import ResultCache, comparable_meta
from repro.core.api import align3
from repro.seqio.fasta import write_fasta

T1 = ("GATTACA", "GATCA", "GTTACA")
T2 = ("ACGTAC", "ACTAC", "AGTAC")
T1_PERM = (T1[1], T1[0], T1[2])


class TestScheduling:
    def test_results_in_request_order_with_rids(self, dna_scheme):
        reqs = [
            AlignmentRequest(seqs=T1, scheme=dna_scheme, rid="one"),
            AlignmentRequest(seqs=T2, scheme=dna_scheme, rid="two"),
            AlignmentRequest(seqs=T1, scheme=dna_scheme, rid="three"),
        ]
        report = run_batch(reqs, workers=1)
        assert [r.rid for r in report.results] == ["one", "two", "three"]
        assert [r.index for r in report.results] == [0, 1, 2]

    def test_exact_dedup(self, dna_scheme):
        report = run_batch([T1, T1, T1, T2], workers=1)
        assert report.stats.requests == 4
        assert report.stats.computed == 2
        assert report.stats.dedup_hits == 2
        assert report.stats.dedup_ratio == 0.5
        sources = [r.source for r in report.results]
        assert sources == ["computed", "dedup", "dedup", "computed"]
        # duplicates share the score but own their alignment objects
        assert report.results[0].alignment.score == report.results[1].alignment.score
        assert report.results[0].alignment is not report.results[1].alignment

    def test_batch_matches_serial_align3(self, dna_scheme):
        serial = [align3(*t, dna_scheme) for t in (T1, T2)]
        report = run_batch(
            [AlignmentRequest(seqs=t, scheme=dna_scheme) for t in (T1, T2)],
            workers=1,
        )
        for got, want in zip(report.alignments(), serial):
            assert got.rows == want.rows
            assert got.score == want.score

    def test_permutation_reuse_within_batch(self, dna_scheme):
        report = run_batch(
            [
                AlignmentRequest(seqs=T1, scheme=dna_scheme),
                AlignmentRequest(seqs=T1_PERM, scheme=dna_scheme),
            ],
            workers=1,
        )
        assert report.stats.computed == 1
        assert report.stats.permutation_hits == 1
        perm_res = report.results[1]
        assert perm_res.source == "permutation"
        # score-identical by SP symmetry; rows belong to the right seqs
        assert perm_res.alignment.score == report.results[0].alignment.score
        assert perm_res.alignment.sequences() == T1_PERM
        assert perm_res.alignment.meta["permuted_from"] is not None
        assert dna_scheme.sp_score(perm_res.alignment.rows) == pytest.approx(
            perm_res.alignment.score
        )

    def test_cross_batch_memory_reuse(self, dna_scheme):
        cache = ResultCache()
        with BatchScheduler(cache=cache, workers=1) as sched:
            cold = sched.run([AlignmentRequest(seqs=T1, scheme=dna_scheme)])
            warm = sched.run([AlignmentRequest(seqs=T1, scheme=dna_scheme)])
        assert cold.results[0].source == "computed"
        assert warm.results[0].source == "memory_hit"
        assert warm.stats.memory_hits == 1
        # the bit-identity contract for exact hits
        a, b = cold.results[0].alignment, warm.results[0].alignment
        assert a.rows == b.rows
        assert a.score == b.score
        assert comparable_meta(a.meta) == comparable_meta(b.meta)

    def test_cross_batch_permutation_reuse(self, dna_scheme):
        cache = ResultCache()
        with BatchScheduler(cache=cache, workers=1) as sched:
            sched.run([AlignmentRequest(seqs=T1, scheme=dna_scheme)])
            warm = sched.run(
                [AlignmentRequest(seqs=T1_PERM, scheme=dna_scheme)]
            )
        res = warm.results[0]
        assert res.source == "permutation"
        assert res.alignment.sequences() == T1_PERM

    def test_disk_tier_across_schedulers(self, dna_scheme, tmp_path):
        with BatchScheduler(
            cache=ResultCache(cache_dir=tmp_path), workers=1
        ) as sched:
            cold = sched.run([AlignmentRequest(seqs=T1, scheme=dna_scheme)])
        with BatchScheduler(
            cache=ResultCache(cache_dir=tmp_path), workers=1
        ) as sched:
            warm = sched.run([AlignmentRequest(seqs=T1, scheme=dna_scheme)])
        assert warm.results[0].source == "disk_hit"
        assert warm.stats.disk_hits == 1
        a, b = cold.results[0].alignment, warm.results[0].alignment
        assert a.rows == b.rows
        assert a.score == b.score
        assert comparable_meta(a.meta) == comparable_meta(b.meta)

    def test_pool_path_matches_align3(self, dna_scheme):
        report = run_batch(
            [AlignmentRequest(seqs=T1, scheme=dna_scheme)], workers=1
        )
        assert report.stats.pool_jobs == 1
        want = align3(*T1, dna_scheme)
        got = report.results[0].alignment
        assert got.rows == want.rows
        assert got.score == want.score

    def test_degenerate_seqs_bypass_pool(self, dna_scheme):
        report = run_batch(
            [AlignmentRequest(seqs=("", "AC", "GT"), scheme=dna_scheme)],
            workers=1,
        )
        assert report.stats.pool_jobs == 0
        assert report.results[0].alignment.score == align3(
            "", "AC", "GT", dna_scheme
        ).score

    def test_affine_and_serial_methods_bypass_pool(
        self, dna_scheme, affine_dna_scheme
    ):
        report = run_batch(
            [
                AlignmentRequest(seqs=T1, scheme=affine_dna_scheme),
                AlignmentRequest(seqs=T1, scheme=dna_scheme, method="dp3d"),
            ],
            workers=1,
        )
        assert report.stats.pool_jobs == 0
        assert report.stats.computed == 2
        assert report.results[0].alignment.meta["method"] == "affine"
        assert report.results[1].alignment.meta["method"] == "dp3d"

    @pytest.mark.parametrize("mode", ["local", "semiglobal"])
    def test_modes_dispatch(self, mode, dna_scheme):
        report = run_batch(
            [AlignmentRequest(seqs=T1, scheme=dna_scheme, mode=mode)],
            workers=1,
        )
        if mode == "local":
            from repro.core.local import align3_local as ref
        else:
            from repro.core.semiglobal import align3_semiglobal as ref
        want = ref(*T1, dna_scheme)
        got = report.results[0].alignment
        assert got.score == want.score
        assert got.rows == want.rows
        assert got.meta["mode"] == mode

    def test_modes_keyed_separately(self, dna_scheme):
        cache = ResultCache()
        with BatchScheduler(cache=cache, workers=1) as sched:
            report = sched.run(
                [
                    AlignmentRequest(seqs=T1, scheme=dna_scheme, mode=m)
                    for m in ("global", "local", "semiglobal")
                ]
            )
        assert report.stats.computed == 3

    def test_plain_tuples_accepted(self):
        report = run_batch([T1, T1], workers=1)
        assert report.stats.computed == 1
        assert report.stats.dedup_hits == 1

    def test_bad_requests_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="three sequences"):
            run_batch([("A", "C")], workers=1)
        with pytest.raises(ValueError, match="unknown mode"):
            run_batch([AlignmentRequest(seqs=T1, mode="sideways")], workers=1)
        with pytest.raises(ValueError, match="unknown method"):
            run_batch([AlignmentRequest(seqs=T1, method="magic")], workers=1)
        with pytest.raises(ValueError, match="single engine"):
            run_batch(
                [AlignmentRequest(seqs=T1, mode="local", method="dp3d")],
                workers=1,
            )
        with pytest.raises(ValueError):
            BatchScheduler(workers=0)

    def test_pool_reused_and_grown_across_batches(self, dna_scheme):
        with BatchScheduler(workers=1) as sched:
            sched.run([AlignmentRequest(seqs=T2, scheme=dna_scheme)])
            first_pool = sched._pool
            # smaller job: the live pool must be reused, not respawned
            sched.run(
                [AlignmentRequest(seqs=("ACG", "ACG", "AG"), scheme=dna_scheme)]
            )
            assert sched._pool is first_pool
            # larger job: capacity grows, covering both old and new dims
            sched.run([AlignmentRequest(seqs=T1, scheme=dna_scheme)])
            assert all(
                c >= n
                for c, n in zip(sched._pool_capacity, (len(s) for s in T1))
            )
        assert sched._pool is None  # closed by the context manager

    def test_empty_batch(self):
        report = run_batch([], workers=1)
        assert report.results == []
        assert report.stats.requests == 0
        assert report.stats.dedup_ratio == 0.0


class TestRequestIO:
    def test_jsonl_both_schemas(self, tmp_path):
        path = tmp_path / "reqs.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"seqs": list(T1), "id": "x"}),
                    "# comment",
                    "",
                    json.dumps({"a": T2[0], "b": T2[1], "c": T2[2]}),
                    json.dumps({"seqs": list(T1), "mode": "local"}),
                ]
            )
            + "\n"
        )
        reqs = requests_from_jsonl(path)
        assert [r.seqs for r in reqs] == [T1, T2, T1]
        assert reqs[0].rid == "x"
        assert reqs[1].rid == "req4"  # line number, comments counted
        assert reqs[2].mode == "local"

    def test_jsonl_errors(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            requests_from_jsonl(bad)
        bad.write_text('{"seqs": ["A", "C"]}\n')
        with pytest.raises(ValueError, match="three strings"):
            requests_from_jsonl(bad)
        bad.write_text('{"x": 1}\n')
        with pytest.raises(ValueError, match="needs 'seqs'"):
            requests_from_jsonl(bad)

    def test_fasta_triples(self, tmp_path):
        path = tmp_path / "six.fasta"
        write_fasta(
            path,
            [(f"t{i // 3} member{i % 3}", s) for i, s in enumerate(T1 + T2)],
        )
        reqs = requests_from_fasta(path)
        assert [r.seqs for r in reqs] == [T1, T2]
        assert reqs[0].rid == "t0"

    def test_fasta_wrong_count(self, tmp_path):
        path = tmp_path / "four.fasta"
        write_fasta(path, [(f"s{i}", "ACGT") for i in range(4)])
        with pytest.raises(ValueError, match="multiple of three"):
            requests_from_fasta(path)

    def test_read_requests_dispatch(self, tmp_path):
        jpath = tmp_path / "r.jsonl"
        jpath.write_text(json.dumps({"seqs": list(T1)}) + "\n")
        fpath = tmp_path / "r.fasta"
        write_fasta(fpath, [(f"s{i}", s) for i, s in enumerate(T1)])
        assert read_requests(jpath)[0].seqs == T1
        assert read_requests(fpath)[0].seqs == T1

    def test_read_requests_cli_defaults(self, tmp_path):
        jpath = tmp_path / "r.jsonl"
        jpath.write_text(
            json.dumps({"seqs": list(T1)})
            + "\n"
            + json.dumps({"seqs": list(T2), "mode": "local"})
            + "\n"
        )
        reqs = read_requests(jpath, mode="semiglobal")
        # CLI default applies where the line didn't say otherwise
        assert reqs[0].mode == "semiglobal"
        assert reqs[1].mode == "local"


class TestStreaming:
    """run(on_result=...) / run_stream: results emitted as they land."""

    def test_on_result_sees_every_result_with_alignment(self, dna_scheme):
        reqs = [
            AlignmentRequest(seqs=t, scheme=dna_scheme)
            for t in (T1, T1, T2, T1_PERM)
        ]
        seen = []
        with BatchScheduler(cache=ResultCache(), workers=1) as sched:
            report = sched.run(reqs, on_result=seen.append)
        assert sorted(r.index for r in seen) == [0, 1, 2, 3]
        assert all(r.alignment is not None for r in seen)
        # plain run() with a callback still returns intact results
        assert all(r.alignment is not None for r in report.results)
        assert len({id(r) for r in seen}) == 4  # each emitted exactly once

    def test_run_stream_releases_alignments_after_emit(self, dna_scheme):
        serial = {t: align3(*t, dna_scheme) for t in (T1, T2)}
        reqs = [
            AlignmentRequest(seqs=t, scheme=dna_scheme, rid=f"r{i}")
            for i, t in enumerate((T1, T2, T1))
        ]
        emitted = {}
        def emit(res):
            # the alignment is only valid during the callback
            assert res.alignment is not None
            emitted[res.rid] = (
                res.alignment.rows, res.alignment.score, res.source
            )
        with BatchScheduler(cache=ResultCache(), workers=1) as sched:
            report = sched.run_stream(reqs, emit)
        assert set(emitted) == {"r0", "r1", "r2"}
        for i, t in enumerate((T1, T2, T1)):
            rows, score, _source = emitted[f"r{i}"]
            assert rows == serial[t].rows
            assert score == serial[t].score
        # after the run every alignment has been released
        assert all(r.alignment is None for r in report.results)
        assert report.stats.computed == 2
        assert report.stats.dedup_hits == 1

    def test_run_stream_and_buffered_run_agree_on_stats(self, dna_scheme):
        reqs = [
            AlignmentRequest(seqs=t, scheme=dna_scheme)
            for t in (T1, T2, T1, T1_PERM, T2)
        ]
        with BatchScheduler(cache=ResultCache(), workers=1) as sched:
            buffered = sched.run(reqs)
        count = 0
        def emit(_res):
            nonlocal count
            count += 1
        with BatchScheduler(cache=ResultCache(), workers=1) as sched:
            streamed = sched.run_stream(reqs, emit)
        assert count == len(reqs)
        assert streamed.stats.computed == buffered.stats.computed
        assert streamed.stats.dedup_hits == buffered.stats.dedup_hits
        assert (
            streamed.stats.permutation_hits
            == buffered.stats.permutation_hits
        )
        sources_s = [r.source for r in streamed.results]
        sources_b = [r.source for r in buffered.results]
        assert sources_s == sources_b

    def test_run_without_callback_unchanged(self, dna_scheme):
        report = run_batch([T1, T2], workers=1)
        assert all(r.alignment is not None for r in report.results)
