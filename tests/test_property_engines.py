"""Property-based tests: every engine agrees with the independent oracle on
arbitrary inputs, and structural invariants hold for arbitrary alignments."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dp3d import score3_dp3d
from repro.core.hirschberg import align3_hirschberg
from repro.core.rolling import score3_slab
from repro.core.scoring import default_scheme_for
from repro.core.wavefront import align3_wavefront, score3_wavefront
from repro.parallel.threads import score3_threads
from repro.seqio.alphabet import DNA
from tests.reference.bruteforce import memo_optimal_score

SCHEME = default_scheme_for(DNA)

dna_seq = st.text(alphabet="ACGT", min_size=0, max_size=9)
triple = st.tuples(dna_seq, dna_seq, dna_seq)

COMMON = dict(deadline=None, max_examples=40)


@settings(**COMMON)
@given(triple)
def test_wavefront_matches_oracle(seqs):
    got = score3_wavefront(*seqs, SCHEME)
    expected = memo_optimal_score(*seqs, SCHEME)
    assert abs(got - expected) < 1e-9


@settings(**COMMON)
@given(triple)
def test_all_engines_agree(seqs):
    ref = score3_dp3d(*seqs, SCHEME)
    assert abs(score3_wavefront(*seqs, SCHEME) - ref) < 1e-9
    assert abs(score3_slab(*seqs, SCHEME) - ref) < 1e-9
    assert abs(score3_threads(*seqs, SCHEME, workers=2) - ref) < 1e-9
    assert abs(align3_hirschberg(*seqs, SCHEME, base_cells=30).score - ref) < 1e-9


@settings(**COMMON)
@given(triple)
def test_alignment_invariants(seqs):
    aln = align3_wavefront(*seqs, SCHEME)
    # The alignment reproduces its inputs exactly.
    assert aln.sequences() == seqs
    # The reported score is the SP score of the emitted rows.
    assert abs(SCHEME.sp_score(aln.rows) - aln.score) < 1e-9
    # Alignment length is bounded by the sum and at least the max.
    total = sum(len(s) for s in seqs)
    assert max((len(s) for s in seqs), default=0) <= aln.length <= total


@settings(**COMMON)
@given(triple)
def test_permutation_invariance(seqs):
    """SP scoring is symmetric in the three sequences, so the optimal score
    must be invariant under any permutation of the inputs."""
    base = score3_wavefront(*seqs, SCHEME)
    sa, sb, sc = seqs
    for perm in ((sb, sa, sc), (sc, sb, sa), (sb, sc, sa)):
        assert abs(score3_wavefront(*perm, SCHEME) - base) < 1e-9


@settings(**COMMON)
@given(triple)
def test_reversal_invariance(seqs):
    """Reversing all three sequences reverses alignments bijectively, so the
    optimum is unchanged."""
    fwd = score3_wavefront(*seqs, SCHEME)
    rev = score3_wavefront(*(s[::-1] for s in seqs), SCHEME)
    assert abs(fwd - rev) < 1e-9


@settings(**COMMON)
@given(triple, st.integers(0, 2**31 - 1))
def test_random_pruning_mask_never_beats_optimum(seqs, seed):
    full = score3_wavefront(*seqs, SCHEME)
    rng = np.random.default_rng(seed)
    shape = tuple(len(s) + 1 for s in seqs)
    mask = rng.random(shape) < 0.8
    mask[0, 0, 0] = True
    mask[tuple(len(s) for s in seqs)] = True
    pruned = score3_wavefront(*seqs, SCHEME, mask=mask)
    assert pruned <= full + 1e-9


@settings(**COMMON)
@given(dna_seq, dna_seq)
def test_empty_third_reduces_to_modified_pairwise(sx, sy):
    """With an empty third sequence, every column pays an extra 2g against
    it; the 3-way optimum equals the pairwise optimum under the modified
    scoring (checked via the memo oracle, independently of the engines)."""
    got = score3_wavefront(sx, sy, "", SCHEME)
    assert abs(got - memo_optimal_score(sx, sy, "", SCHEME)) < 1e-9


@settings(**COMMON)
@given(dna_seq)
def test_self_alignment_score(s):
    """Aligning a sequence with two copies of itself is columnwise optimal:
    3 * matrix[x, x] per residue (no gaps ever help when the diagonal
    dominates every row of the matrix)."""
    expected = sum(3 * SCHEME.pair_score(c, c) for c in s)
    assert abs(score3_wavefront(s, s, s, SCHEME) - expected) < 1e-9
