"""Unit tests for repro.pairwise.matrices2d."""

import numpy as np
import pytest

from repro.pairwise.matrices2d import (
    backward_matrix,
    forward_matrix,
    through_matrix,
)
from repro.pairwise.nw import align2, nw_matrix, score2


class TestForward:
    def test_matches_scalar_fill(self, dna_scheme):
        sx, sy = "GATTACA", "GATCA"
        D, _ = nw_matrix(sx, sy, dna_scheme)
        F = forward_matrix(sx, sy, dna_scheme)
        np.testing.assert_allclose(F, D, atol=1e-9)

    def test_empty_sequences(self, dna_scheme):
        F = forward_matrix("", "", dna_scheme)
        assert F.shape == (1, 1)
        assert F[0, 0] == 0.0

    def test_first_row_and_column_are_gap_chains(self, dna_scheme):
        F = forward_matrix("ACG", "TT", dna_scheme)
        np.testing.assert_allclose(F[0], np.arange(3) * dna_scheme.gap)
        np.testing.assert_allclose(F[:, 0], np.arange(4) * dna_scheme.gap)


class TestBackward:
    def test_suffix_scores(self, dna_scheme):
        sx, sy = "GATTA", "GTA"
        B = backward_matrix(sx, sy, dna_scheme)
        for i in range(len(sx) + 1):
            for j in range(len(sy) + 1):
                assert B[i, j] == pytest.approx(
                    score2(sx[i:], sy[j:], dna_scheme)
                ), (i, j)

    def test_terminal_cell_zero(self, dna_scheme):
        B = backward_matrix("ACG", "TT", dna_scheme)
        assert B[3, 2] == 0.0


class TestThrough:
    def test_max_equals_optimum(self, dna_scheme):
        sx, sy = "GATTACA", "GATCA"
        T = through_matrix(sx, sy, dna_scheme)
        assert T.max() == pytest.approx(score2(sx, sy, dna_scheme))

    def test_no_cell_exceeds_optimum(self, dna_scheme):
        sx, sy = "ACGTACGT", "TACGTT"
        T = through_matrix(sx, sy, dna_scheme)
        assert (T <= score2(sx, sy, dna_scheme) + 1e-9).all()

    def test_optimal_path_attains_max_everywhere(self, dna_scheme):
        sx, sy = "GATTACA", "GATCA"
        T = through_matrix(sx, sy, dna_scheme)
        opt = score2(sx, sy, dna_scheme)
        aln = align2(sx, sy, dna_scheme)
        i = j = 0
        assert T[0, 0] == pytest.approx(opt)
        for x, y in aln.columns():
            i += x != "-"
            j += y != "-"
            assert T[i, j] == pytest.approx(opt), (i, j)
