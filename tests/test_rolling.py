"""Unit tests for the slab (rolling) engine (repro.core.rolling)."""

import numpy as np
import pytest

from repro.core.dp3d import dp3d_matrix, score3_dp3d
from repro.core.rolling import (
    backward_slab,
    forward_slab,
    score3_slab,
    slab_sweep,
)


class TestScoreAgreement:
    def test_small_battery(self, small_triples, dna_scheme):
        for triple in small_triples:
            assert score3_slab(*triple, dna_scheme) == pytest.approx(
                score3_dp3d(*triple, dna_scheme)
            ), triple

    def test_medium_family(self, family_medium, dna_scheme):
        from repro.core.wavefront import score3_wavefront

        assert score3_slab(*family_medium, dna_scheme) == pytest.approx(
            score3_wavefront(*family_medium, dna_scheme)
        )

    def test_affine_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="linear"):
            slab_sweep("A", "A", "A", dna_scheme.with_gaps(gap=-1, gap_open=-1))


class TestSlabCapture:
    def test_captured_slabs_match_reference_cube(self, dna_scheme):
        sa, sb, sc = "GATT", "GT", "GAT"
        D_ref, _ = dp3d_matrix(sa, sb, sc, dna_scheme)
        res = slab_sweep(sa, sb, sc, dna_scheme, want_levels=range(len(sa) + 1))
        assert set(res.slabs) == set(range(len(sa) + 1))
        for level, slab in res.slabs.items():
            np.testing.assert_allclose(slab, D_ref[level], atol=1e-9)

    def test_capture_level_validated(self, dna_scheme):
        with pytest.raises(ValueError, match="capture level"):
            slab_sweep("AC", "A", "A", dna_scheme, want_levels=(9,))

    def test_cells_computed(self, dna_scheme):
        res = slab_sweep("ACG", "AC", "A", dna_scheme)
        assert res.cells_computed == 4 * 3 * 2


class TestForwardBackwardSlabs:
    @pytest.mark.parametrize("engine", ["wavefront", "slab"])
    def test_engines_agree(self, engine, dna_scheme, family_small):
        sa, sb, sc = family_small
        mid = len(sa) // 2
        ref = forward_slab(sa, sb, sc, dna_scheme, mid, engine="slab")
        got = forward_slab(sa, sb, sc, dna_scheme, mid, engine=engine)
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_unknown_engine(self, dna_scheme):
        with pytest.raises(ValueError, match="unknown engine"):
            forward_slab("A", "A", "A", dna_scheme, 0, engine="bogus")

    def test_forward_plus_backward_attains_optimum(
        self, dna_scheme, family_small
    ):
        # Hirschberg's core invariant: max_j,k F[mid] + B[mid] == OPT.
        sa, sb, sc = family_small
        opt = score3_dp3d(sa, sb, sc, dna_scheme)
        for mid in (0, len(sa) // 2, len(sa)):
            fwd = forward_slab(sa, sb, sc, dna_scheme, mid)
            bwd = backward_slab(sa, sb, sc, dna_scheme, mid)
            total = fwd + bwd
            assert total.max() == pytest.approx(opt), mid
            # And no cell ever exceeds the optimum.
            assert (total <= opt + 1e-6).all()

    def test_backward_slab_is_suffix_scores(self, dna_scheme):
        sa, sb, sc = "GAT", "GT", "AT"
        mid = 1
        bwd = backward_slab(sa, sb, sc, dna_scheme, mid)
        for j in range(len(sb) + 1):
            for k in range(len(sc) + 1):
                expected = score3_dp3d(sa[mid:], sb[j:], sc[k:], dna_scheme)
                assert bwd[j, k] == pytest.approx(expected), (j, k)

    def test_forward_slab_level_zero(self, dna_scheme):
        # F[0, j, k] is the pairwise face of (B, C) with gap columns.
        sa, sb, sc = "ACG", "GA", "GT"
        fwd = forward_slab(sa, sb, sc, dna_scheme, 0)
        assert fwd[0, 0] == 0.0
        expected = score3_dp3d("", sb, sc, dna_scheme)
        assert fwd[len(sb), len(sc)] == pytest.approx(expected)
