"""Workspace-reuse property tests (repro.core.workspace).

The zero-allocation kernel slices every buffer out of one grow-only
:class:`PlaneWorkspace`, so the risk it introduces is *stale state*: a
sweep over a small cube reading garbage a bigger previous sweep left in
the shared scratch. These tests hammer heterogeneous shapes — skewed
cubes, empty sequences, masked/pruned sweeps — through a single
workspace and assert every result is bit-identical to (a) a
fresh-workspace run and (b) the frozen pre-workspace reference kernel
:func:`repro.core.wavefront.compute_plane_rows_ref`.
"""

import numpy as np
import pytest

from repro.core.dp3d import NEG
from repro.core.hirschberg import align3_hirschberg
from repro.core.rolling import backward_slab, forward_slab, slab_sweep
from repro.core.wavefront import (
    align3_wavefront,
    compute_plane_rows,
    compute_plane_rows_ref,
    wavefront_sweep,
)
from repro.core.workspace import PlaneWorkspace
from repro.parallel.shared import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

# Deliberately heterogeneous: cube shapes shrink, grow, zero out and skew
# between consecutive sweeps so stale workspace state would surface.
SHAPES = [
    (6, 6, 6),
    (1, 1, 1),
    (12, 3, 1),
    (0, 0, 0),
    (2, 9, 4),
    (0, 5, 7),
    (5, 0, 7),
    (5, 7, 0),
    (9, 9, 9),
    (1, 0, 0),
    (3, 3, 12),
]


def _random_triple(rng, shape):
    return tuple(
        "".join(rng.choice(list("ACGT")) for _ in range(n)) for n in shape
    )


def _random_mask(rng, shape, density=0.7):
    n1, n2, n3 = shape
    mask = rng.random((n1 + 1, n2 + 1, n3 + 1)) < density
    mask[0, 0, 0] = True
    mask[n1, n2, n3] = True
    return mask


def _run_kernel(kernel, seqs, scheme, mask=None, score_only=False, ws=None):
    """Drive a full sweep through ``kernel`` plane by plane, returning
    every plane buffer state plus the move cube."""
    n1, n2, n3 = (len(s) for s in seqs)
    sab, sac, sbc = scheme.profile_matrices(*seqs)
    g2 = 2.0 * scheme.gap
    dims = (n1, n2, n3)
    planes = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
    move_cube = (
        None
        if score_only
        else np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )
    kwargs = {} if ws is None else {"ws": ws}
    plane_states = []
    for d in range(n1 + n2 + n3 + 1):
        out = planes[d % 4]
        kernel(
            d,
            0,
            n1,
            planes[(d - 1) % 4],
            planes[(d - 2) % 4],
            planes[(d - 3) % 4],
            out,
            sab,
            sac,
            sbc,
            g2,
            dims,
            move_cube=move_cube,
            mask=mask,
            **kwargs,
        )
        plane_states.append(out.copy())
    return plane_states, move_cube


class TestKernelBitIdentity:
    """The zero-allocation kernel vs the frozen reference kernel."""

    def test_heterogeneous_shapes_one_workspace(self, dna_scheme):
        rng = np.random.default_rng(7)
        ws = PlaneWorkspace()
        for shape in SHAPES:
            seqs = _random_triple(rng, shape)
            ref_planes, ref_mc = _run_kernel(
                compute_plane_rows_ref, seqs, dna_scheme
            )
            got_planes, got_mc = _run_kernel(
                compute_plane_rows, seqs, dna_scheme, ws=ws
            )
            for d, (a, b) in enumerate(zip(ref_planes, got_planes)):
                assert np.array_equal(a, b), f"plane {d} differs at {shape}"
            assert np.array_equal(ref_mc, got_mc), f"moves differ at {shape}"

    def test_masked_sweeps_one_workspace(self, dna_scheme):
        rng = np.random.default_rng(11)
        ws = PlaneWorkspace()
        for shape in SHAPES:
            seqs = _random_triple(rng, shape)
            mask = _random_mask(rng, shape)
            ref_planes, ref_mc = _run_kernel(
                compute_plane_rows_ref, seqs, dna_scheme, mask=mask
            )
            got_planes, got_mc = _run_kernel(
                compute_plane_rows, seqs, dna_scheme, mask=mask, ws=ws
            )
            for d, (a, b) in enumerate(zip(ref_planes, got_planes)):
                assert np.array_equal(a, b), f"plane {d} differs at {shape}"
            assert np.array_equal(ref_mc, got_mc), f"moves differ at {shape}"

    def test_score_only_sweeps_one_workspace(self, dna_scheme):
        rng = np.random.default_rng(13)
        ws = PlaneWorkspace()
        for shape in SHAPES:
            seqs = _random_triple(rng, shape)
            ref_planes, _ = _run_kernel(
                compute_plane_rows_ref, seqs, dna_scheme, score_only=True
            )
            got_planes, _ = _run_kernel(
                compute_plane_rows, seqs, dna_scheme, score_only=True, ws=ws
            )
            for d, (a, b) in enumerate(zip(ref_planes, got_planes)):
                assert np.array_equal(a, b), f"plane {d} differs at {shape}"

    def test_pruned_to_empty_plane(self, dna_scheme):
        # A mask that kills whole planes exercises the early-return paths.
        rng = np.random.default_rng(17)
        seqs = _random_triple(rng, (5, 5, 5))
        mask = np.zeros((6, 6, 6), dtype=bool)
        mask[0, 0, 0] = True
        mask[5, 5, 5] = True
        ws = PlaneWorkspace()
        ref_planes, ref_mc = _run_kernel(
            compute_plane_rows_ref, seqs, dna_scheme, mask=mask
        )
        got_planes, got_mc = _run_kernel(
            compute_plane_rows, seqs, dna_scheme, mask=mask, ws=ws
        )
        for a, b in zip(ref_planes, got_planes):
            assert np.array_equal(a, b)
        assert np.array_equal(ref_mc, got_mc)

    def test_long_thin_cubes(self, dna_scheme):
        rng = np.random.default_rng(19)
        ws = PlaneWorkspace()
        for shape in [(60, 2, 3), (2, 60, 3), (2, 3, 60)]:
            seqs = _random_triple(rng, shape)
            ref_planes, ref_mc = _run_kernel(
                compute_plane_rows_ref, seqs, dna_scheme
            )
            got_planes, got_mc = _run_kernel(
                compute_plane_rows, seqs, dna_scheme, ws=ws
            )
            for a, b in zip(ref_planes, got_planes):
                assert np.array_equal(a, b)
            assert np.array_equal(ref_mc, got_mc)

    def test_non_contiguous_inputs(self, dna_scheme):
        # Profile matrices arriving as views (e.g. shared-memory slices)
        # must gather identically.
        rng = np.random.default_rng(23)
        seqs = _random_triple(rng, (6, 5, 4))
        sab, sac, sbc = dna_scheme.profile_matrices(*seqs)
        big = np.full((sab.shape[0] * 2, sab.shape[1] * 2), 99.0)
        big[:: 2, :: 2] = sab
        sab_view = big[:: 2, :: 2]
        assert not sab_view.flags.c_contiguous
        n1, n2, n3 = (len(s) for s in seqs)
        dims = (n1, n2, n3)
        g2 = 2.0 * dna_scheme.gap
        planes_a = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
        planes_b = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
        ws = PlaneWorkspace(dims)
        for d in range(n1 + n2 + n3 + 1):
            compute_plane_rows_ref(
                d, 0, n1,
                planes_a[(d - 1) % 4], planes_a[(d - 2) % 4],
                planes_a[(d - 3) % 4], planes_a[d % 4],
                sab_view, sac, sbc, g2, dims,
            )
            compute_plane_rows(
                d, 0, n1,
                planes_b[(d - 1) % 4], planes_b[(d - 2) % 4],
                planes_b[(d - 3) % 4], planes_b[d % 4],
                sab_view, sac, sbc, g2, dims, ws=ws,
            )
            assert np.array_equal(planes_a[d % 4], planes_b[d % 4])


class TestEngineReuse:
    """Whole engines sharing one workspace across heterogeneous runs."""

    def test_wavefront_sweep_reuse(self, dna_scheme):
        rng = np.random.default_rng(29)
        ws = PlaneWorkspace()
        for shape in SHAPES:
            seqs = _random_triple(rng, shape)
            fresh = wavefront_sweep(*seqs, dna_scheme)
            reused = wavefront_sweep(*seqs, dna_scheme, workspace=ws)
            assert fresh.score == reused.score
            assert np.array_equal(fresh.move_cube, reused.move_cube)
            assert fresh.cells_computed == reused.cells_computed

    def test_align3_wavefront_reuse(self, dna_scheme):
        rng = np.random.default_rng(31)
        ws = PlaneWorkspace()
        for shape in [(8, 6, 7), (2, 2, 2), (10, 1, 4)]:
            seqs = _random_triple(rng, shape)
            fresh = align3_wavefront(*seqs, dna_scheme)
            reused = align3_wavefront(*seqs, dna_scheme, workspace=ws)
            assert fresh.rows == reused.rows
            assert fresh.score == reused.score
            assert fresh.meta == reused.meta

    def test_capture_slab_survives_reuse(self, dna_scheme):
        # Hirschberg holds the forward slab across the backward sweep of
        # the SAME workspace; the slab must be a fresh array, not a view.
        rng = np.random.default_rng(37)
        seqs = _random_triple(rng, (8, 7, 6))
        ws = PlaneWorkspace()
        level = 4
        fwd = forward_slab(*seqs, dna_scheme, level, workspace=ws)
        snapshot = fwd.copy()
        backward_slab(*seqs, dna_scheme, level, workspace=ws)
        assert np.array_equal(fwd, snapshot)
        assert np.array_equal(
            fwd, forward_slab(*seqs, dna_scheme, level)
        )

    def test_slab_sweep_reuse(self, dna_scheme):
        rng = np.random.default_rng(41)
        ws = PlaneWorkspace()
        for shape in SHAPES:
            seqs = _random_triple(rng, shape)
            fresh = slab_sweep(*seqs, dna_scheme, want_levels=(0, len(seqs[0])))
            reused = slab_sweep(
                *seqs, dna_scheme, want_levels=(0, len(seqs[0])), workspace=ws
            )
            assert fresh.score == reused.score
            assert fresh.cells_computed == reused.cells_computed
            for lvl, slab in fresh.slabs.items():
                assert np.array_equal(slab, reused.slabs[lvl])

    def test_slab_engine_slabs_bit_identical(self, dna_scheme):
        rng = np.random.default_rng(43)
        ws = PlaneWorkspace()
        for shape in [(7, 6, 5), (3, 9, 2), (1, 1, 8)]:
            seqs = _random_triple(rng, shape)
            n1 = len(seqs[0])
            for level in {0, n1 // 2, n1}:
                fresh = forward_slab(*seqs, dna_scheme, level, engine="slab")
                reused = forward_slab(
                    *seqs, dna_scheme, level, engine="slab", workspace=ws
                )
                assert np.array_equal(fresh, reused)

    def test_hirschberg_reuse(self, dna_scheme):
        rng = np.random.default_rng(47)
        ws = PlaneWorkspace()
        for shape in [(20, 16, 18), (6, 30, 4), (9, 9, 9)]:
            seqs = _random_triple(rng, shape)
            for engine in ("wavefront", "slab"):
                fresh = align3_hirschberg(
                    *seqs, dna_scheme, base_cells=64, engine=engine
                )
                reused = align3_hirschberg(
                    *seqs,
                    dna_scheme,
                    base_cells=64,
                    engine=engine,
                    workspace=ws,
                )
                assert fresh.rows == reused.rows
                assert fresh.score == reused.score
                assert fresh.meta == reused.meta

    @needs_fork
    def test_pool_varied_job_shapes(self, dna_scheme):
        # The pool's persistent workers each hold one workspace across
        # every job; interleaved shapes must stay bit-identical.
        from repro.parallel.executor import WavefrontPool

        rng = np.random.default_rng(53)
        shapes = [(12, 12, 12), (3, 3, 3), (12, 2, 5), (1, 9, 9), (12, 12, 12)]
        with WavefrontPool((12, 12, 12), workers=2) as pool:
            for shape in shapes:
                seqs = _random_triple(rng, shape)
                got = pool.align3(*seqs, dna_scheme)
                ref = align3_wavefront(*seqs, dna_scheme)
                assert got.rows == ref.rows
                assert got.score == ref.score


class TestWorkspaceMechanics:
    def test_grow_only(self):
        ws = PlaneWorkspace((4, 4, 4))
        assert ws.capacity == (4, 4, 4)
        assert ws.grows == 0
        ws.reserve(2, 2, 2)  # shrink request: no-op
        assert ws.capacity == (4, 4, 4)
        assert ws.grows == 0
        ws.reserve(8, 2, 2)
        assert ws.capacity == (8, 4, 4)
        assert ws.grows == 1

    def test_steady_state_no_regrow(self, dna_scheme):
        rng = np.random.default_rng(59)
        ws = PlaneWorkspace((10, 10, 10))
        ws.planes_for(10, 10)  # materialise plane buffers up front
        for shape in [(10, 10, 10), (4, 4, 4), (10, 2, 7)]:
            seqs = _random_triple(rng, shape)
            wavefront_sweep(*seqs, dna_scheme, workspace=ws)
        assert ws.grows == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            PlaneWorkspace((-1, 0, 0))

    def test_planes_are_neg_filled_views(self):
        ws = PlaneWorkspace((5, 5, 0))
        planes = ws.planes_for(5, 5)
        assert len(planes) == 4
        for p in planes:
            assert p.shape == (7, 7)
            assert np.all(p == NEG)
        planes[0][3, 3] = 1.0
        again = ws.planes_for(2, 2)
        for p in again:
            assert p.shape == (4, 4)
            assert np.all(p == NEG)
