"""Unit tests for repro.cluster.metrics."""

import pytest

from repro.cluster.machine import ethernet_2007
from repro.cluster.metrics import (
    block_sweep,
    comm_volume_series,
    efficiency_series,
    speedup_series,
    sweep_procs,
)


class TestSweeps:
    def test_speedup_series_shapes(self):
        s = speedup_series(60, [1, 2, 4], ethernet_2007(1), block=16)
        assert len(s) == 3
        assert s[0] == pytest.approx(1.0)

    def test_efficiency_starts_at_one(self):
        e = efficiency_series(60, [1, 2, 4], ethernet_2007(1), block=16)
        assert e[0] == pytest.approx(1.0)
        assert all(0 < x <= 1 + 1e-9 for x in e)

    def test_comm_volume_zero_at_one_proc(self):
        v = comm_volume_series(60, [1, 4], ethernet_2007(1), block=16)
        assert v[0] == 0
        assert v[1] > 0

    def test_sweep_procs_consistent_with_series(self):
        machine = ethernet_2007(1)
        res = sweep_procs(60, [1, 2], machine, block=16)
        s = speedup_series(60, [1, 2], machine, block=16)
        assert [r.speedup for r in res] == pytest.approx(s)

    def test_block_sweep_has_interior_optimum_for_lossy_network(self):
        # With high latency, very small and very large blocks both lose:
        # the best block size is strictly interior (the F4 story).
        res = block_sweep(200, [4, 8, 16, 32, 64], ethernet_2007(16))
        speedups = [r.speedup for r in res]
        best = speedups.index(max(speedups))
        assert 0 < best < len(speedups) - 1

    def test_block_sweep_messages_monotone_decreasing(self):
        res = block_sweep(100, [4, 8, 16, 32], ethernet_2007(8))
        msgs = [r.messages for r in res]
        assert msgs == sorted(msgs, reverse=True)
