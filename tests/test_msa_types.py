"""Unit tests for repro.msa.types."""

import pytest

from repro.msa.types import MultiAlignment, from_rows


class TestConstruction:
    def test_minimum_two_rows(self):
        with pytest.raises(ValueError, match="at least two"):
            MultiAlignment(rows=("AC",))

    def test_unequal_rows_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            MultiAlignment(rows=("AC", "A"))

    def test_all_gap_column_rejected(self):
        with pytest.raises(ValueError, match="all-gap"):
            MultiAlignment(rows=("A-", "A-", "A-"))

    def test_default_names(self):
        m = MultiAlignment(rows=("AC", "AG"))
        assert m.names == ("seq0", "seq1")

    def test_names_length_checked(self):
        with pytest.raises(ValueError, match="mismatch"):
            MultiAlignment(rows=("AC", "AG"), names=("only-one",))

    def test_from_rows(self):
        m = from_rows(["AC", "AG", "AT"], names=["x", "y", "z"])
        assert m.depth == 3
        assert m.names == ("x", "y", "z")


class TestAccessors:
    @pytest.fixture
    def msa(self):
        return MultiAlignment(rows=("AC-G", "A-TG", "ACTG"))

    def test_depth_length(self, msa):
        assert msa.depth == 3
        assert msa.length == 4

    def test_sequences(self, msa):
        assert msa.sequences() == ("ACG", "ATG", "ACTG")

    def test_columns(self, msa):
        cols = list(msa.columns())
        assert cols[0] == ("A", "A", "A")
        assert cols[1] == ("C", "-", "C")

    def test_identity(self):
        m = MultiAlignment(rows=("AAC", "AAG", "AAT"))
        assert m.identity() == pytest.approx(2 / 3)

    def test_pairwise_projection_drops_gapgap(self):
        m = MultiAlignment(rows=("A--G", "A-TG", "ACTG"))
        assert m.pairwise_projection(0, 1) == ("A-G", "ATG")

    def test_pretty_includes_names(self, msa):
        out = msa.pretty()
        assert "seq0" in out and "seq2" in out

    def test_pretty_width_validated(self, msa):
        with pytest.raises(ValueError):
            msa.pretty(width=0)


class TestSpScore:
    def test_three_rows_matches_scheme_scorer(self, dna_scheme):
        rows = ("AC-G", "A-TG", "ACTG")
        m = MultiAlignment(rows=rows)
        assert m.sp_score(dna_scheme) == pytest.approx(dna_scheme.sp_score(rows))

    def test_two_rows_is_pairwise(self, dna_scheme):
        m = MultiAlignment(rows=("AC-G", "ACTG"))
        expected = sum(
            dna_scheme.pair_score(x, y) for x, y in zip(*m.rows)
        )
        assert m.sp_score(dna_scheme) == pytest.approx(expected)

    def test_depth_scaling(self, dna_scheme):
        # Four identical rows: 6 pairs of identical sequences.
        m = MultiAlignment(rows=("ACGT",) * 4)
        per_pair = sum(dna_scheme.pair_score(c, c) for c in "ACGT")
        assert m.sp_score(dna_scheme) == pytest.approx(6 * per_pair)
