"""Unit tests for the content-addressed result cache (repro.cache)."""

import pytest

from repro.cache import (
    ResultCache,
    canonical_order,
    comparable_meta,
    decode_alignment,
    derive_for_order,
    encode_alignment,
    jsonable,
    permutation_key,
    permute_rows,
    request_key,
)
from repro.core.api import align3
from repro.core.types import Alignment3

TRIPLE = ("GATTACA", "GATCA", "GTTACA")


class TestRequestKey:
    def test_deterministic(self, dna_scheme):
        assert request_key(TRIPLE, dna_scheme) == request_key(TRIPLE, dna_scheme)

    def test_case_insensitive(self, dna_scheme):
        lower = tuple(s.lower() for s in TRIPLE)
        assert request_key(lower, dna_scheme) == request_key(TRIPLE, dna_scheme)

    def test_order_sensitive(self, dna_scheme):
        swapped = (TRIPLE[1], TRIPLE[0], TRIPLE[2])
        assert request_key(swapped, dna_scheme) != request_key(TRIPLE, dna_scheme)

    def test_sequence_sensitive(self, dna_scheme):
        other = ("GATTACA", "GATCA", "GTTACC")
        assert request_key(other, dna_scheme) != request_key(TRIPLE, dna_scheme)

    def test_scheme_sensitive(self, dna_scheme, affine_dna_scheme, protein_scheme):
        k = request_key(TRIPLE, dna_scheme)
        assert request_key(TRIPLE, affine_dna_scheme) != k
        assert request_key(("ACGT", "ACG", "AGT"), protein_scheme) != request_key(
            ("ACGT", "ACG", "AGT"), dna_scheme
        )

    def test_scheme_name_excluded(self, dna_scheme):
        from dataclasses import replace

        renamed = replace(dna_scheme, name="renamed")
        assert request_key(TRIPLE, renamed) == request_key(TRIPLE, dna_scheme)

    def test_mode_and_method_sensitive(self, dna_scheme):
        k = request_key(TRIPLE, dna_scheme, "global", "auto")
        assert request_key(TRIPLE, dna_scheme, "local", "auto") != k
        assert request_key(TRIPLE, dna_scheme, "global", "wavefront") != k

    def test_bad_inputs_rejected(self, dna_scheme):
        with pytest.raises(ValueError, match="three sequences"):
            request_key(("A", "C"), dna_scheme)
        with pytest.raises(ValueError, match="unknown mode"):
            request_key(TRIPLE, dna_scheme, mode="sideways")


class TestPermutationEquivalence:
    def test_permutation_key_order_insensitive(self, dna_scheme):
        keys = {
            permutation_key(p, dna_scheme)
            for p in [
                TRIPLE,
                (TRIPLE[1], TRIPLE[0], TRIPLE[2]),
                (TRIPLE[2], TRIPLE[1], TRIPLE[0]),
            ]
        }
        assert len(keys) == 1

    def test_canonical_order_invariant(self):
        seqs = ("GTT", "AAA", "CCC")
        canonical, perm = canonical_order(seqs)
        assert canonical == ("AAA", "CCC", "GTT")
        assert all(canonical[i] == seqs[perm[i]] for i in range(3))

    def test_canonical_order_stable_on_duplicates(self):
        _canonical, perm = canonical_order(("AAA", "AAA", "AAA"))
        assert perm == (0, 1, 2)

    def test_permute_rows(self, dna_scheme):
        aln = align3(*TRIPLE, dna_scheme)
        swapped = permute_rows(aln, (1, 0, 2))
        assert swapped.rows == (aln.rows[1], aln.rows[0], aln.rows[2])
        assert swapped.score == aln.score
        assert swapped.meta["permuted_from"] == [1, 0, 2]
        # the original is untouched
        assert "permuted_from" not in aln.meta

    def test_permute_rows_moves_spans(self, dna_scheme):
        aln = align3(*TRIPLE, dna_scheme)
        aln.meta["spans"] = [(0, 7), (1, 5), (2, 6)]
        moved = permute_rows(aln, (2, 0, 1))
        assert moved.meta["spans"] == [(2, 6), (0, 7), (1, 5)]

    def test_permute_rows_rejects_non_permutation(self, dna_scheme):
        aln = align3(*TRIPLE, dna_scheme)
        with pytest.raises(ValueError, match="permutation"):
            permute_rows(aln, (0, 0, 2))

    def test_derive_for_order_restores_request_order(self, dna_scheme):
        canonical, _perm = canonical_order(TRIPLE)
        canon_aln = align3(*canonical, dna_scheme)
        for request in [
            TRIPLE,
            (TRIPLE[2], TRIPLE[0], TRIPLE[1]),
            (TRIPLE[1], TRIPLE[2], TRIPLE[0]),
        ]:
            derived = derive_for_order(canon_aln, request)
            assert derived.sequences() == request
            assert derived.score == canon_aln.score
            assert dna_scheme.sp_score(derived.rows) == pytest.approx(
                canon_aln.score
            )


class TestEncoding:
    def test_jsonable_canonicalises(self):
        import numpy as np

        assert jsonable((1, 2)) == [1, 2]
        assert jsonable({"k": np.float64(2.5)}) == {"k": 2.5}
        assert jsonable(np.array([1, 2])) == [1, 2]
        assert jsonable({1: "x"}) == {"1": "x"}

    def test_round_trip_is_bit_identical(self, dna_scheme):
        import json

        aln = align3(*TRIPLE, dna_scheme)
        aln.meta["odd_float"] = 0.1 + 0.2  # not representable exactly
        payload = json.loads(json.dumps(encode_alignment(aln)))
        back = decode_alignment(payload)
        assert back.rows == aln.rows
        assert back.score == aln.score
        assert back.meta["odd_float"] == aln.meta["odd_float"]

    def test_decode_rejects_wrong_row_count(self):
        with pytest.raises(ValueError, match="rows"):
            decode_alignment({"rows": ["A", "A"], "score": 0.0})

    def test_jsonable_sanitises_non_finite_floats(self):
        import json

        import numpy as np

        payload = jsonable(
            {
                "nan": float("nan"),
                "inf": float("inf"),
                "ninf": float("-inf"),
                "np_nan": np.float64("nan"),
                "fine": 1.5,
            }
        )
        assert payload == {
            "nan": "NaN",
            "inf": "Infinity",
            "ninf": "-Infinity",
            "np_nan": "NaN",
            "fine": 1.5,
        }
        # The result is strict JSON: no NaN/Infinity literals needed.
        json.dumps(payload, allow_nan=False)

    def test_non_finite_meta_round_trips_strict_json(self, dna_scheme):
        import json
        import math

        aln = align3(*TRIPLE, dna_scheme)
        aln.meta["lower_bound"] = float("-inf")
        aln.meta["divergence"] = float("nan")
        text = json.dumps(encode_alignment(aln), allow_nan=False)
        back = decode_alignment(json.loads(text))
        assert back.rows == aln.rows
        assert back.score == aln.score
        # Sentinels are deliberate: strict parsers get strings, and the
        # values stay recoverable via float().
        assert math.isinf(float(back.meta["lower_bound"]))
        assert math.isnan(float(back.meta["divergence"]))

    def test_non_finite_score_round_trips_exactly(self):
        import json

        aln = Alignment3(
            rows=("A", "A", "A"), score=float("-inf"), meta={}
        )
        text = json.dumps(encode_alignment(aln), allow_nan=False)
        back = decode_alignment(json.loads(text))
        assert back.score == float("-inf")

    def test_decode_rejects_non_string_rows_naming_key(self):
        payload = {"rows": ["A", None, "A"], "score": 0.0}
        with pytest.raises(ValueError, match=r"row 1 is NoneType.*'k123'"):
            decode_alignment(payload, key="k123")
        # without a key the error still identifies the bad row
        with pytest.raises(ValueError, match="row 1 is NoneType"):
            decode_alignment(payload)

    def test_corrupted_disk_row_surfaces_value_error(self, tmp_path):
        import json

        cache = ResultCache(cache_dir=tmp_path)
        cache.put("good", self._mk_aln())
        # Corrupt the disk entry: rows become numbers, as a buggy or
        # foreign writer might produce.
        path = tmp_path / "results.jsonl"
        rec = json.loads(path.read_text())
        rec["alignment"]["rows"] = [1, 2, 3]
        path.write_text(json.dumps(rec) + "\n")
        fresh = ResultCache(cache_dir=tmp_path)
        with pytest.raises(ValueError, match=r"expected str \(cache key"):
            fresh.get("good")

    @staticmethod
    def _mk_aln():
        return Alignment3(rows=("A", "A", "A"), score=1.0, meta={})

    def test_comparable_meta_strips_volatile(self):
        meta = {
            "method": "wavefront",
            "wall_time_s": 0.5,
            "cache": {"hit": True},
            "batch": {"source": "dedup"},
            "permuted_from": [1, 0, 2],
            "spans": [(0, 1), (0, 2), (0, 3)],
        }
        cmp = comparable_meta(meta)
        assert cmp == {"method": "wavefront", "spans": [[0, 1], [0, 2], [0, 3]]}


class TestResultCache:
    def _aln(self, score=1.0):
        return Alignment3(
            rows=("GAT", "GAT", "GA-"), score=score, meta={"method": "x"}
        )

    def test_memory_hit(self):
        cache = ResultCache()
        cache.put("k", self._aln())
        got = cache.get("k")
        assert got is not None and got.score == 1.0
        assert cache.stats.memory_hits == 1
        assert cache.stats.hit_rate == 1.0

    def test_miss(self):
        cache = ResultCache()
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_hits_decode_fresh_objects(self):
        cache = ResultCache()
        cache.put("k", self._aln())
        first = cache.get("k")
        first.meta["mutated"] = True
        second = cache.get("k")
        assert "mutated" not in second.meta

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self._aln(1.0))
        cache.put("b", self._aln(2.0))
        assert cache.get("a") is not None  # refresh "a"; "b" is now oldest
        cache.put("c", self._aln(3.0))
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_record_false_skips_stats(self):
        cache = ResultCache()
        cache.put("k", self._aln())
        cache.get("k", record=False)
        cache.get("nope", record=False)
        assert cache.stats.lookups == 0

    def test_disk_persistence(self, tmp_path):
        first = ResultCache(cache_dir=tmp_path)
        first.put("k", self._aln(7.0))
        second = ResultCache(cache_dir=tmp_path)
        got = second.get("k")
        assert got is not None and got.score == 7.0
        assert second.stats.disk_hits == 1
        # promoted into memory: the next get is a memory hit
        second.get("k")
        assert second.stats.memory_hits == 1

    def test_disk_last_write_wins(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("k", self._aln(1.0))
        cache.put("k", self._aln(2.0))
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get("k").score == 2.0

    def test_truncated_final_line_skipped(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("k", self._aln())
        with open(tmp_path / "results.jsonl", "a") as fh:
            fh.write('{"key": "torn", "alignment"')  # no newline: torn write
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get("k") is not None
        assert fresh.get("torn") is None

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("k", self._aln())
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get("k") is not None
        assert cache.stats.disk_hits == 1


def _mode_alignment(mode, seqs, scheme):
    if mode == "local":
        from repro.core.local import align3_local

        return align3_local(*seqs, scheme)
    if mode == "semiglobal":
        from repro.core.semiglobal import align3_semiglobal

        return align3_semiglobal(*seqs, scheme)
    return align3(*seqs, scheme)


class TestHitBitIdentity:
    """A cache hit must be bit-identical to the cold compute: same rows,
    same score, same meta modulo timing — for both gap models and all
    three alignment modes."""

    @pytest.mark.parametrize("scheme_name", ["linear", "affine"])
    @pytest.mark.parametrize("mode", ["global", "local", "semiglobal"])
    def test_round_trip(
        self, scheme_name, mode, dna_scheme, affine_dna_scheme, tmp_path
    ):
        scheme = affine_dna_scheme if scheme_name == "affine" else dna_scheme
        if scheme_name == "affine" and mode != "global":
            pytest.skip("local/semiglobal engines implement the linear model")
        cold = _mode_alignment(mode, TRIPLE, scheme)
        key = request_key(TRIPLE, scheme, mode)
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(key, cold)

        hit = cache.get(key)
        assert hit.rows == cold.rows
        assert hit.score == cold.score
        assert comparable_meta(hit.meta) == comparable_meta(cold.meta)

        # and again through the disk tier alone
        disk_only = ResultCache(cache_dir=tmp_path)
        hit2 = disk_only.get(key)
        assert disk_only.stats.disk_hits == 1
        assert hit2.rows == cold.rows
        assert hit2.score == cold.score
        assert comparable_meta(hit2.meta) == comparable_meta(cold.meta)
