#!/usr/bin/env python
"""Guard the serving layer's acceptance bounds.

Spawns real ``repro serve`` processes (ephemeral port, stdlib client)
and asserts the contract from ``docs/serving.md`` in three phases:

1. **Correctness + amortisation** — ``--requests`` requests from
   ``--concurrency`` concurrent clients, duplicate-heavy (drawn from
   ``--unique`` distinct triples). Every 200 response must be
   bit-identical to a direct in-process ``align3`` of the same triple,
   and the server-side dedup ratio (1 - computed/requests, from
   ``/metrics``) must be at least ``--min-dedup``.
2. **Backpressure** — a second server with a tiny admission queue is
   saturated; at least one request must be shed with HTTP 429 and a
   positive integer ``Retry-After`` header, and every response must
   still be one of 200/429 (never a 5xx).
3. **Graceful drain** — a third server gets SIGTERM while requests are
   in flight; every already-admitted request must complete with a
   bit-identical 200 and the process must exit 0.

Usage::

    PYTHONPATH=src python tools/check_serve.py [--requests 200]
        [--unique 25] [--n 16] [--concurrency 16] [--min-dedup 0.8]

Exit status 0 when all bounds hold, 1 on violation (2 on bad arguments).
Needs only the standard library plus ``repro`` itself.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


class ServerProc:
    """A ``repro serve`` child on an ephemeral port."""

    def __init__(self, extra_args: list[str]):
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"]
            + extra_args,
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port = self._await_port()
        self.stderr_lines: list[str] = []
        self._drainer = threading.Thread(target=self._drain_stderr, daemon=True)
        self._drainer.start()

    def _await_port(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        assert self.proc.stderr is not None
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                raise RuntimeError(
                    f"server exited before binding "
                    f"(rc={self.proc.poll()})"
                )
            m = re.match(r"# serving on [\d.]+:(\d+)", line)
            if m:
                return int(m.group(1))
        raise RuntimeError("timed out waiting for the serving banner")

    def _drain_stderr(self) -> None:
        assert self.proc.stderr is not None
        for line in self.proc.stderr:
            self.stderr_lines.append(line)

    def terminate_and_wait(self, timeout: float = 30.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _fire(port: int, payloads: list[dict], concurrency: int) -> list:
    """Send ``payloads`` from ``concurrency`` threads; returns responses
    in payload order (None where the connection itself failed)."""
    from repro.serve import ServeClient

    out: list = [None] * len(payloads)
    it = iter(enumerate(payloads))
    lock = threading.Lock()

    def worker() -> None:
        with ServeClient("127.0.0.1", port) as client:
            while True:
                with lock:
                    try:
                        i, payload = next(it)
                    except StopIteration:
                        return
                try:
                    out[i] = client.align(**payload)
                except OSError:
                    out[i] = None

    threads = [
        threading.Thread(target=worker) for _ in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert serve correctness, shedding and drain bounds"
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--unique", type=int, default=25, help="distinct triples in the mix"
    )
    parser.add_argument(
        "--n", type=int, default=16, help="sequence length per triple"
    )
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument(
        "--min-dedup",
        type=float,
        default=0.8,
        help="required server-side dedup ratio on the duplicate-heavy mix",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the result as a check_serve run row",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.unique < 1 or args.requests < args.unique:
        parser.error("need requests >= unique >= 1")
    if args.concurrency < 1 or args.n < 1:
        parser.error("concurrency and n must be >= 1")

    _ensure_importable()
    t_start = time.perf_counter()
    from repro.core.api import align3
    from repro.core.scoring import default_scheme_for
    from repro.seqio.alphabet import DNA
    from repro.seqio.generate import mutated_family
    from repro.serve import ServeClient

    failures: list[str] = []
    scheme = default_scheme_for(DNA)
    triples = [
        tuple(mutated_family(args.n, seed=900 + i))
        for i in range(args.unique)
    ]
    expected = [align3(*t, scheme) for t in triples]

    # ---- phase 1: concurrent correctness + dedup --------------------
    srv = ServerProc(["--workers", "1"])
    try:
        order = [i % args.unique for i in range(args.requests)]
        payloads = [{"seqs": list(triples[k])} for k in order]
        responses = _fire(srv.port, payloads, args.concurrency)

        bad = sum(1 for r in responses if r is None or r.status != 200)
        if bad:
            failures.append(
                f"phase1: {bad}/{args.requests} requests did not return 200"
            )
        mismatch = 0
        for k, r in zip(order, responses):
            if r is None or r.status != 200:
                continue
            res = r.body["results"][0]
            want = expected[k]
            if (
                tuple(res["rows"]) != want.rows
                or float(res["score"]) != want.score
            ):
                mismatch += 1
        if mismatch:
            failures.append(
                f"phase1: {mismatch} responses differ from direct align3"
            )

        with ServeClient("127.0.0.1", srv.port) as mclient:
            metrics = mclient.metrics().body
        counters = metrics["metrics"].get("counters", {})
        served = counters.get("batch_requests", 0)
        computed = counters.get("batch_computed", 0)
        dedup = 1.0 - computed / served if served else 0.0
        if dedup < args.min_dedup:
            failures.append(
                f"phase1: dedup ratio {dedup:.3f} < {args.min_dedup:.2f} "
                f"(computed={computed} served={served})"
            )
        rc = srv.terminate_and_wait()
        if rc != 0:
            failures.append(f"phase1: server exit code {rc} != 0")
    finally:
        srv.kill()

    # ---- phase 2: tiny queue sheds with 429 + Retry-After -----------
    srv = ServerProc(
        [
            "--workers", "1",
            "--queue-depth", "2",
            "--batch-max", "2",
            "--batch-age-ms", "200",
        ]
    )
    try:
        big = tuple(mutated_family(48, seed=1300))
        payloads = [{"seqs": list(big)} for _ in range(60)]
        responses = _fire(srv.port, payloads, max(args.concurrency, 16))
        statuses = [r.status for r in responses if r is not None]
        shed = [r for r in responses if r is not None and r.status == 429]
        if not shed:
            failures.append("phase2: tiny queue never shed a request (429)")
        for r in shed:
            ra = r.retry_after_s
            if ra is None or ra < 1:
                failures.append(
                    "phase2: a 429 lacked a positive Retry-After header"
                )
                break
        unexpected = [s for s in statuses if s not in (200, 429)]
        if unexpected:
            failures.append(
                f"phase2: unexpected statuses under overload: "
                f"{sorted(set(unexpected))}"
            )
        srv.terminate_and_wait()
    finally:
        srv.kill()

    # ---- phase 3: SIGTERM drains in-flight requests to completion ---
    srv = ServerProc(
        ["--workers", "1", "--batch-max", "4", "--batch-age-ms", "50"]
    )
    try:
        n_inflight = 12
        slow = [
            tuple(mutated_family(40, seed=1500 + i))
            for i in range(n_inflight)
        ]
        slow_expected = [align3(*t, scheme) for t in slow]
        results: list = [None] * n_inflight

        def one(i: int) -> None:
            with ServeClient("127.0.0.1", srv.port, timeout=60) as client:
                try:
                    results[i] = client.align(seqs=list(slow[i]))
                except OSError:
                    results[i] = None

        threads = [
            threading.Thread(target=one, args=(i,))
            for i in range(n_inflight)
        ]
        for t in threads:
            t.start()
        time.sleep(0.25)  # let the requests be admitted
        rc = srv.terminate_and_wait(timeout=60)
        for t in threads:
            t.join(timeout=60)

        if rc != 0:
            failures.append(f"phase3: drained server exit code {rc} != 0")
        drained_ok = 0
        for i, r in enumerate(results):
            if r is None or r.status != 200:
                continue
            res = r.body["results"][0]
            want = slow_expected[i]
            if (
                tuple(res["rows"]) == want.rows
                and float(res["score"]) == want.score
            ):
                drained_ok += 1
        # Requests that raced the drain and were refused (503) are fine;
        # every request the server *admitted* must have completed. The
        # 0.25 s head start means at least one was in flight.
        refused = sum(
            1 for r in results if r is not None and r.status == 503
        )
        completed = sum(
            1 for r in results if r is not None and r.status == 200
        )
        if completed == 0:
            failures.append("phase3: no in-flight request survived drain")
        if drained_ok != completed:
            failures.append(
                f"phase3: {completed - drained_ok} drained responses "
                "differ from direct align3"
            )
        dropped = sum(1 for r in results if r is None)
        if dropped:
            failures.append(
                f"phase3: {dropped} admitted connections were dropped "
                "instead of drained"
            )
        print(
            f"# phase3: completed={completed} refused={refused} "
            f"exit={rc}"
        )
    finally:
        srv.kill()

    status = "FAIL" if failures else "OK"
    print(
        f"{status}: requests={args.requests} unique={args.unique} "
        f"concurrency={args.concurrency} dedup_ratio={dedup:.3f} "
        f"(required {args.min_dedup:.2f})"
    )
    for f in failures:
        print(f"  - {f}")

    from repro.runs import record_run

    record_run(
        "check_serve",
        config={
            "requests": args.requests,
            "unique": args.unique,
            "n": args.n,
            "concurrency": args.concurrency,
            "min_dedup": args.min_dedup,
        },
        metrics={
            "dedup_ratio": dedup,
            "drained_completed": float(completed),
            "drain_refused": float(refused),
            "passed": float(not failures),
        },
        wall_s=time.perf_counter() - t_start,
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
