#!/usr/bin/env python
"""Guard the constrained/anchored subsystem's acceptance bounds.

Three claims, cheapest first:

1. **Bit-identity** — ``align3`` with ``constraints=()`` and
   ``method="anchored"`` on inputs too short to anchor (the fallback
   path) reproduce every exact engine's rows *and* score exactly, on a
   spread of small triples including degenerates.
2. **Optimality under anchoring** — on medium high-identity triples the
   anchored result's score equals the unconstrained exact optimum (the
   discovered chain lies on an optimal path), verified against the
   pruned engine.
3. **Long-regime speedup** — an n≈``--n-long`` ≥0.9-identity triple:
   the dense engines are over the pinned memory budget
   (``degrade.estimate_bytes`` evidence — the cube "cannot" be run),
   and the anchored end-to-end wall time beats the best unanchored
   engine (``method="auto"``, which degrades to Hirschberg under the
   budget) by at least ``--min-speedup``. The unanchored side runs in a
   subprocess with a timeout of ``min_speedup * anchored_seconds`` plus
   margin — on this workload it is minutes vs. sub-second, so the
   timeout expiring *proves* the floor without waiting out the full
   alignment.

Usage::

    PYTHONPATH=src python tools/check_anchor.py [--n-long 2000]
        [--min-speedup 3.0] [--budget-bytes 2147483648]

Exit status 0 when all bounds hold, 1 on violation (2 on bad
arguments). Results self-record as one ``check_anchor`` row in the
run-record database (``RUNS.jsonl``; disable with ``--no-record``).
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


#: Exact engines the empty-chain paths must reproduce bit for bit.
EXACT_ENGINES = ("dp3d", "wavefront", "hirschberg", "pruned", "banded")

_UNANCHORED_SNIPPET = """
import sys, time
from repro.core.api import align3
from repro.core.scoring import default_scheme_for
from repro.seqio.alphabet import DNA
from repro.seqio.generate import MutationModel, mutated_family

n, seed = int(sys.argv[1]), int(sys.argv[2])
seqs = mutated_family(
    n,
    model=MutationModel(substitution=0.02, insertion=0.005, deletion=0.005),
    seed=seed,
)
t0 = time.perf_counter()
aln = align3(*seqs, default_scheme_for(DNA), method="auto")
print(f"UNANCHORED {time.perf_counter() - t0:.3f} {aln.score:g}")
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert anchored bit-identity, optimality and speedup"
    )
    parser.add_argument(
        "--n-long",
        type=int,
        default=2000,
        help="sequence length for the long-regime speedup claim",
    )
    parser.add_argument(
        "--n-medium",
        type=int,
        default=300,
        help="length for the anchored-vs-exact optimality claim",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="anchored must beat the best unanchored engine by this factor",
    )
    parser.add_argument(
        "--budget-bytes",
        type=int,
        default=2 << 30,
        help="memory budget pinned for the long run (REPRO_MEM_BUDGET)",
    )
    parser.add_argument(
        "--timeout-margin-s",
        type=float,
        default=20.0,
        help="extra subprocess allowance past the speedup-floor time",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the result as a check_anchor run row",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.n_long < 100 or args.n_medium < 50:
        parser.error("need n-long >= 100 and n-medium >= 50")
    if args.min_speedup <= 1 or args.budget_bytes < 1:
        parser.error("min-speedup must be > 1 and budget-bytes >= 1")

    _ensure_importable()
    import os
    import time

    from repro.core.api import align3
    from repro.core.scoring import default_scheme_for
    from repro.resilience.degrade import estimate_bytes
    from repro.seqio.alphabet import DNA
    from repro.seqio.generate import MutationModel, mutated_family
    from repro.util.timing import format_seconds

    scheme = default_scheme_for(DNA)
    failures: list[str] = []
    t_start = time.perf_counter()

    # ---- claim 1: empty-chain paths are bit-identical to every engine
    small = [
        ("", "", ""),
        ("A", "", "C"),
        ("GATTACA", "GATCA", "GATTA"),
        tuple(mutated_family(18, seed=901)),
        tuple(mutated_family(12, seed=902)),
    ]
    for seqs in small:
        want = align3(*seqs, scheme, method="dp3d")
        probes = {
            "constraints=()": align3(*seqs, scheme, constraints=()),
            "anchored-fallback": align3(*seqs, scheme, method="anchored"),
        }
        for label, got in probes.items():
            if got.rows != want.rows or got.score != want.score:
                failures.append(
                    f"{label} differs from dp3d on lens "
                    f"{tuple(len(s) for s in seqs)}"
                )
        for engine in EXACT_ENGINES[1:]:
            other = align3(*seqs, scheme, method=engine)
            if other.rows != want.rows or other.score != want.score:
                failures.append(
                    f"engine {engine} broke exact-class identity on "
                    f"lens {tuple(len(s) for s in seqs)}"
                )

    # ---- claim 2: anchored equals the exact optimum on medium triples
    anchored_cov = 0.0
    for seed in (7101, 7102):
        seqs = mutated_family(
            args.n_medium,
            model=MutationModel(
                substitution=0.02, insertion=0.005, deletion=0.005
            ),
            seed=seed,
        )
        anchored = align3(*seqs, scheme, method="anchored")
        exact = align3(*seqs, scheme, method="pruned")
        anchor = anchored.meta["anchor"]
        anchored_cov = max(anchored_cov, anchor["coverage"])
        if anchor["anchors"] == 0:
            failures.append(
                f"n={args.n_medium} seed={seed}: discovery found no "
                f"anchors on a high-identity triple "
                f"({anchor.get('discovery')})"
            )
        if anchored.score != exact.score:
            failures.append(
                f"n={args.n_medium} seed={seed}: anchored score "
                f"{anchored.score:g} != exact optimum {exact.score:g}"
            )

    # ---- claim 3: the long regime
    n = args.n_long
    dims = (n, n, n)
    # Evidence that the dense cube cannot run under the budget: every
    # full-matrix engine's footprint exceeds it.
    for engine in ("dp3d", "wavefront", "pruned", "banded"):
        est = estimate_bytes(engine, dims)
        if est <= args.budget_bytes:
            failures.append(
                f"{engine} at n={n} fits the {args.budget_bytes:,}-byte "
                f"budget ({est:,} bytes) — the 'dense cube cannot' claim "
                "does not hold at this size"
            )

    long_seed = 20240808
    seqs = mutated_family(
        n,
        model=MutationModel(
            substitution=0.02, insertion=0.005, deletion=0.005
        ),
        seed=long_seed,
    )
    env = dict(os.environ)
    env["REPRO_MEM_BUDGET"] = str(args.budget_bytes)

    t0 = time.perf_counter()
    anchored = align3(*seqs, scheme, method="anchored")
    anchored_s = time.perf_counter() - t0
    anchor = anchored.meta["anchor"]
    if anchor["anchors"] == 0:
        failures.append(f"n={n}: discovery found no anchors")
    if anchor["max_subcube_cells"] * 9 > args.budget_bytes:
        failures.append(
            f"largest sub-cube ({anchor['max_subcube_cells']:,} cells) "
            "does not obviously fit the budget"
        )

    # The unanchored side gets min_speedup * anchored_s (+margin); if it
    # cannot finish by then the >= floor holds a fortiori.
    floor_s = args.min_speedup * anchored_s
    timeout_s = floor_s + args.timeout_margin_s
    unanchored_s: float | None = None
    src_dir = pathlib.Path(__file__).resolve().parent.parent / "src"
    pythonpath = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{src_dir}{os.pathsep}{pythonpath}" if pythonpath else str(src_dir)
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _UNANCHORED_SNIPPET, str(n), str(long_seed)],
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout_s,
        )
        for line in proc.stdout.splitlines():
            if line.startswith("UNANCHORED "):
                unanchored_s = float(line.split()[1])
        if proc.returncode != 0 or unanchored_s is None:
            failures.append(
                "unanchored reference subprocess failed: "
                f"rc={proc.returncode} stderr={proc.stderr[-300:]!r}"
            )
    except subprocess.TimeoutExpired:
        pass  # floor proven: best unanchored engine needs > timeout_s

    if unanchored_s is None:
        speedup = timeout_s / anchored_s if anchored_s > 0 else float("inf")
        speedup_note = f">= {speedup:.1f}x (unanchored timed out)"
    else:
        speedup = (
            unanchored_s / anchored_s if anchored_s > 0 else float("inf")
        )
        speedup_note = f"{speedup:.2f}x"
        if speedup < args.min_speedup:
            failures.append(
                f"anchored speedup {speedup:.2f}x < required "
                f"{args.min_speedup:.2f}x"
            )

    status = "FAIL" if failures else "OK"
    print(
        f"{status}: n={n} anchored={format_seconds(anchored_s)} "
        f"anchors={anchor['anchors']} coverage={anchor['coverage']:g} "
        f"unanchored="
        f"{'timeout>' + format_seconds(timeout_s) if unanchored_s is None else format_seconds(unanchored_s)} "
        f"speedup={speedup_note} (required {args.min_speedup:.2f}x)"
    )
    for f in failures:
        print(f"  - {f}")

    from repro.runs import record_run

    record_run(
        "check_anchor",
        config={
            "n_long": args.n_long,
            "n_medium": args.n_medium,
            "min_speedup": args.min_speedup,
            "budget_bytes": args.budget_bytes,
        },
        metrics={
            "anchored_seconds": anchored_s,
            "anchored_anchors": float(anchor["anchors"]),
            "anchored_coverage": float(anchor["coverage"]),
            "anchored_speedup": speedup,
            "unanchored_timed_out": float(unanchored_s is None),
            "medium_coverage": anchored_cov,
            "passed": float(not failures),
        },
        wall_s=time.perf_counter() - t_start,
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
