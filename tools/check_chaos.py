#!/usr/bin/env python
"""Chaos-test the fault-tolerance layer end to end.

Runs a ~40^3 alignment under each injected fault class and asserts the
recovery contract from ``docs/robustness.md``:

* ``pool``/``shared`` worker crash -> the worker is respawned, the plane
  replayed, and the output is **bit-identical** to the serial engine;
* a straggler is tolerated (or killed and replayed) without changing
  the output;
* a corrupted ghost payload in ``mpirun`` is caught by the CRC32
  checksum, retransmitted, and the score stays exact;
* a dead rank raises a typed ``WorkerFailure`` carrying the failure log
  (instead of hanging or a bare ``queue.Empty``);
* a simulated OOM walks the degradation ladder and still returns the
  optimal score;
* supervision overhead on the fault-free path stays within
  ``--tolerance`` (default 10%).

Every barrier/queue wait in the engines is bounded, so the whole suite
must finish inside ``--budget`` wall-clock seconds — exceeding it is
itself a failure (it means something waited unsupervised).

Usage::

    PYTHONPATH=src python tools/check_chaos.py [--n 40] [--repeats 3]
        [--tolerance 0.10] [--budget 300]

Exit status 0 when every scenario passes, 1 on any failure (2 on bad
arguments).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
import warnings


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert fault injection recovers to bit-identical output"
    )
    parser.add_argument(
        "--n", type=int, default=40, help="sequence length (cube is ~(n+1)^3)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats per side "
        "for the supervision-overhead check"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max allowed fractional slowdown with supervision enabled",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=300.0,
        help="wall-clock seconds the whole suite must finish within",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the result as a check_chaos run row",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.n < 4 or args.repeats < 1 or args.tolerance < 0:
        parser.error("n must be >= 4, repeats >= 1, tolerance >= 0")

    _ensure_importable()

    from repro.cluster.mpirun import run_distributed
    from repro.core.api import align3
    from repro.core.scoring import default_scheme_for
    from repro.parallel.executor import WavefrontPool
    from repro.parallel.shared import align3_shared
    from repro.resilience import faults
    from repro.resilience.errors import WorkerFailure
    from repro.seqio.alphabet import DNA
    from repro.seqio.generate import mutated_family
    from repro.util.timing import format_seconds

    t_start = time.perf_counter()
    seqs = mutated_family(args.n, seed=7)
    scheme = default_scheme_for(DNA)
    dmax = sum(len(s) for s in seqs)
    mid = dmax // 2

    ref = align3(*seqs, scheme, method="wavefront")
    failures: list[str] = []

    def scenario(name: str, fn) -> None:
        faults.clear()
        t0 = time.perf_counter()
        try:
            fn()
        except Exception as exc:  # noqa: BLE001 - report, don't abort
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
            print(f"  FAIL {name}: {exc}")
        else:
            print(
                f"  ok   {name} ({format_seconds(time.perf_counter() - t0)})"
            )
        finally:
            faults.clear()

    print(f"chaos: n={args.n} (planes 0..{dmax}), reference score {ref.score:g}")

    def pool_crash() -> None:
        faults.install(f"worker_crash@pool:worker=1,plane={mid}")
        with WavefrontPool((args.n + 5,) * 3, workers=2) as pool:
            aln = pool.align3(*seqs, scheme)
            assert aln.rows == ref.rows and aln.score == ref.score, (
                "output differs after recovery"
            )
            assert aln.meta["recoveries"] >= 1, "no recovery recorded"

    def shared_crash() -> None:
        faults.install(f"worker_crash@shared:worker=1,plane={mid}")
        aln = align3_shared(*seqs, scheme, workers=2)
        assert aln.rows == ref.rows and aln.score == ref.score, (
            "output differs after recovery"
        )
        assert aln.meta.get("recoveries", 0) >= 1, "no recovery recorded"

    def shared_straggler() -> None:
        faults.install(f"straggler@shared:worker=1,delay=0.2,plane={mid}")
        aln = align3_shared(*seqs, scheme, workers=2)
        assert aln.rows == ref.rows and aln.score == ref.score, (
            "output differs under a straggler"
        )

    def mpirun_corrupt() -> None:
        faults.install("corrupt_ghost@mpirun")
        res = run_distributed(*seqs, scheme, block=16, procs=3)
        assert res.score == ref.score, "score differs after retransmit"
        assert res.checksum_bad >= 1, "corruption was not detected"
        assert res.resends >= 1, "no retransmission happened"

    def mpirun_rank_death() -> None:
        faults.install("worker_crash@mpirun:rank=1")
        try:
            run_distributed(*seqs, scheme, block=16, procs=3)
        except WorkerFailure as exc:
            assert exc.failures, "WorkerFailure carried no failure log"
        else:
            raise AssertionError("rank death did not raise WorkerFailure")

    def oom_degrade() -> None:
        from repro.resilience.degrade import estimate_bytes

        dims = tuple(len(s) for s in seqs)
        budget = estimate_bytes("wavefront", dims) - 1
        faults.install(f"oom:budget={budget}")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            aln = align3(*seqs, scheme, method="wavefront")
        assert aln.score == ref.score, "degraded run lost optimality"
        assert "degraded_from" in aln.meta, "run did not degrade"

    scenario("pool worker_crash -> respawn + plane replay", pool_crash)
    scenario("shared worker_crash -> respawn + plane replay", shared_crash)
    scenario("shared straggler tolerated", shared_straggler)
    scenario("mpirun corrupt_ghost -> checksum + resend", mpirun_corrupt)
    scenario("mpirun rank death -> typed WorkerFailure", mpirun_rank_death)
    scenario("oom -> degradation ladder, optimal score", oom_degrade)

    # Supervision overhead on the fault-free path, interleaved so drift
    # hits both sides equally; minimum-of-repeats suppresses noise.
    faults.clear()
    sup_times: list[float] = []
    base_times: list[float] = []
    with WavefrontPool((args.n + 5,) * 3, workers=2, supervise=True) as sup_pool, \
            WavefrontPool((args.n + 5,) * 3, workers=2, supervise=False) as base_pool:
        sup_pool.align3(*seqs, scheme)  # warmup
        base_pool.align3(*seqs, scheme)
        for _ in range(args.repeats):
            t0 = time.perf_counter()
            base_aln = base_pool.align3(*seqs, scheme)
            base_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            sup_aln = sup_pool.align3(*seqs, scheme)
            sup_times.append(time.perf_counter() - t0)
    base_s, sup_s = min(base_times), min(sup_times)
    if sup_aln.rows != base_aln.rows or sup_aln.score != base_aln.score:
        failures.append("supervision changed the alignment output")
    overhead = sup_s / base_s - 1.0 if base_s > 0 else 0.0
    status = "ok  " if overhead <= args.tolerance else "FAIL"
    line = (
        f"  {status} supervision overhead: unsupervised="
        f"{format_seconds(base_s)} supervised={format_seconds(sup_s)} "
        f"overhead={overhead:+.1%} (tolerance {args.tolerance:.0%})"
    )
    print(line)
    if overhead > args.tolerance:
        failures.append(f"supervision overhead {overhead:+.1%}")

    elapsed = time.perf_counter() - t_start
    if elapsed > args.budget:
        failures.append(
            f"wall clock {elapsed:.0f}s exceeded budget {args.budget:.0f}s"
        )
    verdict = "OK" if not failures else "FAIL"
    print(
        f"{verdict}: {len(failures)} failure(s), total "
        f"{format_seconds(elapsed)}"
    )

    from repro.runs import record_run

    record_run(
        "check_chaos",
        config={
            "n": args.n,
            "repeats": args.repeats,
            "tolerance": args.tolerance,
            "budget": args.budget,
        },
        metrics={
            "supervision_overhead_frac": overhead,
            "failures": float(len(failures)),
            "passed": float(not failures),
        },
        wall_s=elapsed,
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
