#!/usr/bin/env python
"""Run every acceptance gate (``tools/check_*.py``) in one go.

Discovers sibling ``check_*.py`` scripts at runtime — a new gate is
picked up the moment it lands in ``tools/`` — and runs each as a child
process with ``src`` on ``PYTHONPATH``, forwarding nothing: each gate's
defaults are its CI contract. A one-line PASS/FAIL verdict per gate is
printed as it finishes, then a summary; the exit status is 0 only when
every gate passed.

Usage::

    python tools/check_all.py            # run everything
    python tools/check_all.py --list     # print the gates, run nothing
    python tools/check_all.py --only serve batch

``--only`` filters by suffix (``serve`` → ``check_serve.py``), which is
what you want while iterating on a single layer. The perf gate
(``check_perf.py``) needs the committed ``BENCH_kernel.json`` baseline;
regenerate it with ``benchmarks/bench_kernel.py --write`` after a
deliberate kernel change.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import time

TOOLS_DIR = pathlib.Path(__file__).resolve().parent
SRC_DIR = TOOLS_DIR.parent / "src"


def discover() -> list[pathlib.Path]:
    """All gate scripts, sorted by name (stable run order)."""
    me = pathlib.Path(__file__).name
    return sorted(
        p
        for p in TOOLS_DIR.glob("check_*.py")
        if p.name != me
    )


def run_gate(path: pathlib.Path) -> tuple[int, float, str]:
    """Run one gate; returns (exit code, seconds, captured output)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    )
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, str(path)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, time.perf_counter() - t0, proc.stdout


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run every tools/check_*.py acceptance gate"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the discovered gates and exit without running them",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="run only the named gates (suffix form: 'serve', 'batch')",
    )
    args = parser.parse_args(argv)

    gates = discover()
    if args.only:
        wanted = {f"check_{n}.py" for n in args.only} | set(args.only)
        gates = [g for g in gates if g.name in wanted]
        missing = wanted - {g.name for g in gates} - set(args.only or [])
        if not gates:
            print(f"error: no gates match {args.only}", file=sys.stderr)
            return 2
        if missing:
            print(f"warning: no such gates: {sorted(missing)}",
                  file=sys.stderr)

    if args.list:
        for g in gates:
            print(g.name)
        return 0

    results: list[tuple[str, int, float]] = []
    for gate in gates:
        rc, seconds, output = run_gate(gate)
        verdict = "PASS" if rc == 0 else f"FAIL (rc={rc})"
        print(f"{gate.name}: {verdict} in {seconds:.1f}s")
        if rc != 0:
            for line in output.splitlines():
                print(f"    {line}")
        results.append((gate.name, rc, seconds))

    failed = [name for name, rc, _ in results if rc != 0]
    total_s = sum(s for _, _, s in results)
    print(
        f"# {len(results) - len(failed)}/{len(results)} gates passed "
        f"in {total_s:.1f}s"
    )
    if failed:
        print(f"# failed: {', '.join(failed)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
