#!/usr/bin/env python
"""Guard the sharded serve tier's failover and scale-out bounds.

Spawns the full topology from ``docs/serving.md`` — one ``repro
cache-server``, N ``repro serve`` replicas wired to it, and a ``repro
router`` in front — and asserts the robustness contract in three
phases:

1. **Replica kill, zero failed requests** — a duplicate-heavy load runs
   through the router while one replica is SIGKILLed mid-flight. Every
   response must be a 200 bit-identical to a direct in-process
   ``align3`` (content-addressed results make the failover retry
   idempotent); any 5xx is a violation.
2. **Ejection + readmission** — the killed replica must become
   unroutable within roughly one health interval (poll period + connect
   timeout + slack), and after a restart on the *same* port the
   half-open probe must readmit it without operator action.
3. **Throughput scaling** — a unique (compute-bound) mix is driven
   through a 1-replica tier and an N-replica tier. On a machine with at
   least N cores the aggregate throughput must scale by
   ``--min-scaling`` (default 2.0 at 3 replicas). On smaller boxes the
   replicas time-share the same cores, so the gate degrades to a
   "sharding does not wreck throughput" floor (default 0.6) and prints
   a note saying so — this keeps the gate meaningful in 1-core CI.

Usage::

    PYTHONPATH=src python tools/check_router.py [--replicas 3]
        [--requests 72] [--unique 6] [--n 12] [--concurrency 8]

Exit status 0 when all bounds hold, 1 on violation (2 on bad
arguments). Needs only the standard library plus ``repro`` itself.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


class Proc:
    """A repro subcommand child on an ephemeral port, banner-scraped."""

    def __init__(self, cmd: list[str], banner: str):
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro"] + cmd,
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port = self._await_port(banner)
        threading.Thread(target=self._drain_stderr, daemon=True).start()

    def _await_port(self, banner: str, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        assert self.proc.stderr is not None
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                raise RuntimeError(
                    f"child exited before binding (rc={self.proc.poll()})"
                )
            m = re.match(rf"# {banner} [\d.]+:(\d+)", line)
            if m:
                return int(m.group(1))
        raise RuntimeError(f"timed out waiting for the '{banner}' banner")

    def _drain_stderr(self) -> None:
        assert self.proc.stderr is not None
        for _line in self.proc.stderr:
            pass

    def kill_hard(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self, timeout: float = 30.0) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


def spawn_replica(cache_port: int | None, *, port: int = 0) -> Proc:
    cmd = ["serve", "--port", str(port), "--workers", "1"]
    if cache_port is not None:
        cmd += ["--cache-url", f"127.0.0.1:{cache_port}"]
    return Proc(cmd, "serving on")


def spawn_router(replica_ports: list[int], *extra: str) -> Proc:
    cmd = (
        ["router"]
        + [f"127.0.0.1:{p}" for p in replica_ports]
        + ["--port", "0", *extra]
    )
    return Proc(cmd, "routing on")


def _fire(
    port: int, payloads: list, concurrency: int, timeout: float = 90.0
) -> tuple[list, float]:
    """Closed-loop: send ``payloads`` from ``concurrency`` threads.
    Returns (responses in payload order — None where the connection
    itself failed — , wall seconds)."""
    from repro.serve import ServeClient

    out: list = [None] * len(payloads)
    it = iter(enumerate(payloads))
    lock = threading.Lock()

    def worker() -> None:
        with ServeClient("127.0.0.1", port, timeout=timeout) as client:
            while True:
                with lock:
                    try:
                        i, seqs = next(it)
                    except StopIteration:
                        return
                try:
                    out[i] = client.align(seqs=list(seqs))
                except OSError:
                    out[i] = None

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return out, time.perf_counter() - t0


def _replica_states(client) -> dict[str, dict]:
    return {r["name"]: r for r in client.healthz().body["replicas"]}


def _await(predicate, timeout: float, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert router failover, readmission and scaling bounds"
    )
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--requests", type=int, default=72)
    parser.add_argument(
        "--unique", type=int, default=6, help="distinct triples in the mix"
    )
    parser.add_argument(
        "--n", type=int, default=12, help="sequence length per triple"
    )
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument(
        "--scaling-requests",
        type=int,
        default=24,
        help="unique compute-bound requests per scaling measurement",
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=2.0,
        help="required N-replica/1-replica throughput ratio when the "
        "machine has >= N cores",
    )
    parser.add_argument(
        "--min-scaling-fallback",
        type=float,
        default=0.6,
        help="throughput-ratio floor on machines with fewer cores than "
        "replicas (sharding must not wreck throughput)",
    )
    parser.add_argument(
        "--max-eject-s",
        type=float,
        default=2.0,
        help="wall bound for the killed replica to become unroutable "
        "(one health interval + connect timeout + slack)",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the result as a check_router run row",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.replicas < 2:
        parser.error("need at least 2 replicas to fail over between")
    if args.unique < 1 or args.requests < args.unique:
        parser.error("need requests >= unique >= 1")
    if args.concurrency < 1 or args.n < 1 or args.scaling_requests < 1:
        parser.error("concurrency/n/scaling-requests must be >= 1")

    _ensure_importable()
    t_start = time.perf_counter()
    from repro.core.api import align3
    from repro.core.scoring import default_scheme_for
    from repro.seqio.alphabet import DNA
    from repro.seqio.generate import mutated_family
    from repro.serve import ServeClient

    failures: list[str] = []
    scheme = default_scheme_for(DNA)
    triples = [
        tuple(mutated_family(args.n, seed=4000 + i))
        for i in range(args.unique)
    ]
    expected = {t: align3(*t, scheme) for t in triples}

    # ---- phases 1+2: kill a replica mid-load, then readmit it -------
    eject_s = float("nan")
    readmit_s = float("nan")
    bad_statuses = 0
    mismatches = 0
    cache = Proc(["cache-server", "--port", "0"], "cache-serving on")
    replicas = [
        spawn_replica(cache.port) for _ in range(args.replicas)
    ]
    router = spawn_router(
        [r.port for r in replicas],
        "--health-interval", "0.1",
        "--eject-cooldown", "0.4",
    )
    try:
        payloads = [
            triples[i % args.unique] for i in range(args.requests)
        ]
        killed_at = [0.0]
        victim = replicas[0]

        def assassin() -> None:
            time.sleep(0.15)  # let the load be genuinely in flight
            victim.kill_hard()
            killed_at[0] = time.monotonic()

        killer = threading.Thread(target=assassin)
        killer.start()
        responses, _wall = _fire(router.port, payloads, args.concurrency)
        killer.join()

        for i, r in enumerate(responses):
            if r is None or r.status != 200:
                bad_statuses += 1
                continue
            res = r.body["results"][0]
            want = expected[payloads[i]]
            if (
                tuple(res["rows"]) != want.rows
                or float(res["score"]) != want.score
            ):
                mismatches += 1
        if bad_statuses:
            failures.append(
                f"phase1: {bad_statuses}/{args.requests} requests did not "
                "return 200 under replica kill"
            )
        if mismatches:
            failures.append(
                f"phase1: {mismatches} responses differ from direct align3"
            )

        with ServeClient("127.0.0.1", router.port) as c:
            if _await(
                lambda: not _replica_states(c)["r0"]["routable"],
                timeout=max(args.max_eject_s, 5.0),
            ):
                eject_s = time.monotonic() - killed_at[0]
            else:
                failures.append(
                    "phase2: killed replica never became unroutable"
                )
            if eject_s == eject_s and eject_s > args.max_eject_s:
                failures.append(
                    f"phase2: ejection took {eject_s:.2f}s "
                    f"> {args.max_eject_s:.2f}s"
                )

            # Shared cache sanity: the duplicate mix crossed replicas,
            # so at least one triple must have landed in the service.
            with ServeClient("127.0.0.1", cache.port) as cc:
                entries = cc.healthz().body.get("entries", 0)
            if entries < 1:
                failures.append(
                    "phase1: shared cache service holds no entries after "
                    "a duplicate-heavy run"
                )

            # Restart on the same port: half-open probe must readmit.
            restarted_at = time.monotonic()
            replicas[0] = spawn_replica(cache.port, port=victim.port)
            if _await(
                lambda: _replica_states(c)["r0"]["state"] == "healthy",
                timeout=15.0,
            ):
                readmit_s = time.monotonic() - restarted_at
            else:
                failures.append(
                    "phase2: restarted replica never readmitted"
                )
            resp = c.align(
                requests=[{"seqs": list(t)} for t in triples]
            )
            if resp.status != 200 or resp.body.get("count") != len(triples):
                failures.append(
                    "phase2: full scatter batch failed after readmission"
                )
    finally:
        router.terminate()
        for r in replicas:
            r.terminate()
        cache.terminate()

    # ---- phase 3: aggregate throughput, 1 replica vs N --------------
    # Unique mix: every triple computes, so throughput is bounded by
    # worker-pool compute and should scale with replica count — when the
    # machine has the cores. CI boxes often don't; see --min-scaling-
    # fallback above.
    cores = os.cpu_count() or 1
    scaling_payloads = [
        tuple(mutated_family(args.n, seed=6000 + i))
        for i in range(args.scaling_requests)
    ]

    def tier_throughput(n_replicas: int) -> float:
        reps = [spawn_replica(None) for _ in range(n_replicas)]
        rtr = spawn_router([r.port for r in reps])
        try:
            responses, wall = _fire(
                rtr.port, scaling_payloads, args.concurrency
            )
            ok = sum(
                1 for r in responses if r is not None and r.status == 200
            )
            if ok != len(scaling_payloads):
                failures.append(
                    f"phase3: {len(scaling_payloads) - ok} requests failed "
                    f"at {n_replicas} replica(s)"
                )
            return len(scaling_payloads) / wall if wall > 0 else 0.0
        finally:
            rtr.terminate()
            for r in reps:
                r.terminate()

    single_rps = tier_throughput(1)
    multi_rps = tier_throughput(args.replicas)
    scaling = multi_rps / single_rps if single_rps > 0 else 0.0
    if cores >= args.replicas:
        required = args.min_scaling
    else:
        required = args.min_scaling_fallback
        print(
            f"# phase3: only {cores} core(s) for {args.replicas} replicas "
            f"— replicas time-share the CPU, so the {args.min_scaling:.1f}x "
            f"scaling gate degrades to a {required:.1f}x floor"
        )
    if scaling < required:
        failures.append(
            f"phase3: {args.replicas}-replica throughput scaled "
            f"{scaling:.2f}x over 1 replica (required {required:.2f}x; "
            f"{single_rps:.1f} -> {multi_rps:.1f} req/s)"
        )

    status = "FAIL" if failures else "OK"
    print(
        f"{status}: replicas={args.replicas} requests={args.requests} "
        f"eject={eject_s:.2f}s readmit={readmit_s:.2f}s "
        f"scaling={scaling:.2f}x (required {required:.2f}x, "
        f"{cores} core(s))"
    )
    for f in failures:
        print(f"  - {f}")

    from repro.runs import record_run

    record_run(
        "check_router",
        config={
            "replicas": args.replicas,
            "requests": args.requests,
            "unique": args.unique,
            "n": args.n,
            "concurrency": args.concurrency,
            "scaling_requests": args.scaling_requests,
            "min_scaling": args.min_scaling,
            "min_scaling_fallback": args.min_scaling_fallback,
            "cores": cores,
        },
        metrics={
            "bad_statuses": float(bad_statuses),
            "mismatches": float(mismatches),
            "eject_s": eject_s,
            "readmit_s": readmit_s,
            "single_rps": single_rps,
            "multi_rps": multi_rps,
            "scaling_x": scaling,
            "passed": float(not failures),
        },
        wall_s=time.perf_counter() - t_start,
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
