#!/usr/bin/env python
"""Guard the throughput layer's acceptance bounds.

Builds a duplicate-heavy batch (``--requests`` requests drawn from
``--unique`` distinct triples, i.e. the serving-workload shape the
batching layer targets) and asserts three things:

1. **Dedup** — the batch scheduler computes each distinct request once,
   so the dedup ratio is at least ``1 - unique/requests``.
2. **Bit-identity** — every cache hit (exact and in-batch dedup) matches
   the cold compute: same rows, same score, same meta modulo timing; and
   a warm re-run of the whole batch serves every request from the cache
   with identical results.
3. **Throughput** — the batch run beats a serial ``align3`` loop over
   the same requests by at least ``--min-speedup`` (the issue's bound is
   2x; the default here leaves headroom for loaded CI machines).

Usage::

    PYTHONPATH=src python tools/check_batch.py [--requests 200]
        [--unique 40] [--n 24] [--min-speedup 2.0] [--repeats 2]

Exit status 0 when all bounds hold, 1 on violation (2 on bad arguments).
``--workers 1`` (the default) keeps the pool serial so the measurement is
about batching and caching, not fork timing noise. The dedup ratio and
speedup self-record as one ``check_batch`` row in the run-record
database (``RUNS.jsonl``; disable with ``--no-record``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert batch dedup, hit bit-identity and speedup bounds"
    )
    parser.add_argument(
        "--requests", type=int, default=200, help="total batch size"
    )
    parser.add_argument(
        "--unique", type=int, default=40, help="distinct triples in the batch"
    )
    parser.add_argument(
        "--n", type=int, default=24, help="sequence length per triple"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="batch must beat the serial align3 loop by this factor",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timed repeats per side"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="pool workers (1 = serial)"
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the result as a check_batch run row",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.unique < 1 or args.requests < args.unique:
        parser.error("need requests >= unique >= 1")
    if args.n < 1 or args.repeats < 1 or args.min_speedup <= 0:
        parser.error("n/repeats must be >= 1 and min-speedup > 0")

    _ensure_importable()
    import time

    from repro.batch import AlignmentRequest, BatchScheduler
    from repro.cache import ResultCache, comparable_meta
    from repro.core.api import align3
    from repro.core.scoring import default_scheme_for
    from repro.seqio.alphabet import DNA
    from repro.seqio.generate import mutated_family
    from repro.util.timing import format_seconds

    scheme = default_scheme_for(DNA)
    triples = [
        tuple(mutated_family(args.n, seed=500 + i)) for i in range(args.unique)
    ]
    requests = [
        AlignmentRequest(seqs=triples[i % args.unique], scheme=scheme)
        for i in range(args.requests)
    ]
    expected_dedup = 1.0 - args.unique / args.requests

    # Interleave the serial loop and the batch run so machine-load drift
    # hits both sides equally; compare minima.
    serial_times: list[float] = []
    batch_times: list[float] = []
    report = None
    serial_alns = None
    for _ in range(args.repeats):
        t0 = time.perf_counter()
        serial_alns = [align3(*r.seqs, r.scheme) for r in requests]
        serial_times.append(time.perf_counter() - t0)

        with BatchScheduler(cache=ResultCache(), workers=args.workers) as sched:
            t0 = time.perf_counter()
            report = sched.run(requests)
            batch_times.append(time.perf_counter() - t0)
    serial_s, batch_s = min(serial_times), min(batch_times)

    failures: list[str] = []

    if report.stats.computed != args.unique:
        failures.append(
            f"computed {report.stats.computed} jobs, expected {args.unique}"
        )
    if report.stats.dedup_ratio < expected_dedup:
        failures.append(
            f"dedup_ratio {report.stats.dedup_ratio:.3f} "
            f"< expected {expected_dedup:.3f}"
        )

    # Every request must reproduce the serial loop's rows and score
    # exactly (meta provenance legitimately differs: the pool records
    # engine="pool" where serial align3 records the sweep engine).
    mismatches = 0
    for res, want in zip(report.results, serial_alns):
        got = res.alignment
        if got.rows != want.rows or got.score != want.score:
            mismatches += 1
    if mismatches:
        failures.append(
            f"{mismatches}/{args.requests} batch results differ from the "
            "serial align3 loop"
        )

    # Warm re-run: everything from the cache, still bit-identical.
    cache = ResultCache()
    with BatchScheduler(cache=cache, workers=args.workers) as sched:
        cold = sched.run(requests)
        warm = sched.run(requests)
    if warm.stats.computed != 0:
        failures.append(
            f"warm re-run recomputed {warm.stats.computed} jobs"
        )
    for a, b in zip(cold.results, warm.results):
        if (
            a.alignment.rows != b.alignment.rows
            or a.alignment.score != b.alignment.score
            or comparable_meta(a.alignment.meta)
            != comparable_meta(b.alignment.meta)
        ):
            failures.append("a warm cache hit differs from its cold compute")
            break

    speedup = serial_s / batch_s if batch_s > 0 else float("inf")
    if speedup < args.min_speedup:
        failures.append(
            f"batch speedup {speedup:.2f}x < required {args.min_speedup:.2f}x"
        )

    status = "FAIL" if failures else "OK"
    print(
        f"{status}: requests={args.requests} unique={args.unique} n={args.n} "
        f"dedup_ratio={report.stats.dedup_ratio:.3f} "
        f"serial={format_seconds(serial_s)} batch={format_seconds(batch_s)} "
        f"speedup={speedup:.2f}x (required {args.min_speedup:.2f}x)"
    )
    for f in failures:
        print(f"  - {f}")

    from repro.runs import record_run

    record_run(
        "check_batch",
        config={
            "requests": args.requests,
            "unique": args.unique,
            "n": args.n,
            "workers": args.workers,
            "min_speedup": args.min_speedup,
        },
        metrics={
            "dedup_ratio": report.stats.dedup_ratio,
            "batch_speedup": speedup,
            "serial_seconds": serial_s,
            "batch_seconds": batch_s,
            "passed": float(not failures),
        },
        wall_s=sum(serial_times) + sum(batch_times),
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
