#!/usr/bin/env python
"""Guard against instrumentation-overhead regressions.

Times an aligned sweep with observability off, then again with both the
span tracer and the metrics registry enabled, and fails when the traced
run is more than ``--tolerance`` slower than the untraced one. The default
workload is the acceptance target from the observability issue: a 40-mer
family, i.e. a ~41^3-cell cube, with a 10% tolerance.

Usage::

    PYTHONPATH=src python tools/check_overhead.py [--n 40] [--repeats 5]
        [--tolerance 0.10]

Exit status 0 when within tolerance, 1 when over (2 on bad arguments).
Minimum-of-repeats is used on both sides, which suppresses scheduler
noise; raise ``--repeats`` on a loaded machine. The measured overhead
self-records as one ``check_overhead`` row in the run-record database
(``RUNS.jsonl``; disable with ``--no-record``).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import tempfile


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert traced alignment overhead stays within tolerance"
    )
    parser.add_argument(
        "--n", type=int, default=40, help="sequence length (cube is ~(n+1)^3)"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed repeats per side"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max allowed fractional slowdown of the traced run",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the result as a check_overhead run row",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.n < 1 or args.repeats < 1 or args.tolerance < 0:
        parser.error("n/repeats must be >= 1 and tolerance >= 0")

    _ensure_importable()
    import time

    from repro.core.scoring import default_scheme_for
    from repro.core.wavefront import align3_wavefront
    from repro.obs import metrics, trace
    from repro.seqio.alphabet import DNA
    from repro.seqio.generate import mutated_family
    from repro.util.timing import format_seconds

    seqs = mutated_family(args.n, seed=7)
    scheme = default_scheme_for(DNA)
    t_start = time.perf_counter()

    fd, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="obs-overhead-")
    os.close(fd)
    recorder = trace.TraceRecorder(trace_path)
    base_times: list[float] = []
    traced_times: list[float] = []
    base_aln = traced_aln = None
    try:
        # Interleave the untraced and traced measurements so slow drift
        # (thermal throttling, background load) hits both sides equally;
        # the minimum of each side then compares like with like.
        align3_wavefront(*seqs, scheme)  # warmup
        for _ in range(args.repeats):
            t0 = time.perf_counter()
            base_aln = align3_wavefront(*seqs, scheme)
            base_times.append(time.perf_counter() - t0)

            trace.install(recorder)
            metrics.enable()
            try:
                t0 = time.perf_counter()
                traced_aln = align3_wavefront(*seqs, scheme)
                traced_times.append(time.perf_counter() - t0)
            finally:
                metrics.disable()
                trace.uninstall()
    finally:
        recorder.close()
        os.unlink(trace_path)
    base_s, traced_s = min(base_times), min(traced_times)

    if traced_aln.rows != base_aln.rows or traced_aln.score != base_aln.score:
        print("FAIL: tracing changed the alignment output")
        return 1

    overhead = traced_s / base_s - 1.0 if base_s > 0 else 0.0
    status = "OK" if overhead <= args.tolerance else "FAIL"
    print(
        f"{status}: n={args.n} untraced={format_seconds(base_s)} "
        f"traced={format_seconds(traced_s)} overhead={overhead:+.1%} "
        f"(tolerance {args.tolerance:.0%})"
    )

    # Self-record after the measurement loop, so the recorder's own cost
    # (one git call + one O_APPEND write) can never skew the numbers it
    # is recording.
    from repro.runs import record_run

    record_run(
        "check_overhead",
        config={
            "n": args.n,
            "repeats": args.repeats,
            "tolerance": args.tolerance,
        },
        metrics={
            "overhead_frac": overhead,
            "untraced_seconds": base_s,
            "traced_seconds": traced_s,
            "passed": float(overhead <= args.tolerance),
        },
        wall_s=time.perf_counter() - t_start,
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 0 if overhead <= args.tolerance else 1


if __name__ == "__main__":
    sys.exit(main())
