#!/usr/bin/env python
"""Guard the run-record subsystem's acceptance contract end to end.

Round-trips the whole ``repro.runs`` pipeline in a throwaway store:

1. **Seed** — the committed ``BENCH_kernel.json`` migrates into an
   empty store as the first trajectory row (sentinel ``baseline``
   fingerprint) and the migration is idempotent.
2. **Record** — two same-fingerprint ``bench_kernel`` rows append with
   git provenance and an environment-clean fingerprint; a row poisoned
   with an environment-variable value is *rejected* before reaching
   disk.
3. **Re-gate** — the rolling-median trajectory gate passes a steady
   measurement and fails a 50% regression, and falls back to the
   committed baseline while the trajectory is thinner than
   ``--min-rows``.
4. **Durability** — a torn final line (killed writer) is skipped on
   reload and repaired by the next append; unknown-schema rows are
   skipped without poisoning their neighbours; ``gc`` keeps the newest
   rows per kind and rotates the old file to ``.1``.
5. **Trend render** — ``repro report --trends`` and ``repro runs list``
   run green over the store and the trend table carries a sparkline
   and a delta for the recorded metrics.

Usage::

    PYTHONPATH=src python tools/check_runs.py [--no-record]
        [--runs-file FILE]

The gate itself self-records one ``check_runs`` row into the *real*
store (``--runs-file``/``--no-record`` control that; the throwaway
store above lives in a temp directory). Exit status 0 when every check
holds, 1 on violation.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import pathlib
import sys
import tempfile
import time
from contextlib import redirect_stdout


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


_ensure_importable()

from repro.cli import main as cli_main  # noqa: E402
from repro.runs import (  # noqa: E402
    BASELINE_FP,
    EnvLeakError,
    RunStore,
    default_baseline_path,
    fingerprint_id,
    kernel_metrics,
    new_record,
    record_run,
    render_trends,
    seed_from_baseline,
    trajectory_median,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert the run-record store round-trips: "
        "seed -> record -> re-gate -> trend render"
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the result as a check_runs row",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="store for the self-record row (default: RUNS.jsonl at the "
        "repo root); the round-trip itself always uses a temp store",
    )
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"  {'ok  ' if ok else 'FAIL'} {what}")
        if not ok:
            failures.append(what)

    baseline_path = default_baseline_path()
    try:
        baseline_doc = json.loads(baseline_path.read_text())
        base_metrics = kernel_metrics(baseline_doc)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"FAIL: cannot load {baseline_path.name}: {exc}")
        return 1

    with tempfile.TemporaryDirectory(prefix="check-runs-") as tmp:
        store = RunStore(pathlib.Path(tmp) / "RUNS.jsonl")

        # ---- 1. seed ------------------------------------------------
        seeded = seed_from_baseline(store, baseline_path)
        check(
            seeded is not None and seeded.fp == BASELINE_FP,
            "baseline migrates into an empty store as the seed row",
        )
        check(
            seed_from_baseline(store, baseline_path) is None
            and len(store.records(kind="bench_kernel")) == 1,
            "seeding is idempotent",
        )

        # ---- 2. record ----------------------------------------------
        fp = fingerprint_id()
        for jitter in (0.99, 1.01):
            rec = new_record(
                "bench_kernel",
                config=baseline_doc["config"],
                metrics={k: v * jitter for k, v in base_metrics.items()},
                wall_s=0.5,
            )
            store.append(rec)
        rows = store.records(kind="bench_kernel", fp=fp)
        check(
            len(rows) == 2 and all(r.git_rev for r in rows),
            "two same-fingerprint rows recorded with git provenance",
        )

        canary = "canary-environment-value-0123456789"
        os.environ["REPRO_RUNS_CANARY"] = canary
        try:
            poisoned = new_record(
                "bench_kernel", metrics={"x": 1.0}, notes={"leak": canary}
            )
            try:
                store.append(poisoned)
                check(False, "environment-tainted row is rejected")
            except EnvLeakError:
                check(True, "environment-tainted row is rejected")
            clean = new_record("bench_kernel", metrics={"x": 1.0})
            check(
                canary not in json.dumps(clean.to_dict()),
                "fingerprint and provenance stay environment-free",
            )
        finally:
            del os.environ["REPRO_RUNS_CANARY"]

        # ---- 3. re-gate ---------------------------------------------
        median, values = trajectory_median(
            store, "small_speedup", fp=fp, window=5, min_rows=2
        )
        steady = base_metrics["small_speedup"]
        check(
            median is not None and steady >= median * 0.8,
            "steady measurement passes the rolling-median gate",
        )
        check(
            median is not None and steady * 0.5 < median * 0.8,
            "a 50% regression fails the rolling-median gate",
        )
        thin_median, thin_values = trajectory_median(
            store, "small_speedup", fp=fp, window=5, min_rows=3
        )
        check(
            thin_median is None and len(thin_values) == 2,
            "thin trajectory signals fallback to the committed baseline",
        )

        # ---- 4. durability ------------------------------------------
        with open(store.path, "ab") as fh:
            fh.write(b'{"schema":"runs/999","kind":"future-row"}\n')
            fh.write(b'{"schema":"runs/1","kind":"torn')  # killed writer
        before = len(store.records())
        skipped = store.skipped
        check(
            skipped == 2 and before == 3,
            "unknown-schema and torn lines are skipped on read",
        )
        store.append(new_record("bench_kernel", metrics={"x": 2.0}))
        parseable = [
            ln
            for ln in store.path.read_bytes().splitlines(keepends=True)
            if ln.endswith(b"\n")
        ]
        check(
            len(store.records()) == before + 1
            and all(b"\n" not in ln[:-1] for ln in parseable),
            "append after a torn line repairs the tail",
        )
        trends = render_trends(store)  # pre-gc: full kernel series
        kept, dropped = store.gc(keep_per_kind=2)
        check(
            kept == 2
            and store.path.with_name(store.path.name + ".1").exists(),
            "gc keeps the newest rows per kind and rotates the old file",
        )

        # ---- 5. trend render ----------------------------------------
        check(
            "bench_kernel trends" in trends
            and any(c in trends for c in "▁▂▃▄▅▆▇█")
            and "%" in trends,
            "render_trends shows sparkline and delta",
        )
        buf = io.StringIO()
        with redirect_stdout(buf):
            rc_report = cli_main(
                ["report", "--trends", "--runs-file", str(store.path)]
            )
            rc_list = cli_main(
                ["runs", "list", "--runs-file", str(store.path)]
            )
        check(
            rc_report == 0 and rc_list == 0
            and "trends" in buf.getvalue()
            and "run records" in buf.getvalue(),
            "repro report --trends and repro runs list run green",
        )

    elapsed = time.perf_counter() - t_start
    verdict = "OK" if not failures else "FAIL"
    print(f"{verdict}: {len(failures)} failure(s) in {elapsed:.2f}s")
    for f in failures:
        print(f"  - {f}")

    record_run(
        "check_runs",
        config={},
        metrics={
            "failures": float(len(failures)),
            "passed": float(not failures),
        },
        wall_s=elapsed,
        runs_file=args.runs_file,
        enabled=not args.no_record,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
