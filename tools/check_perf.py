#!/usr/bin/env python
"""Guard against plane-kernel performance regressions.

Re-runs ``benchmarks/bench_kernel.py`` with the workload config stored
in the committed baseline (``BENCH_kernel.json``) and fails when the
kernel has lost its edge:

* the **baseline document** must itself satisfy the acceptance
  criteria — ≥ 1.5x speedup over the frozen reference kernel on the
  repeated-small-plane (Hirschberg-style) workload, no regression
  (≥ 1.0x) on the single large sweep, ≥ 5x end-to-end speedup of
  the Carrillo–Lipman-pruned path over the unpruned wavefront on the
  high-similarity workload, and the block-tiled engine at least
  matching (≥ 1.0x) the per-plane-barrier engine at ≥ 4 workers on
  the scaling curve;
* the **measured speedups** of the current checkout must not regress
  more than ``--tolerance`` (default 20%) below the reference point.

The reference point is the committed baseline by default. With
``--trajectory`` it becomes the **rolling median of the last
``--window`` same-machine-fingerprint ``bench_kernel`` rows** in the
run-record database (``RUNS.jsonl``; see ``docs/observability.md``) —
regressions are then judged against this machine's recent history
rather than one lucky snapshot. While the trajectory is thin (fewer
than ``--min-rows`` rows for this fingerprint) the gate falls back to
the committed baseline, and on a fresh checkout the baseline is first
migrated into the store as the seed row.

Speedup ratios (new kernel vs the frozen in-process reference kernel,
timed back to back) are the primary gate because they are
machine-neutral: a slower CI box scales both sides equally. Absolute
cells/s are printed for the trajectory and enforced only with
``--absolute``, for use on the machine that wrote the baseline.

Usage::

    PYTHONPATH=src python tools/check_perf.py [--repeats 3]
        [--tolerance 0.20] [--absolute] [--update]
        [--trajectory] [--window 5] [--min-rows 3]
        [--update-trajectory] [--runs-file FILE] [--no-record]

``--update`` rewrites ``BENCH_kernel.json`` from the current run after
the gate passes (refresh the baseline when the kernel gets faster);
``--update-trajectory`` appends the current measurement as a
``bench_kernel`` trajectory row after the gate passes. Every invocation
additionally self-records one ``check_perf`` gate-outcome row (disable
with ``--no-record``). Exit status 0 when within tolerance, 1 on
regression (2 on bad arguments or a missing/invalid baseline).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


_ensure_importable()

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks import bench_kernel  # noqa: E402
from repro.runs import (  # noqa: E402
    RunStore,
    fingerprint_id,
    kernel_metrics,
    record_run,
    seed_from_baseline,
    trajectory_median,
)

#: The acceptance floors, enforced on the committed baseline.
SMALL_SPEEDUP_FLOOR = 1.5
LARGE_SPEEDUP_FLOOR = 1.0
#: End-to-end pruned-vs-unpruned on the ≥0.9-identity workload.
PRUNED_SPEEDUP_FLOOR = 5.0
#: Block-tiled vs per-plane-barrier engine at >= 4 workers. The floor is
#: deliberately break-even: on fork-less hosts both engines fall back to
#: the identical serial sweep and the honest ratio is ~1.0; on any host
#: that actually forks, the barrier wall should put this well above it.
SCALING_SPEEDUP_FLOOR = 1.0


def load_baseline() -> dict:
    path = bench_kernel.baseline_path()
    if not path.exists():
        raise FileNotFoundError(
            f"{path.name} not found — generate it with "
            f"'PYTHONPATH=src python benchmarks/bench_kernel.py --write'"
        )
    doc = json.loads(path.read_text())
    if doc.get("schema") != bench_kernel.SCHEMA:
        raise ValueError(
            f"{path.name} schema {doc.get('schema')!r} != "
            f"{bench_kernel.SCHEMA!r} — regenerate with --write"
        )
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert the plane kernel has not regressed vs baseline"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per side (default: baseline config)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="max allowed fractional speedup regression vs the reference",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also enforce the tolerance on absolute cells/s "
        "(same-machine runs only)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run if the gate passes",
    )
    parser.add_argument(
        "--trajectory",
        action="store_true",
        help="gate against the rolling median of recorded "
        "same-fingerprint bench_kernel runs instead of the committed "
        "baseline (falls back to the baseline while the trajectory is "
        "thinner than --min-rows)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=5,
        help="trajectory rows the rolling median is taken over",
    )
    parser.add_argument(
        "--min-rows",
        type=int,
        default=3,
        help="same-fingerprint rows required before the trajectory "
        "replaces the committed baseline",
    )
    parser.add_argument(
        "--update-trajectory",
        action="store_true",
        help="append this run as a bench_kernel trajectory row if the "
        "gate passes",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip self-recording the gate outcome as a check_perf row",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0 or (args.repeats is not None and args.repeats < 1):
        parser.error("tolerance must be >= 0 and repeats >= 1")
    if args.window < 1 or args.min_rows < 1:
        parser.error("window and min-rows must be >= 1")

    try:
        baseline = load_baseline()
    except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
        print(f"FAIL: {exc}")
        return 2

    base_small = baseline["small_repeated"]["speedup"]
    base_large = baseline["large_sweep"]["speedup"]
    failures: list[str] = []
    if base_small < SMALL_SPEEDUP_FLOOR:
        failures.append(
            f"baseline small-repeated speedup {base_small:.2f}x is below "
            f"the {SMALL_SPEEDUP_FLOOR:.1f}x acceptance floor"
        )
    if base_large < LARGE_SPEEDUP_FLOOR:
        failures.append(
            f"baseline large-sweep speedup {base_large:.2f}x regresses "
            f"the reference kernel"
        )
    base_high = baseline.get("high_similarity")
    if base_high is None:
        failures.append(
            "baseline has no high_similarity section — regenerate it with "
            "'PYTHONPATH=src python benchmarks/bench_kernel.py --write'"
        )
        base_pruned = float("nan")
    else:
        base_pruned = base_high["speedup"]
        if base_pruned < PRUNED_SPEEDUP_FLOOR:
            failures.append(
                f"baseline high-similarity pruned speedup "
                f"{base_pruned:.2f}x is below the "
                f"{PRUNED_SPEEDUP_FLOOR:.1f}x acceptance floor"
            )
    # Unlike the optional legacy sections above, a missing scaling
    # section is a hard failure, not a skipped gate: every
    # bench-kernel/2 document carries one, so its absence means the
    # baseline was hand-edited — failing loudly beats a vacuous pass
    # with the block-tiled engine silently ungated.
    base_scaling = baseline.get("scaling")
    if base_scaling is None:
        failures.append(
            "baseline has no scaling section — the block-tiled engine "
            "gate has no reference; regenerate the baseline with "
            "'PYTHONPATH=src python benchmarks/bench_kernel.py --write'"
        )
        base_scale_speedup = float("nan")
    else:
        base_scale_speedup = base_scaling["speedup"]
        if base_scale_speedup < SCALING_SPEEDUP_FLOOR:
            failures.append(
                f"baseline scaling speedup {base_scale_speedup:.2f}x "
                f"(blocks vs shared at w="
                f"{base_scaling.get('gate_workers')}) is below the "
                f"{SCALING_SPEEDUP_FLOOR:.1f}x acceptance floor"
            )

    store = RunStore(args.runs_file)
    fp = fingerprint_id()
    if args.trajectory:
        # A fresh checkout has no rows yet: migrate the committed
        # baseline as the seed so the trend view is never empty (it
        # carries the sentinel "baseline" fingerprint, so the gate below
        # still falls back to the committed file until real
        # same-machine rows accumulate).
        seed_from_baseline(store, bench_kernel.baseline_path())

    config = dict(baseline["config"])
    if args.repeats is not None:
        config["repeats"] = args.repeats
    t0 = time.perf_counter()
    doc = bench_kernel.run(config)
    wall = time.perf_counter() - t0
    print(bench_kernel.summarise(doc))

    scale = 1.0 - args.tolerance
    gates = [
        ("small_repeated", "small_speedup", "small"),
        ("large_sweep", "large_speedup", "large"),
    ]
    if base_high is not None:
        gates.append(("high_similarity", "pruned_speedup", "pruned"))
    if base_scaling is not None:
        gates.append(("scaling", "scaling_speedup", "scaling"))
    for name, metric, label in gates:
        now = doc[name]["speedup"]
        ref = baseline[name]["speedup"]
        source = "baseline"
        if args.trajectory:
            median, values = trajectory_median(
                store,
                metric,
                fp=fp,
                window=args.window,
                min_rows=args.min_rows,
            )
            if median is not None:
                ref = median
                source = (
                    f"trajectory median of {len(values)} run(s) "
                    f"[fp {fp[:8]}]"
                )
            else:
                source = (
                    f"baseline (trajectory has {len(values)} "
                    f"same-fingerprint row(s) < {args.min_rows})"
                )
        print(f"{label} reference: {ref:.2f}x from {source}")
        if now < ref * scale:
            failures.append(
                f"{label} speedup {now:.2f}x regressed more than "
                f"{args.tolerance:.0%} below {source} {ref:.2f}x"
            )
        if args.absolute:
            # The high_similarity section reports seconds, not cells/s
            # (pruned work is not cube-proportional); the ratio gate
            # above already covers it machine-neutrally.
            now_abs = doc[name].get("new_cells_per_s")
            base_abs = baseline[name].get("new_cells_per_s")
            if now_abs is None or base_abs is None:
                continue
            if now_abs < base_abs * scale:
                failures.append(
                    f"{label} throughput {now_abs:,.0f} cells/s "
                    f"regressed more than {args.tolerance:.0%} below "
                    f"baseline {base_abs:,.0f}"
                )

    passed = not failures
    record_run(
        "check_perf",
        config={
            "trajectory": args.trajectory,
            "tolerance": args.tolerance,
            "window": args.window,
            "min_rows": args.min_rows,
            "absolute": args.absolute,
            "bench_config": doc["config"],
        },
        metrics={**kernel_metrics(doc), "passed": float(passed)},
        wall_s=wall,
        runs_file=args.runs_file,
        enabled=not args.no_record,
        git_dir=bench_kernel.baseline_path().parent,
    )

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1

    print(
        f"OK: small {doc['small_repeated']['speedup']:.2f}x "
        f"(baseline {base_small:.2f}x), "
        f"large {doc['large_sweep']['speedup']:.2f}x "
        f"(baseline {base_large:.2f}x), "
        f"pruned {doc['high_similarity']['speedup']:.2f}x "
        f"(baseline {base_pruned:.2f}x), "
        f"scaling {doc['scaling']['speedup']:.2f}x "
        f"(baseline {base_scale_speedup:.2f}x), "
        f"tolerance {args.tolerance:.0%}"
    )
    if args.update:
        path = bench_kernel.baseline_path()
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {path.name}")
    if args.update_trajectory:
        record = record_run(
            "bench_kernel",
            config=doc["config"],
            metrics=kernel_metrics(doc),
            wall_s=wall,
            runs_file=args.runs_file,
            git_dir=bench_kernel.baseline_path().parent,
        )
        if record is not None:
            rows = len(store.records(kind="bench_kernel", fp=fp))
            print(
                f"trajectory updated: {rows} same-fingerprint row(s) "
                f"in {store.path.name}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
