#!/usr/bin/env python
"""Guard against plane-kernel performance regressions.

Re-runs ``benchmarks/bench_kernel.py`` with the workload config stored
in the committed baseline (``BENCH_kernel.json``) and fails when the
kernel has lost its edge:

* the **baseline document** must itself satisfy the acceptance
  criterion — ≥ 1.5x speedup over the frozen reference kernel on the
  repeated-small-plane (Hirschberg-style) workload and no regression
  (≥ 1.0x) on the single large sweep;
* the **measured speedups** of the current checkout must not regress
  more than ``--tolerance`` (default 20%) below the baseline's.

Speedup ratios (new kernel vs the frozen in-process reference kernel,
timed back to back) are the primary gate because they are
machine-neutral: a slower CI box scales both sides equally. Absolute
cells/s are printed for the trajectory and enforced only with
``--absolute``, for use on the machine that wrote the baseline.

Usage::

    PYTHONPATH=src python tools/check_perf.py [--repeats 3]
        [--tolerance 0.20] [--absolute] [--update]

``--update`` rewrites ``BENCH_kernel.json`` from the current run after
the gate passes (refresh the baseline when the kernel gets faster).
Exit status 0 when within tolerance, 1 on regression (2 on bad
arguments or a missing/invalid baseline).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        sys.path.insert(0, str(src))


_ensure_importable()

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks import bench_kernel  # noqa: E402

#: The PR's acceptance floor, enforced on the committed baseline.
SMALL_SPEEDUP_FLOOR = 1.5
LARGE_SPEEDUP_FLOOR = 1.0


def load_baseline() -> dict:
    path = bench_kernel.baseline_path()
    if not path.exists():
        raise FileNotFoundError(
            f"{path.name} not found — generate it with "
            f"'PYTHONPATH=src python benchmarks/bench_kernel.py --write'"
        )
    doc = json.loads(path.read_text())
    if doc.get("schema") != bench_kernel.SCHEMA:
        raise ValueError(
            f"{path.name} schema {doc.get('schema')!r} != "
            f"{bench_kernel.SCHEMA!r} — regenerate with --write"
        )
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert the plane kernel has not regressed vs baseline"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per side (default: baseline config)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="max allowed fractional speedup regression vs baseline",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also enforce the tolerance on absolute cells/s "
        "(same-machine runs only)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run if the gate passes",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0 or (args.repeats is not None and args.repeats < 1):
        parser.error("tolerance must be >= 0 and repeats >= 1")

    try:
        baseline = load_baseline()
    except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
        print(f"FAIL: {exc}")
        return 2

    base_small = baseline["small_repeated"]["speedup"]
    base_large = baseline["large_sweep"]["speedup"]
    failures: list[str] = []
    if base_small < SMALL_SPEEDUP_FLOOR:
        failures.append(
            f"baseline small-repeated speedup {base_small:.2f}x is below "
            f"the {SMALL_SPEEDUP_FLOOR:.1f}x acceptance floor"
        )
    if base_large < LARGE_SPEEDUP_FLOOR:
        failures.append(
            f"baseline large-sweep speedup {base_large:.2f}x regresses "
            f"the reference kernel"
        )

    config = dict(baseline["config"])
    if args.repeats is not None:
        config["repeats"] = args.repeats
    doc = bench_kernel.run(config)
    print(bench_kernel.summarise(doc))

    scale = 1.0 - args.tolerance
    for name, floor_note in (("small_repeated", "small"), ("large_sweep", "large")):
        now = doc[name]["speedup"]
        base = baseline[name]["speedup"]
        if now < base * scale:
            failures.append(
                f"{floor_note} speedup {now:.2f}x regressed more than "
                f"{args.tolerance:.0%} below baseline {base:.2f}x"
            )
        if args.absolute:
            now_abs = doc[name]["new_cells_per_s"]
            base_abs = baseline[name]["new_cells_per_s"]
            if now_abs < base_abs * scale:
                failures.append(
                    f"{floor_note} throughput {now_abs:,.0f} cells/s "
                    f"regressed more than {args.tolerance:.0%} below "
                    f"baseline {base_abs:,.0f}"
                )

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1

    print(
        f"OK: small {doc['small_repeated']['speedup']:.2f}x "
        f"(baseline {base_small:.2f}x), "
        f"large {doc['large_sweep']['speedup']:.2f}x "
        f"(baseline {base_large:.2f}x), tolerance {args.tolerance:.0%}"
    )
    if args.update:
        path = bench_kernel.baseline_path()
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
