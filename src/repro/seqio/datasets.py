"""Bundled sequence fragments used by examples and benchmarks.

The paper family evaluates on globin-style protein triples (the classic
three-sequence alignment demonstration since Murata et al. 1985 aligned
alpha-, beta-globin and myoglobin) and on nucleotide sequences. Shipping a
few short fragments inline keeps the examples runnable offline; lengths are
kept modest because exact three-way alignment is O(n^3).

These fragments are *illustrative* globin-family N-terminal regions; the
benchmarks that need controlled lengths/similarities use
:mod:`repro.seqio.generate` instead.
"""

from __future__ import annotations

# N-terminal fragments of the three classic globins (alpha, beta, myoglobin).
_HBA_FRAGMENT = (
    "MVLSPADKTNVKAAWGKVGAHAGEYGAEALERMFLSFPTTKTYFPHFDLSHGSAQVKGHGKKVADALTNAVAHVDD"
)
_HBB_FRAGMENT = (
    "MVHLTPEEKSAVTALWGKVNVDEVGGEALGRLLVVYPWTQRFFESFGDLSTPDAVMGNPKVKAHGKKVLGAFSDGL"
)
_MYG_FRAGMENT = (
    "MGLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGI"
)

# Short homologous DNA fragments (synthetic but fixed, mimicking a conserved
# coding region with scattered substitutions and small indels).
_DNA_A = (
    "ATGGCTCTGTGGATGCGCCTCCTGCCCCTGCTGGCGCTGCTGGCCCTCTGGGGACCTGACCCAGCCGCAGCC"
)
_DNA_B = (
    "ATGGCACTGTGGATGCGTTTCCTGCCCCTGCTGGCGCTGCTGGCCCTGTGGGGACCAGACCCAGCAGCC"
)
_DNA_C = (
    "ATGGCTCTGTGGATACGCCTCCTGCCTCTGCTGGCGTTGCTGGCCCTCTGGGGACCTGACACAGCCGCAGCCGCC"
)

_DATASETS: dict[str, dict[str, object]] = {
    "globins": {
        "alphabet": "protein",
        "description": "N-terminal fragments of alpha-globin, beta-globin "
        "and myoglobin — the canonical three-sequence alignment example.",
        "records": [
            ("HBA_fragment", _HBA_FRAGMENT),
            ("HBB_fragment", _HBB_FRAGMENT),
            ("MYG_fragment", _MYG_FRAGMENT),
        ],
    },
    "insulin_dna": {
        "alphabet": "dna",
        "description": "Homologous signal-peptide-like DNA fragments with "
        "scattered substitutions and small indels.",
        "records": [
            ("dnaA", _DNA_A),
            ("dnaB", _DNA_B),
            ("dnaC", _DNA_C),
        ],
    },
}


def list_datasets() -> list[str]:
    """Names of all bundled datasets."""
    return sorted(_DATASETS)


def load_dataset(name: str) -> dict[str, object]:
    """Load a bundled dataset by name.

    Returns a dict with keys ``alphabet`` (str), ``description`` (str) and
    ``records`` (list of ``(header, sequence)``).
    """
    try:
        entry = _DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {list_datasets()}"
        ) from None
    # Return a shallow copy so callers cannot mutate the registry.
    return {
        "alphabet": entry["alphabet"],
        "description": entry["description"],
        "records": list(entry["records"]),  # type: ignore[arg-type]
    }


def bundled_sequences(name: str) -> list[str]:
    """Just the three sequence strings of dataset ``name``."""
    return [seq for _hdr, seq in load_dataset(name)["records"]]  # type: ignore[union-attr]
