"""Minimal FASTA reader/writer.

Supports the subset of FASTA that alignment workloads need: ``>`` headers,
multi-line wrapped sequence bodies, ``;`` comment lines, and blank lines.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator


def parse_fasta(text: str) -> list[tuple[str, str]]:
    """Parse FASTA-formatted ``text`` into ``(header, sequence)`` pairs.

    The header is everything after ``>`` up to the newline, stripped.
    Sequence lines are concatenated with internal whitespace removed.
    """
    records: list[tuple[str, str]] = []
    header: str | None = None
    chunks: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            if header is not None:
                records.append((header, "".join(chunks)))
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError(
                    f"line {lineno}: sequence data before any '>' header"
                )
            chunks.append("".join(line.split()))
    if header is not None:
        records.append((header, "".join(chunks)))
    return records


def read_fasta(path: str | os.PathLike) -> list[tuple[str, str]]:
    """Read a FASTA file from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_fasta(fh.read())


def format_fasta(
    records: Iterable[tuple[str, str]],
    width: int = 70,
) -> str:
    """Format ``(header, sequence)`` pairs as a FASTA string.

    ``width`` controls the line-wrapping of sequence bodies; ``0`` disables
    wrapping.
    """
    if width < 0:
        raise ValueError(f"width must be >= 0, got {width}")
    out: list[str] = []
    for header, seq in records:
        if "\n" in header:
            raise ValueError("FASTA headers cannot contain newlines")
        out.append(f">{header}")
        if width == 0 or not seq:
            out.append(seq)
        else:
            out.extend(seq[i : i + width] for i in range(0, len(seq), width))
    return "\n".join(out) + "\n"


def write_fasta(
    path: str | os.PathLike,
    records: Iterable[tuple[str, str]],
    width: int = 70,
) -> None:
    """Write ``records`` to ``path`` in FASTA format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(format_fasta(records, width=width))


def iter_fasta(path: str | os.PathLike) -> Iterator[tuple[str, str]]:
    """Stream records from a FASTA file one at a time.

    Unlike :func:`read_fasta` this never holds more than one record in
    memory, which matters for genome-scale inputs.
    """
    header: str | None = None
    chunks: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            if line.startswith(">"):
                if header is not None:
                    yield header, "".join(chunks)
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise ValueError("sequence data before any '>' header")
                chunks.append("".join(line.split()))
    if header is not None:
        yield header, "".join(chunks)
