"""Sequence input/output substrate.

Provides alphabets with integer encodings (the DP kernels work on ``uint8``
code arrays), a small FASTA reader/writer, seeded synthetic sequence
generators (random sequences and mutated families descending from a common
ancestor), and a handful of bundled real sequence fragments used by the
examples and benchmarks.
"""

from repro.seqio.alphabet import (
    Alphabet,
    DNA,
    RNA,
    PROTEIN,
    GAP_CHAR,
    guess_alphabet,
    guess_common_alphabet,
)
from repro.seqio.fasta import read_fasta, write_fasta, parse_fasta, format_fasta
from repro.seqio.generate import (
    random_sequence,
    mutate_sequence,
    mutated_family,
    mutate_with_blocks,
    block_indel_family,
    MutationModel,
)
from repro.seqio.datasets import bundled_sequences, list_datasets, load_dataset
from repro.seqio.clustal import format_clustal, parse_clustal

__all__ = [
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "GAP_CHAR",
    "guess_alphabet",
    "guess_common_alphabet",
    "read_fasta",
    "write_fasta",
    "parse_fasta",
    "format_fasta",
    "random_sequence",
    "mutate_sequence",
    "mutated_family",
    "mutate_with_blocks",
    "block_indel_family",
    "MutationModel",
    "bundled_sequences",
    "format_clustal",
    "parse_clustal",
    "list_datasets",
    "load_dataset",
]
