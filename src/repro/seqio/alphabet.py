"""Alphabets and integer encodings for sequences.

All DP kernels operate on ``numpy.uint8`` code arrays so that substitution
scores can be gathered with plain integer indexing (``matrix[codes_a[:,None],
codes_b[None,:]]``); this module owns the string<->code mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Character used for gaps in rendered alignments.
GAP_CHAR = "-"


@dataclass(frozen=True)
class Alphabet:
    """An ordered residue alphabet with a bidirectional integer encoding.

    Parameters
    ----------
    name:
        Human-readable identifier (``"dna"``, ``"protein"``...).
    letters:
        The residue characters in code order; code of ``letters[i]`` is ``i``.
    wildcard:
        Optional character accepted on input and mapped to code
        ``len(letters)`` (scored as a neutral residue by scoring schemes that
        support it) — e.g. ``N`` for DNA, ``X`` for protein.
    """

    name: str
    letters: str
    wildcard: str | None = None
    _index: dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.letters)) != len(self.letters):
            raise ValueError(f"alphabet {self.name!r} has duplicate letters")
        if GAP_CHAR in self.letters:
            raise ValueError("the gap character cannot be an alphabet letter")
        index = {ch: i for i, ch in enumerate(self.letters)}
        if self.wildcard is not None:
            if self.wildcard in index:
                raise ValueError("wildcard collides with an alphabet letter")
            index[self.wildcard] = len(self.letters)
        object.__setattr__(self, "_index", index)

    @property
    def size(self) -> int:
        """Number of distinct codes (letters plus wildcard if present)."""
        return len(self.letters) + (1 if self.wildcard is not None else 0)

    def encode(self, seq: str) -> np.ndarray:
        """Encode ``seq`` into a ``uint8`` code array.

        Raises ``ValueError`` on characters outside the alphabet. Lowercase
        input is accepted and upcased.
        """
        seq = seq.upper()
        try:
            return np.fromiter(
                (self._index[ch] for ch in seq), dtype=np.uint8, count=len(seq)
            )
        except KeyError as exc:
            raise ValueError(
                f"character {exc.args[0]!r} is not in alphabet {self.name!r}"
            ) from None

    def decode(self, codes: np.ndarray) -> str:
        """Inverse of :meth:`encode`."""
        table = self.letters + (self.wildcard or "")
        out = []
        for c in np.asarray(codes, dtype=np.int64):
            if not 0 <= c < len(table):
                raise ValueError(f"code {c} outside alphabet {self.name!r}")
            out.append(table[c])
        return "".join(out)

    def is_valid(self, seq: str) -> bool:
        """True when every character of ``seq`` encodes successfully."""
        return all(ch in self._index for ch in seq.upper())

    def __contains__(self, ch: str) -> bool:
        return ch.upper() in self._index


#: The four DNA nucleotides, with ``N`` as wildcard.
DNA = Alphabet("dna", "ACGT", wildcard="N")

#: The four RNA nucleotides, with ``N`` as wildcard.
RNA = Alphabet("rna", "ACGU", wildcard="N")

#: The twenty standard amino acids (BLOSUM/PAM order: alphabetical by
#: one-letter code), with ``X`` as wildcard.
PROTEIN = Alphabet("protein", "ARNDCQEGHILKMFPSTWYV", wildcard="X")


def guess_alphabet(seq: str) -> Alphabet:
    """Guess the alphabet of ``seq`` (DNA first, then RNA, then protein).

    Raises ``ValueError`` when no bundled alphabet matches.
    """
    for alpha in (DNA, RNA, PROTEIN):
        if alpha.is_valid(seq):
            return alpha
    raise ValueError("sequence does not match any bundled alphabet")


def guess_common_alphabet(seqs: Sequence[str]) -> Alphabet:
    """Guess one alphabet for a family of sequences, guessing per sequence.

    Empty sequences are uninformative and skipped (an all-empty family
    guesses DNA, matching :func:`guess_alphabet` on a trivial input). When
    the per-sequence guesses disagree — e.g. a DNA read next to a protein
    chain — this raises ``ValueError`` rather than silently scoring every
    sequence under the widest alphabet that happens to accept all of them,
    which is how a mixed request used to pick BLOSUM62 for nucleotides.
    Callers that really mean it (a peptide spelled in ``ACGT`` letters
    next to longer chains) should pass an explicit scheme instead.
    """
    guesses: list[Alphabet] = []
    for seq in seqs:
        if seq:
            guesses.append(guess_alphabet(seq))
    if not guesses:
        return DNA
    first = guesses[0]
    if any(g is not first for g in guesses[1:]):
        names = ", ".join(g.name for g in guesses)
        raise ValueError(
            f"sequences guess mixed alphabets ({names}); pass an explicit "
            "ScoringScheme to align across alphabets"
        )
    return first
