"""Clustal-style alignment rendering and parsing.

The interchange format most alignment viewers accept: a header line,
blank line, then blocks of ``name  chunk`` rows with a conservation line.
Supported for both :class:`~repro.core.types.Alignment3` and
:class:`~repro.msa.types.MultiAlignment` via plain (names, rows) pairs so
this module stays dependency-light.
"""

from __future__ import annotations

from typing import Sequence

from repro.seqio.alphabet import GAP_CHAR

_HEADER = "CLUSTAL W (repro) multiple sequence alignment"


def conservation_line(rows: Sequence[str], column_slice: slice) -> str:
    """The Clustal conservation markers for a block of columns.

    ``*`` — column fully conserved (identical residues, no gaps);
    ``:`` — all residues present (no gaps) but not identical;
    space — at least one gap.

    (The real Clustal distinguishes strong/weak groups; this simplified
    convention is documented and deterministic.)
    """
    out = []
    for col in zip(*(row[column_slice] for row in rows)):
        if any(ch == GAP_CHAR for ch in col):
            out.append(" ")
        elif all(ch == col[0] for ch in col):
            out.append("*")
        else:
            out.append(":")
    return "".join(out)


def format_clustal(
    names: Sequence[str],
    rows: Sequence[str],
    width: int = 60,
) -> str:
    """Render aligned ``rows`` with ``names`` in Clustal block format."""
    if len(names) != len(rows):
        raise ValueError("names/rows length mismatch")
    if not rows:
        raise ValueError("no rows to format")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise ValueError("rows have unequal lengths")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    for name in names:
        if any(ch.isspace() for ch in name):
            raise ValueError(f"Clustal names cannot contain whitespace: {name!r}")

    label_w = max(len(n) for n in names) + 2
    total = len(rows[0])
    out = [_HEADER, ""]
    for start in range(0, total, width):
        block = slice(start, min(start + width, total))
        for name, row in zip(names, rows):
            out.append(f"{name:<{label_w}}{row[block]}")
        out.append(" " * label_w + conservation_line(rows, block))
        out.append("")
    if total == 0:
        for name in names:
            out.append(f"{name:<{label_w}}")
        out.append("")
    return "\n".join(out) + "\n"


def parse_clustal(text: str) -> list[tuple[str, str]]:
    """Parse Clustal-format ``text`` back into ``(name, row)`` pairs.

    Tolerates any first line starting with ``CLUSTAL`` and ignores
    conservation lines (they never start with a non-space character).
    """
    lines = text.splitlines()
    if not lines or not lines[0].upper().startswith("CLUSTAL"):
        raise ValueError("not a Clustal file (missing CLUSTAL header)")
    chunks: dict[str, list[str]] = {}
    order: list[str] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        if line[0].isspace():
            continue  # conservation line
        parts = line.split()
        if len(parts) < 2:
            # A name with an empty (zero-length) alignment block.
            name = parts[0]
            if name not in chunks:
                chunks[name] = []
                order.append(name)
            continue
        name, chunk = parts[0], parts[1]
        if name not in chunks:
            chunks[name] = []
            order.append(name)
        chunks[name].append(chunk)
    if not order:
        raise ValueError("Clustal file contains no sequence rows")
    records = [(name, "".join(chunks[name])) for name in order]
    lengths = {len(r) for _n, r in records}
    if len(lengths) != 1:
        raise ValueError("Clustal rows have unequal reconstructed lengths")
    return records
