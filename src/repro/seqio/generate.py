"""Seeded synthetic sequence generators.

The paper-family evaluation controls two workload knobs: sequence *length*
(DP cost is the product of the three lengths) and pairwise *similarity*
(which drives Carrillo–Lipman pruning effectiveness and the heuristic
optimality gap). Both are controlled here: :func:`random_sequence` draws
i.i.d. residues, and :func:`mutated_family` evolves three descendants from a
common random ancestor under a point-mutation/indel model, so that the three
sequences share homology the way real alignment inputs do.

All functions take an explicit integer ``seed`` and are deterministic given
it (``numpy.random.default_rng`` underneath).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seqio.alphabet import DNA, Alphabet
from repro.util.validation import check_in_range, check_positive


def random_sequence(
    length: int,
    alphabet: Alphabet = DNA,
    seed: int = 0,
) -> str:
    """Draw a uniform i.i.d. sequence of ``length`` residues.

    Wildcard codes are never emitted.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, len(alphabet.letters), size=length)
    return "".join(alphabet.letters[c] for c in codes)


@dataclass(frozen=True)
class MutationModel:
    """Per-site mutation probabilities applied independently at each residue.

    Parameters
    ----------
    substitution:
        Probability that a site is replaced by a *different* uniformly-drawn
        residue.
    insertion:
        Probability that a uniformly-drawn residue is inserted before a site.
    deletion:
        Probability that a site is deleted.
    """

    substitution: float = 0.1
    insertion: float = 0.02
    deletion: float = 0.02

    def __post_init__(self) -> None:
        check_in_range("substitution", self.substitution, 0.0, 1.0)
        check_in_range("insertion", self.insertion, 0.0, 1.0)
        check_in_range("deletion", self.deletion, 0.0, 1.0)
        if self.insertion + self.deletion > 1.0:
            raise ValueError("insertion + deletion must be <= 1")

    def scaled(self, factor: float) -> "MutationModel":
        """A model with every rate multiplied by ``factor`` (clipped to 1)."""
        check_positive("factor", factor)
        return MutationModel(
            substitution=min(1.0, self.substitution * factor),
            insertion=min(1.0, self.insertion * factor),
            deletion=min(1.0, self.deletion * factor),
        )


def mutate_sequence(
    seq: str,
    model: MutationModel,
    alphabet: Alphabet = DNA,
    seed: int = 0,
) -> str:
    """Apply ``model`` to ``seq`` once and return the mutated sequence."""
    rng = np.random.default_rng(seed)
    letters = alphabet.letters
    k = len(letters)
    out: list[str] = []
    for ch in seq:
        if rng.random() < model.insertion:
            out.append(letters[rng.integers(0, k)])
        if rng.random() < model.deletion:
            continue
        if rng.random() < model.substitution:
            # Substitute with a different residue: pick among the other k-1.
            cur = letters.index(ch) if ch in letters else rng.integers(0, k)
            off = int(rng.integers(1, k))
            out.append(letters[(cur + off) % k])
        else:
            out.append(ch)
    # A trailing insertion position (after the final residue).
    if rng.random() < model.insertion:
        out.append(letters[rng.integers(0, k)])
    return "".join(out)


def mutated_family(
    ancestor_length: int,
    model: MutationModel | None = None,
    count: int = 3,
    alphabet: Alphabet = DNA,
    seed: int = 0,
) -> list[str]:
    """Generate ``count`` descendants of a common random ancestor.

    Each descendant is an independent mutation of the same ancestor, so all
    pairwise similarities are controlled by ``model``. This is the standard
    synthetic workload for multi-sequence alignment evaluation when real
    traces are unavailable.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    model = model or MutationModel()
    ancestor = random_sequence(ancestor_length, alphabet=alphabet, seed=seed)
    return [
        mutate_sequence(ancestor, model, alphabet=alphabet, seed=seed + 1 + i)
        for i in range(count)
    ]


def mutate_with_blocks(
    seq: str,
    model: MutationModel,
    alphabet: Alphabet = DNA,
    seed: int = 0,
    block_rate: float = 0.01,
    mean_block: float = 5.0,
) -> str:
    """Point mutations plus geometric-length *block* indels.

    Real indel events insert or delete runs of residues, which is what
    affine gap models reward; the per-site model of
    :func:`mutate_sequence` produces scattered single-residue indels
    instead. Here, after point substitution/indel mutation, each position
    additionally triggers (with probability ``block_rate``) a block event:
    a coin picks insertion or deletion, and the block length is geometric
    with mean ``mean_block``.
    """
    check_in_range("block_rate", block_rate, 0.0, 1.0)
    check_positive("mean_block", mean_block)
    rng = np.random.default_rng(seed)
    base = mutate_sequence(seq, model, alphabet=alphabet, seed=seed + 1)
    letters = alphabet.letters
    k = len(letters)
    p_stop = 1.0 / mean_block
    out: list[str] = []
    i = 0
    while i < len(base):
        if rng.random() < block_rate:
            length = 1 + int(rng.geometric(p_stop)) - 1
            length = max(1, length)
            if rng.random() < 0.5:
                # Block insertion before position i.
                out.extend(
                    letters[rng.integers(0, k)] for _ in range(length)
                )
            else:
                # Block deletion starting at position i.
                i += length
                continue
        if i < len(base):
            out.append(base[i])
        i += 1
    return "".join(out)


def block_indel_family(
    ancestor_length: int,
    count: int = 3,
    seed: int = 0,
    alphabet: Alphabet = DNA,
    substitution: float = 0.08,
    block_rate: float = 0.02,
    mean_block: float = 5.0,
) -> list[str]:
    """A family whose members differ by point substitutions and block
    indels — the workload where affine gaps beat linear gaps clearly."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    ancestor = random_sequence(ancestor_length, alphabet=alphabet, seed=seed)
    model = MutationModel(substitution=substitution, insertion=0.0, deletion=0.0)
    return [
        mutate_with_blocks(
            ancestor,
            model,
            alphabet=alphabet,
            seed=seed + 11 * (i + 1),
            block_rate=block_rate,
            mean_block=mean_block,
        )
        for i in range(count)
    ]


def identity_fraction(a: str, b: str) -> float:
    """Fraction of matching positions over the shorter length (crude
    similarity estimate used for workload reporting, not for alignment)."""
    n = min(len(a), len(b))
    if n == 0:
        return 0.0
    matches = sum(1 for x, y in zip(a, b) if x == y)
    return matches / n
