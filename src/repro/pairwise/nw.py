"""Needleman–Wunsch global pairwise alignment (linear gap model).

Two fill strategies are provided:

* a scalar reference fill (:func:`nw_matrix`) that also records moves for
  traceback, and
* a vectorised score-only row fill (:func:`nw_score_last_row`) based on the
  running-maximum trick: with a linear gap ``g`` the in-row dependency
  ``D[i, j-1] + g`` telescopes, so subtracting ``g*j`` turns the row update
  into ``numpy.maximum.accumulate`` — the whole row becomes three
  vectorised passes with no Python-level inner loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.pairwise.types import Alignment2
from repro.seqio.alphabet import GAP_CHAR

#: Finite stand-in for minus infinity (same sentinel as the 3-D engines).
NEG = -1.0e30

#: Pairwise move encoding: bit 0 advances x (rows), bit 1 advances y.
MOVE_X, MOVE_Y, MOVE_XY = 1, 2, 3


def nw_matrix(
    sx: str, sy: str, scheme: ScoringScheme
) -> tuple[np.ndarray, np.ndarray]:
    """Full score and move matrices (scalar reference fill).

    Returns ``(D, M)`` of shape ``(len(sx)+1, len(sy)+1)``; ``M`` holds the
    arrival move of each cell (0 at the origin).
    """
    n, m = len(sx), len(sy)
    sub = scheme.pairwise_profile(sx, sy)
    g = scheme.gap
    D = np.empty((n + 1, m + 1), dtype=np.float64)
    M = np.zeros((n + 1, m + 1), dtype=np.int8)
    D[0, 0] = 0.0
    for j in range(1, m + 1):
        D[0, j] = j * g
        M[0, j] = MOVE_Y
    for i in range(1, n + 1):
        D[i, 0] = i * g
        M[i, 0] = MOVE_X
        row_up = D[i - 1]
        row = D[i]
        for j in range(1, m + 1):
            diag = row_up[j - 1] + sub[i - 1, j - 1]
            up = row_up[j] + g
            left = row[j - 1] + g
            if diag >= up and diag >= left:
                row[j] = diag
                M[i, j] = MOVE_XY
            elif up >= left:
                row[j] = up
                M[i, j] = MOVE_X
            else:
                row[j] = left
                M[i, j] = MOVE_Y
    return D, M


def align2(sx: str, sy: str, scheme: ScoringScheme) -> Alignment2:
    """Optimal global pairwise alignment with traceback."""
    D, M = nw_matrix(sx, sy, scheme)
    i, j = len(sx), len(sy)
    ra: list[str] = []
    rb: list[str] = []
    while (i, j) != (0, 0):
        mv = int(M[i, j])
        if mv == MOVE_XY:
            ra.append(sx[i - 1])
            rb.append(sy[j - 1])
            i, j = i - 1, j - 1
        elif mv == MOVE_X:
            ra.append(sx[i - 1])
            rb.append(GAP_CHAR)
            i -= 1
        elif mv == MOVE_Y:
            ra.append(GAP_CHAR)
            rb.append(sy[j - 1])
            j -= 1
        else:  # pragma: no cover - would indicate a fill bug
            raise RuntimeError(f"broken traceback at ({i},{j})")
    rows = ("".join(reversed(ra)), "".join(reversed(rb)))
    return Alignment2(
        rows=rows,
        score=float(D[len(sx), len(sy)]),
        meta={"engine": "nw"},
    )


def score2(sx: str, sy: str, scheme: ScoringScheme) -> float:
    """Optimal global pairwise score (vectorised, O(m) memory)."""
    return float(nw_score_last_row(sx, sy, scheme)[len(sy)])


def nw_score_last_row(
    sx: str, sy: str, scheme: ScoringScheme
) -> np.ndarray:
    """The last row ``D[len(sx), :]`` of the NW matrix, vectorised.

    Row recurrence with linear gap ``g``::

        D[i, j] = max(base[j], max_{j' < j} base[j'] + g*(j - j'))
        base[j] = max(D[i-1, j] + g, D[i-1, j-1] + sub[i-1, j-1])

    Subtracting ``g*j`` makes the second term a prefix running maximum.
    """
    n, m = len(sx), len(sy)
    g = scheme.gap
    jg = np.arange(m + 1) * g
    prev = jg.copy()  # row 0
    if n == 0:
        return prev
    sub = scheme.pairwise_profile(sx, sy)
    for i in range(1, n + 1):
        base = np.empty(m + 1)
        base[0] = i * g
        np.maximum(prev[1:] + g, prev[:-1] + sub[i - 1], out=base[1:])
        # In-row gap chain: D[i, j] = g*j + cummax(base - g*j).
        shifted = base - jg
        np.maximum.accumulate(shifted, out=shifted)
        prev = shifted + jg
    return prev


def score2_matrixfree(sx: str, sy: str, scheme: ScoringScheme) -> float:
    """Scalar two-row score computation (reference for the vectorised row).

    Kept as an independently-coded oracle for property tests.
    """
    n, m = len(sx), len(sy)
    g = scheme.gap
    sub = scheme.pairwise_profile(sx, sy)
    prev = [j * g for j in range(m + 1)]
    for i in range(1, n + 1):
        cur = [i * g] + [0.0] * m
        for j in range(1, m + 1):
            cur[j] = max(
                prev[j - 1] + sub[i - 1, j - 1],
                prev[j] + g,
                cur[j - 1] + g,
            )
        prev = cur
    return float(prev[m])
