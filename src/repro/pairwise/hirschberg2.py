"""Linear-space pairwise alignment (classic 2-D Hirschberg).

The 2-D analogue of :mod:`repro.core.hirschberg`: split ``sx`` at its
midpoint, combine the forward last row of the top half with the backward
last row of the bottom half to find the crossing column, recurse. O(m)
memory, roughly twice the work of a single score pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.pairwise.nw import align2, nw_score_last_row
from repro.pairwise.types import Alignment2
from repro.seqio.alphabet import GAP_CHAR

#: Subproblem area below which the full-matrix fill is used directly.
_BASE_AREA = 4096


def _solve(sx: str, sy: str, scheme: ScoringScheme) -> list[tuple[str, str]]:
    n, m = len(sx), len(sy)
    if (n + 1) * (m + 1) <= _BASE_AREA or n < 2:
        return list(align2(sx, sy, scheme).columns())
    mid = n // 2
    fwd = nw_score_last_row(sx[:mid], sy, scheme)
    bwd = nw_score_last_row(sx[mid:][::-1], sy[::-1], scheme)[::-1]
    j_star = int(np.argmax(fwd + bwd))
    left = _solve(sx[:mid], sy[:j_star], scheme)
    right = _solve(sx[mid:], sy[j_star:], scheme)
    return left + right


def align2_linear_space(
    sx: str, sy: str, scheme: ScoringScheme
) -> Alignment2:
    """Optimal global pairwise alignment in O(min-side) memory."""
    if scheme.is_affine:
        raise ValueError(
            "align2_linear_space implements the linear gap model; "
            "use repro.pairwise.gotoh for affine gaps"
        )
    cols = _solve(sx, sy, scheme)
    rows = tuple("".join(c[r] for c in cols) for r in range(2))
    score = sum(scheme.pair_score(x, y) for x, y in cols)
    # Defensive: the reconstruction must consume the inputs exactly.
    if rows[0].replace(GAP_CHAR, "") != sx or rows[1].replace(GAP_CHAR, "") != sy:
        raise RuntimeError("linear-space traceback lost residues")
    return Alignment2(
        rows=rows,  # type: ignore[arg-type]
        score=float(score),
        meta={"engine": "hirschberg2"},
    )
