"""Gotoh affine-gap global pairwise alignment.

Three-state DP: ``M`` (last column is a match/mismatch), ``X`` (last column
consumes ``sx`` against a gap), ``Y`` (gap against ``sy``-consuming column).
Opening a gap run costs ``gap_open + gap``; extending costs ``gap``.

Used by the affine heuristic baselines and as the pairwise ground truth for
the affine three-sequence engine's degenerate cases.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.pairwise.types import Alignment2
from repro.seqio.alphabet import GAP_CHAR

NEG = -1.0e30

_STATE_M, _STATE_X, _STATE_Y = 0, 1, 2


def _fill(
    sx: str, sy: str, scheme: ScoringScheme
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill the three state matrices; returns ``(M, X, Y)``."""
    n, m = len(sx), len(sy)
    g, go = scheme.gap, scheme.gap_open
    sub = scheme.pairwise_profile(sx, sy)
    M = np.full((n + 1, m + 1), NEG)
    X = np.full((n + 1, m + 1), NEG)
    Y = np.full((n + 1, m + 1), NEG)
    M[0, 0] = 0.0
    for i in range(1, n + 1):
        X[i, 0] = go + i * g
    for j in range(1, m + 1):
        Y[0, j] = go + j * g
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            best_prev = max(M[i - 1, j - 1], X[i - 1, j - 1], Y[i - 1, j - 1])
            M[i, j] = best_prev + sub[i - 1, j - 1]
            X[i, j] = max(
                M[i - 1, j] + go + g,
                X[i - 1, j] + g,
                Y[i - 1, j] + go + g,
            )
            Y[i, j] = max(
                M[i, j - 1] + go + g,
                Y[i, j - 1] + g,
                X[i, j - 1] + go + g,
            )
    return M, X, Y


def score2_affine(sx: str, sy: str, scheme: ScoringScheme) -> float:
    """Optimal affine-gap global pairwise score."""
    if not scheme.is_affine:
        # A zero opening penalty degenerates to the linear model.
        from repro.pairwise.nw import score2

        return score2(sx, sy, scheme)
    M, X, Y = _fill(sx, sy, scheme)
    n, m = len(sx), len(sy)
    return float(max(M[n, m], X[n, m], Y[n, m]))


def align2_affine(sx: str, sy: str, scheme: ScoringScheme) -> Alignment2:
    """Optimal affine-gap global pairwise alignment with traceback."""
    n, m = len(sx), len(sy)
    g, go = scheme.gap, scheme.gap_open
    sub = scheme.pairwise_profile(sx, sy)
    M, X, Y = _fill(sx, sy, scheme)
    mats = (M, X, Y)
    state = int(np.argmax([M[n, m], X[n, m], Y[n, m]]))
    score = float(mats[state][n, m])
    i, j = n, m
    ra: list[str] = []
    rb: list[str] = []
    eps = 1e-9
    while (i, j) != (0, 0):
        if state == _STATE_M:
            ra.append(sx[i - 1])
            rb.append(sy[j - 1])
            target = M[i, j] - sub[i - 1, j - 1]
            i, j = i - 1, j - 1
            state = _pick_state(mats, i, j, target, eps)
        elif state == _STATE_X:
            ra.append(sx[i - 1])
            rb.append(GAP_CHAR)
            val = X[i, j]
            i -= 1
            if abs(X[i, j] + g - val) < eps:
                state = _STATE_X
            elif abs(M[i, j] + go + g - val) < eps:
                state = _STATE_M
            else:
                state = _STATE_Y
        else:  # _STATE_Y
            ra.append(GAP_CHAR)
            rb.append(sy[j - 1])
            val = Y[i, j]
            j -= 1
            if abs(Y[i, j] + g - val) < eps:
                state = _STATE_Y
            elif abs(M[i, j] + go + g - val) < eps:
                state = _STATE_M
            else:
                state = _STATE_X
    rows = ("".join(reversed(ra)), "".join(reversed(rb)))
    return Alignment2(rows=rows, score=score, meta={"engine": "gotoh"})


def _pick_state(
    mats: tuple[np.ndarray, np.ndarray, np.ndarray],
    i: int,
    j: int,
    target: float,
    eps: float,
) -> int:
    for s in (_STATE_M, _STATE_X, _STATE_Y):
        if abs(mats[s][i, j] - target) < eps:
            return s
    # Fall back to the best-valued state; only reachable through floating
    # point degeneracy between equal-scoring predecessors.
    return int(np.argmax([mats[s][i, j] for s in range(3)]))
