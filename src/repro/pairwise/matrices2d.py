"""Full pairwise forward/backward score matrices.

Carrillo–Lipman pruning (:mod:`repro.core.bounds`) needs, for every pair of
sequences and every cell ``(i, j)``, the best pairwise score of any global
alignment *through* that cell. That is ``F[i, j] + B[i, j]`` where ``F`` is
the standard forward NW matrix and ``B`` the suffix (backward) matrix.

The fill uses the same vectorised running-maximum row update as
:func:`repro.pairwise.nw.nw_score_last_row`, but keeps every row.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import ScoringScheme


def forward_matrix(sx: str, sy: str, scheme: ScoringScheme) -> np.ndarray:
    """The full NW score matrix ``F`` (``F[i, j]`` = best alignment of
    ``sx[:i]`` with ``sy[:j]``), shape ``(len(sx)+1, len(sy)+1)``."""
    n, m = len(sx), len(sy)
    g = scheme.gap
    jg = np.arange(m + 1) * g
    F = np.empty((n + 1, m + 1), dtype=np.float64)
    F[0] = jg
    if n == 0:
        return F
    sub = scheme.pairwise_profile(sx, sy)
    for i in range(1, n + 1):
        base = np.empty(m + 1)
        base[0] = i * g
        np.maximum(F[i - 1, 1:] + g, F[i - 1, :-1] + sub[i - 1], out=base[1:])
        shifted = base - jg
        np.maximum.accumulate(shifted, out=shifted)
        F[i] = shifted + jg
    return F


def backward_matrix(sx: str, sy: str, scheme: ScoringScheme) -> np.ndarray:
    """The suffix score matrix ``B`` (``B[i, j]`` = best alignment of
    ``sx[i:]`` with ``sy[j:]``)."""
    rev = forward_matrix(sx[::-1], sy[::-1], scheme)
    return np.ascontiguousarray(rev[::-1, ::-1])


def through_matrix(sx: str, sy: str, scheme: ScoringScheme) -> np.ndarray:
    """``T[i, j] = F[i, j] + B[i, j]``: the best score of any global
    alignment whose path passes through cell ``(i, j)``.

    ``T.max() == score2(sx, sy)`` and every cell of an optimal path attains
    the maximum — both properties are exercised by the test suite.
    """
    return forward_matrix(sx, sy, scheme) + backward_matrix(sx, sy, scheme)
