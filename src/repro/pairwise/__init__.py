"""Pairwise alignment substrate.

Exact three-sequence alignment leans on pairwise machinery in three places:
the faces of the 3-D DP cube are pairwise problems, Carrillo–Lipman pruning
needs full pairwise forward/backward score matrices, and the heuristic
baselines (center-star, progressive) are built from pairwise alignments.
"""

from repro.pairwise.types import Alignment2
from repro.pairwise.nw import (
    nw_matrix,
    align2,
    score2,
    nw_score_last_row,
)
from repro.pairwise.matrices2d import forward_matrix, backward_matrix, through_matrix
from repro.pairwise.gotoh import align2_affine, score2_affine
from repro.pairwise.hirschberg2 import align2_linear_space

__all__ = [
    "Alignment2",
    "nw_matrix",
    "align2",
    "score2",
    "nw_score_last_row",
    "forward_matrix",
    "backward_matrix",
    "through_matrix",
    "align2_affine",
    "score2_affine",
    "align2_linear_space",
]
