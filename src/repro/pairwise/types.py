"""Pairwise alignment result type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.seqio.alphabet import GAP_CHAR


@dataclass
class Alignment2:
    """An alignment of two sequences.

    Attributes
    ----------
    rows:
        The two aligned strings (equal length, gaps as ``-``).
    score:
        Objective value under the scheme that produced the alignment.
    meta:
        Engine provenance.
    """

    rows: tuple[str, str]
    score: float
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.rows) != 2:
            raise ValueError("Alignment2 requires exactly two rows")
        if len(self.rows[0]) != len(self.rows[1]):
            raise ValueError("rows have unequal lengths")
        for x, y in zip(*self.rows):
            if x == GAP_CHAR and y == GAP_CHAR:
                raise ValueError("alignment contains an all-gap column")

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return len(self.rows[0])

    def columns(self) -> Iterator[tuple[str, str]]:
        """Iterate over alignment columns."""
        return zip(*self.rows)

    def sequences(self) -> tuple[str, str]:
        """The two input sequences, reconstructed by stripping gaps."""
        return tuple(r.replace(GAP_CHAR, "") for r in self.rows)  # type: ignore[return-value]

    def identity(self) -> float:
        """Fraction of columns with identical residues."""
        if self.length == 0:
            return 0.0
        same = sum(
            1 for x, y in self.columns() if x == y and x != GAP_CHAR
        )
        return same / self.length

    def score_with(self, scheme) -> float:
        """Recompute the linear-model pairwise score under ``scheme``."""
        return sum(scheme.pair_score(x, y) for x, y in self.columns())
