"""Deterministic, seed-driven fault injection.

A fault spec is a compact string::

    kind[@engine][:key=value[,key=value...]]

with kinds

``worker_crash``   the matching worker calls ``os._exit(13)`` mid-sweep
``straggler``      the matching worker sleeps ``delay`` seconds at a plane
``corrupt_ghost``  a ghost payload is bit-flipped *after* its checksum is
                   computed (models wire corruption in ``mpirun``)
``oom``            :func:`repro.resilience.degrade.memory_budget` reports
                   ``budget`` bytes, forcing the degradation ladder

and keys ``engine``, ``worker``, ``rank``, ``plane``, ``block``,
``delay`` (seconds), ``budget`` (bytes), ``seed``, ``times``. Multiple
specs are separated by ``;``. Examples::

    worker_crash@pool:worker=1,plane=25
    straggler@shared:worker=1,delay=0.2
    corrupt_ghost:rank=1
    oom:budget=200000

Determinism: when ``plane`` is omitted for a crash/straggler the firing
plane is derived from ``seed`` (and the worker id) with a stable hash,
so the same spec fires at the same place on every run. Each spec fires
``times`` times per process (default 1 for crashes/stragglers/corruption,
unlimited for ``oom``); forked workers inherit the armed registry, and
supervisors respawn replacement workers with injection *disarmed* so a
recovered sweep cannot re-kill itself forever.

The hot-path cost when nothing is armed is one module-bool check
(:data:`enabled`), mirroring :mod:`repro.obs`.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field

from repro.resilience.errors import FaultSpecError

#: Environment variable holding ``;``-separated fault specs.
ENV_VAR = "REPRO_FAULTS"

KINDS = ("worker_crash", "straggler", "corrupt_ghost", "oom")

#: Module-level fast guard: False <=> no armed specs in this process.
enabled = False

_specs: list["FaultSpec"] = []

_INT_KEYS = ("worker", "rank", "plane", "block", "seed", "times")
_FLOAT_KEYS = ("delay",)


@dataclass
class FaultSpec:
    """One parsed, armed fault."""

    kind: str
    engine: str | None = None
    worker: int | None = None
    rank: int | None = None
    plane: int | None = None
    block: int | None = None
    delay: float = 0.05
    budget: int = 1_000_000
    seed: int = 0
    times: int = 1
    fired: int = field(default=0, compare=False)

    @property
    def armed(self) -> bool:
        return self.times < 0 or self.fired < self.times

    def derived_plane(self, worker: int, dmax: int) -> int:
        """Deterministic firing plane when ``plane`` was not given."""
        if self.plane is not None:
            return self.plane
        if dmax <= 0:
            return 0
        h = zlib.crc32(f"{self.kind}:{self.seed}:{worker}".encode())
        return 1 + h % dmax

    def spec_string(self) -> str:
        at = f"@{self.engine}" if self.engine else ""
        keys = []
        for k in ("worker", "rank", "plane", "block", "seed"):
            v = getattr(self, k)
            if v is not None and (k != "seed" or v):
                keys.append(f"{k}={v}")
        if self.kind == "straggler":
            keys.append(f"delay={self.delay:g}")
        if self.kind == "oom":
            keys.append(f"budget={self.budget}")
        tail = ":" + ",".join(keys) if keys else ""
        return f"{self.kind}{at}{tail}"


def parse_spec(text: str) -> FaultSpec:
    """Parse one spec string; raises :class:`FaultSpecError` on nonsense."""
    text = text.strip()
    if not text:
        raise FaultSpecError("empty fault spec")
    head, _, tail = text.partition(":")
    kind, _, engine = head.partition("@")
    kind = kind.strip()
    if kind not in KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r}; known: {', '.join(KINDS)}"
        )
    spec = FaultSpec(kind=kind, engine=engine.strip() or None)
    if kind == "oom":
        spec.times = -1  # budget queries are read repeatedly
    for item in filter(None, (s.strip() for s in tail.split(","))):
        key, eq, value = item.partition("=")
        key = key.strip()
        if not eq:
            raise FaultSpecError(f"bad key=value {item!r} in {text!r}")
        try:
            if key in _INT_KEYS or key == "budget":
                setattr(spec, key, int(value))
            elif key in _FLOAT_KEYS:
                setattr(spec, key, float(value))
            else:
                raise FaultSpecError(
                    f"unknown fault key {key!r} in {text!r}"
                )
        except ValueError as exc:
            raise FaultSpecError(
                f"bad value for {key!r} in {text!r}: {exc}"
            ) from None
    if spec.kind == "worker_crash" and spec.worker == 0:
        raise FaultSpecError(
            "worker_crash targets child workers; worker 0 is the dispatcher"
        )
    if spec.kind == "straggler" and spec.delay < 0:
        raise FaultSpecError("straggler delay must be >= 0")
    return spec


def install(specs: str | list[str]) -> list[FaultSpec]:
    """Arm the given spec string(s) in this process (additive)."""
    global enabled
    if isinstance(specs, str):
        specs = [s for s in specs.split(";") if s.strip()]
    parsed = [parse_spec(s) for s in specs]
    _specs.extend(parsed)
    enabled = bool(_specs)
    return parsed


def install_from_env(environ=None) -> list[FaultSpec]:
    """Arm specs from :data:`ENV_VAR` when present."""
    env = environ if environ is not None else os.environ
    raw = env.get(ENV_VAR, "").strip()
    return install(raw) if raw else []


def clear() -> None:
    """Disarm everything (used between chaos scenarios and in tests)."""
    global enabled
    _specs.clear()
    enabled = False


def disarm_all() -> None:
    """Keep the registry but stop all firing (respawned workers call this
    so a replayed plane cannot re-trigger the crash that killed its
    predecessor)."""
    global enabled
    enabled = False


def active_specs() -> list[FaultSpec]:
    return list(_specs)


def _matches(spec: FaultSpec, kind: str, **where) -> bool:
    if spec.kind != kind or not spec.armed:
        return False
    engine = where.get("engine")
    if spec.engine is not None and engine is not None and spec.engine != engine:
        return False
    for key in ("worker", "rank", "block"):
        want = getattr(spec, key)
        have = where.get(key)
        if want is not None and have is not None and want != have:
            return False
    if kind in ("worker_crash", "straggler"):
        plane = where.get("plane")
        if plane is not None:
            target = spec.derived_plane(
                where.get("worker") or 0, where.get("dmax") or 0
            )
            if plane != target:
                return False
    return True


def fire(kind: str, **where) -> FaultSpec | None:
    """Return (and consume one shot of) the first matching armed spec.

    Callers pass their coordinates (``engine=, worker=, plane=, dmax=,
    rank=, block=``); unspecified spec fields match anything. Returns
    ``None`` — at the cost of a single bool check — when nothing is armed.
    """
    if not enabled:
        return None
    for spec in _specs:
        if _matches(spec, kind, **where):
            spec.fired += 1
            return spec
    return None


def maybe_inject(
    engine: str, worker: int, plane: int, dmax: int
) -> None:
    """Enact crash/straggler faults at a plane boundary.

    Called by the parallel engines at the top of each plane, *before*
    computing it — so a crash leaves that worker's rows of the plane
    missing and recovery genuinely has to replay it. One bool check when
    nothing is armed."""
    if not enabled:
        return
    if worker != 0:
        # Worker 0 is the dispatcher/supervisor; a crash spec with no
        # explicit worker id must never take it (and the process hosting
        # the tests) down.
        spec = fire(
            "worker_crash", engine=engine, worker=worker, plane=plane, dmax=dmax
        )
        if spec is not None:
            os._exit(13)
    spec = fire(
        "straggler", engine=engine, worker=worker, plane=plane, dmax=dmax
    )
    if spec is not None:
        time.sleep(spec.delay)


def peek(kind: str, **where) -> FaultSpec | None:
    """Like :func:`fire` but without consuming a shot (used by the memory
    budget, which is read more than once per run)."""
    if not enabled:
        return None
    for spec in _specs:
        if _matches(spec, kind, **where):
            return spec
    return None
