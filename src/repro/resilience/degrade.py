"""Graceful degradation: estimate the cube, fall back before the OOM.

A full-traceback run at length ``n`` needs the ``(n+1)^3`` move cube;
past the memory budget that dies with a raw ``MemoryError`` deep inside
NumPy. This module estimates every engine's footprint *up front* and
walks a degradation ladder instead::

    dp3d ──────────────┐
    wavefront/pruned ──┼──>  hirschberg  (divide & conquer, O(n^2))
    shared/threads ────┤
    banded ────────────┘

Each rung preserves exactness: Hirschberg's divide-and-conquer returns
an optimal alignment in quadratic memory (cf. the low-memory line of
work in PAPERS.md), so a degraded run still produces the optimal score
and a bit-identical-scoring alignment — only the engine (and possibly
the co-optimal tie choice) changes, which the structured
:class:`DegradationWarning` and ``meta["degraded_from"]`` record.

The budget comes from (first match wins): an armed ``oom`` fault
(chaos testing), the ``REPRO_MEM_BUDGET`` env var, 80% of
``MemAvailable`` from ``/proc/meminfo``, or a 2 GiB fallback.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.resilience import faults
from repro.resilience.errors import DegradationWarning, DegradedRun

ENV_BUDGET = "REPRO_MEM_BUDGET"

FALLBACK_BUDGET = 2 << 30

#: Next lower-memory engine for each degradable method.
LADDER = {
    "dp3d": "wavefront",
    "wavefront": "hirschberg",
    "pruned": "hirschberg",
    "banded": "hirschberg",
    "shared": "hirschberg",
    "blocks": "hirschberg",
    "threads": "hirschberg",
    "hirschberg": None,
}

__all__ = [
    "DegradationWarning",
    "DegradedRun",
    "DegradePlan",
    "estimate_bytes",
    "memory_budget",
    "plan_method",
]


def _meminfo_available(path: str = "/proc/meminfo") -> int | None:
    try:
        with open(path) as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def memory_budget(environ=None) -> int:
    """The byte budget engine planning works against (see module doc)."""
    spec = faults.peek("oom")
    if spec is not None:
        return spec.budget
    env = environ if environ is not None else os.environ
    raw = env.get(ENV_BUDGET, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    avail = _meminfo_available()
    if avail is not None:
        return int(avail * 0.8)
    return FALLBACK_BUDGET


def estimate_bytes(
    method: str,
    dims: tuple[int, int, int],
    score_only: bool = False,
    *,
    anchors=None,
) -> int:
    """Upper-bound estimate of an engine's peak allocation for ``dims``.

    Deliberately ignores the O(n) sequence data and O(n^2) profile
    matrices common to all engines; the cube-shaped buffers dominate.

    ``anchors`` (a normalised constraint chain, see
    :mod:`repro.anchor.model`) reprices the run at the **largest free
    sub-cube** of the chain decomposition: sub-cubes are solved
    sequentially sharing one workspace, so the full cube never exists.
    ``method="anchored"`` prices as a wavefront over that sub-cube (the
    most memory-hungry engine ``select_method`` can hand a segment).
    """
    if anchors:
        from repro.anchor import as_anchors, max_subcube_dims

        dims = max_subcube_dims(as_anchors(anchors), dims)
    if method == "anchored":
        method = "wavefront"
    n1, n2, n3 = dims
    cube = (n1 + 1) * (n2 + 1) * (n3 + 1)
    planes = 4 * (n1 + 2) * (n2 + 2) * 8
    if method == "dp3d":
        # float64 DP cube, plus the int8 move cube for traceback.
        return cube * 8 + (0 if score_only else cube)
    if method in ("wavefront", "shared", "threads"):
        return planes + (0 if score_only else cube)
    if method == "blocks":
        # Block-tiled engines stream through a deeper rotating plane
        # window (2 * band + 3 buffers; band tops out at
        # partition.band_depth's default cap of 16).
        from repro.parallel.partition import band_depth, plane_window

        window = plane_window(band_depth(n1 + n2 + n3, 2))
        return (window * planes) // 4 + (0 if score_only else cube)
    if method in ("pruned", "banded"):
        # The keep-region is a tube (two (n1+1)(n2+1) intp planes), not a
        # boolean cube; pruned additionally holds the three O(n^2)
        # pairwise through-matrices while building the bound. The old
        # ``+ cube`` term for a dense mask made the planner degrade
        # pruned runs that comfortably fit — the exact regime where
        # pruning pays most.
        tube = 2 * (n1 + 1) * (n2 + 1) * 8
        through = (
            (n1 + 1) * (n2 + 1) + (n1 + 1) * (n3 + 1) + (n2 + 1) * (n3 + 1)
        ) * 8
        return planes + tube + through + (0 if score_only else cube)
    if method == "hirschberg":
        from repro.core.hirschberg import memory_estimate_bytes

        return memory_estimate_bytes(n1, n2, n3)
    raise ValueError(f"no memory model for method {method!r}")


@dataclass
class DegradePlan:
    """Outcome of up-front memory planning for one run."""

    requested: str
    method: str
    estimate: int
    budget: int
    #: Methods considered, in order, with their estimates.
    steps: list[tuple[str, int]] = field(default_factory=list)
    #: True when the final rung still exceeds the budget (attempted
    #: anyway — there is nothing lower to fall to).
    over_budget: bool = False

    @property
    def degraded(self) -> bool:
        return self.method != self.requested

    def describe(self) -> str:
        path = " -> ".join(m for m, _e in self.steps)
        return (
            f"method {self.requested!r} needs ~{self.estimate:,} bytes but "
            f"the budget is {self.budget:,}; degraded along {path}"
        )


def plan_method(
    method: str,
    dims: tuple[int, int, int],
    *,
    score_only: bool = False,
    budget: int | None = None,
) -> DegradePlan:
    """Walk the ladder from ``method`` to the first engine that fits.

    The bottom rung is accepted even when over budget — an attempt that
    may OOM still beats refusing outright, and strict callers turn the
    plan into a :class:`DegradedRun` instead.
    """
    if budget is None:
        budget = memory_budget()
    first_estimate = estimate_bytes(method, dims, score_only)
    steps: list[tuple[str, int]] = [(method, first_estimate)]
    current, estimate = method, first_estimate
    while estimate > budget:
        lower = LADDER.get(current)
        if lower is None:
            break
        current = lower
        estimate = estimate_bytes(current, dims, score_only)
        steps.append((current, estimate))
    return DegradePlan(
        requested=method,
        method=current,
        estimate=first_estimate,
        budget=budget,
        steps=steps,
        over_budget=estimate > budget,
    )
