"""Fault tolerance for the parallel engines.

Four cooperating pieces (see ``docs/robustness.md``):

:mod:`repro.resilience.faults`
    Deterministic, seed-driven fault injection (worker crash, straggler
    delay, corrupted ghost payload, simulated OOM), armed via the
    ``REPRO_FAULTS`` environment variable or the ``--inject-fault`` CLI
    flag so chaos runs are reproducible.
:mod:`repro.resilience.supervise`
    Worker supervision for the plane-barrier engines: heartbeat slots,
    barrier waits with timeouts, dead-worker detection, and recovery by
    respawning the worker and replaying the current plane.
:mod:`repro.resilience.retry`
    Bounded retry-with-backoff queue receives and payload checksums for
    the message-passing runtime (:mod:`repro.cluster.mpirun`).
:mod:`repro.resilience.degrade`
    Up-front memory estimates and the degradation ladder
    (full-traceback -> divide-and-conquer -> banded) that replaces a raw
    ``MemoryError`` with a structured fallback.

Every recovery path preserves bit-identical output with the serial
engine: the wavefront only needs planes ``d-1..d-3``, which survive a
worker death in the shared buffers, so replaying plane ``d`` is
idempotent.
"""

from __future__ import annotations

from repro.resilience.errors import (
    EXIT_BAD_FAULT_SPEC,
    EXIT_DEGRADED,
    EXIT_WORKER_FAILURE,
    DegradationWarning,
    DegradedRun,
    FailureRecord,
    FaultSpecError,
    ProtocolError,
    WorkerFailure,
)
from repro.resilience.retry import BackoffPolicy, comm_deadline

__all__ = [
    "BackoffPolicy",
    "comm_deadline",
    "DegradationWarning",
    "DegradedRun",
    "FailureRecord",
    "FaultSpecError",
    "ProtocolError",
    "WorkerFailure",
    "EXIT_WORKER_FAILURE",
    "EXIT_DEGRADED",
    "EXIT_BAD_FAULT_SPEC",
]
