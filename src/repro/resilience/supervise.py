"""Worker supervision for the plane-barrier engines.

The wavefront engines advance in lockstep: every worker computes its row
slice of plane ``d`` and meets the others at a barrier. A killed or hung
worker therefore used to wedge everyone else at that barrier forever.
Supervision fixes this without touching the fault-free fast path:

* the **dispatcher** (worker 0, the main process) waits at each barrier
  with a timeout; when the wait breaks it inspects its children,
  respawns the dead ones, resets the barrier and publishes a *recovery
  verdict* — ``(epoch, resume_plane)`` — through the shared control
  block;
* **workers** write a heartbeat (the plane they have arrived at) into
  the control block before each wait; on a broken barrier they poll for
  the verdict and jump to ``resume_plane``. A worker that already
  computed that plane just re-enters the barrier — plane writes are
  disjoint per worker and deterministic, so replays are idempotent;
* the respawned worker restarts the sweep at ``resume_plane``. The
  wavefront reads only planes ``d-1..d-3``, which are intact in the
  shared buffers — the checkpoint is free.

Stragglers (alive but silent past ``straggler_grace``) are terminated
and respawned like dead workers. A worker that exhausts
``max_respawns`` turns into a :class:`WorkerFailure` carrying the full
failure log. With no faults the only change to the hot path is passing
a ``timeout=`` to the barrier waits.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs import hooks as _obs
from repro.resilience.errors import FailureRecord, WorkerFailure

#: Environment knob scaling the dispatcher-side timeouts (seconds).
ENV_TIMEOUT = "REPRO_SUPERVISE_TIMEOUT"

#: Exit code a worker uses when the supervisor vanished mid-recovery.
EXIT_NO_VERDICT = 111


@dataclass(frozen=True)
class SupervisionPolicy:
    """Timeouts and limits for one supervised engine run."""

    #: Dispatcher barrier wait per attempt; also the failure-detection
    #: latency. Generous relative to a plane (sub-ms at n=120).
    barrier_timeout: float = 2.0
    #: An *alive* worker silent this long is treated as wedged and killed.
    straggler_grace: float = 6.0
    #: Worker-side barrier wait; only fires if the dispatcher is gone.
    worker_timeout: float = 300.0
    #: How long a worker polls for a recovery verdict before giving up.
    verdict_timeout: float = 60.0
    #: Respawns allowed per worker before the run fails hard.
    max_respawns: int = 3

    @staticmethod
    def from_env(environ=None) -> "SupervisionPolicy":
        env = environ if environ is not None else os.environ
        raw = env.get(ENV_TIMEOUT, "").strip()
        if not raw:
            return SupervisionPolicy()
        t = max(0.05, float(raw))
        return SupervisionPolicy(barrier_timeout=t, straggler_grace=3 * t)


class RecoveryBlock:
    """View of the recovery slots inside a shared float64 control block.

    Layout from ``base``: ``[epoch, resume, hb_0 .. hb_{workers-1}]``.
    The heartbeat of worker ``w`` is the plane it last *arrived at the
    barrier for*, plus one (0 = no progress yet). Writes are aligned
    8-byte stores, which is as atomic as this protocol needs: readers
    poll ``epoch`` and only then read ``resume``, which is written first.
    """

    FIXED_SLOTS = 2

    @staticmethod
    def slots(workers: int) -> int:
        return RecoveryBlock.FIXED_SLOTS + workers

    def __init__(self, arr: np.ndarray, workers: int, base: int = 0):
        self._arr = arr
        self._base = base
        self.workers = workers

    @property
    def epoch(self) -> int:
        return int(self._arr[self._base])

    @property
    def resume(self) -> int:
        return int(self._arr[self._base + 1])

    def publish(self, resume: int) -> None:
        """Publish a verdict: resume first, then the epoch bump readers
        poll on."""
        self._arr[self._base + 1] = float(resume)
        self._arr[self._base] = float(self.epoch + 1)

    def heartbeat(self, worker: int, arrived_plane: int) -> None:
        self._arr[self._base + 2 + worker] = float(arrived_plane + 1)

    def heartbeat_of(self, worker: int) -> int:
        return int(self._arr[self._base + 2 + worker]) - 1

    def reset_job(self) -> None:
        """Zero the heartbeats at the start of a job (epoch survives)."""
        b = self._base
        self._arr[b + 2 : b + 2 + self.workers] = 0.0


# ---------------------------------------------------------------------------
# Worker-side waits
# ---------------------------------------------------------------------------


def _parent_alive() -> bool:
    parent = mp.parent_process()
    return parent is None or parent.is_alive()


def await_verdict(
    rec: RecoveryBlock, seen_epoch: int, policy: SupervisionPolicy
) -> int | None:
    """Poll for a recovery epoch newer than ``seen_epoch``.

    Returns the new epoch, or None when the supervisor never answered
    (gone, or past ``verdict_timeout``).
    """
    deadline = time.perf_counter() + policy.verdict_timeout
    while time.perf_counter() < deadline:
        if rec.epoch > seen_epoch:
            return rec.epoch
        if not _parent_alive():
            return None
        time.sleep(0.001)
    return None


def worker_plane_wait(
    barrier,
    rec: RecoveryBlock,
    current: int,
    seen_epoch: int,
    policy: SupervisionPolicy,
) -> tuple[int, int]:
    """One worker-side barrier wait for plane ``current``.

    Returns ``(next_plane, seen_epoch)`` — ``current + 1`` on a normal
    release, or the dispatcher's resume plane after a recovery. Exits the
    process if no verdict ever arrives (the supervisor is gone; shared
    state cannot be trusted)."""
    try:
        barrier.wait(timeout=policy.worker_timeout)
        return current + 1, rec.epoch
    except threading.BrokenBarrierError:
        epoch = await_verdict(rec, seen_epoch, policy)
        if epoch is None:
            os._exit(EXIT_NO_VERDICT)
        return rec.resume, epoch


def worker_idle_wait(barrier, policy: SupervisionPolicy) -> None:
    """Pool workers waiting for the next job. Tolerates broken/reset
    cycles (the dispatcher heals the barrier when it next submits) and
    exits if orphaned; this is the one wait allowed to outlast
    ``worker_timeout``, because an idle pool is legitimately idle."""
    while True:
        try:
            barrier.wait(timeout=policy.worker_timeout)
            return
        except threading.BrokenBarrierError:
            time.sleep(0.05)
        if not _parent_alive():
            os._exit(0)


# ---------------------------------------------------------------------------
# Dispatcher side
# ---------------------------------------------------------------------------


class Supervisor:
    """Dispatcher-side barrier waits with detection and recovery.

    Parameters
    ----------
    engine:
        Name used in failure records and obs metrics (``pool``/``shared``).
    barrier:
        The shared plane barrier (all ``workers`` parties including the
        dispatcher).
    rec:
        The :class:`RecoveryBlock` the workers heartbeat into.
    procs:
        Live child processes keyed by worker id; respawns replace
        entries in place.
    respawn:
        ``respawn(worker_id, resume_plane) -> Process`` — must start a
        replacement worker that begins its sweep at ``resume_plane``
        with fault injection disarmed.
    """

    def __init__(
        self,
        engine: str,
        *,
        barrier,
        rec: RecoveryBlock,
        procs: dict[int, mp.Process],
        respawn: Callable[[int, int], mp.Process],
        policy: SupervisionPolicy | None = None,
    ):
        self.engine = engine
        self.barrier = barrier
        self.rec = rec
        self.procs = procs
        self.respawn = respawn
        self.policy = policy or SupervisionPolicy.from_env()
        self.failures: list[FailureRecord] = []
        self._respawns: dict[int, int] = {}

    def wait(self, plane: int) -> None:
        """Barrier wait for ``plane``; never hangs, never returns until
        every (possibly respawned) worker has met the barrier."""
        t0 = time.perf_counter()
        while True:
            try:
                self.barrier.wait(timeout=self.policy.barrier_timeout)
                return
            except threading.BrokenBarrierError:
                if self._recover(plane, time.perf_counter() - t0):
                    t0 = time.perf_counter()

    def wait_job_start(self, start_barrier) -> None:
        """Dispatch-side wait at the pool's job-start barrier.

        A worker dead while idle is found here, at submit time. Idle
        workers tolerate broken/reset cycles (:func:`worker_idle_wait`),
        so recovery is just: respawn the dead, reset, re-meet. With no
        identified casualty past the grace period every child is
        recycled — idle heartbeats carry no progress information, so
        this is the only sound move, and it is rare (it means a child
        wedged *between* jobs)."""
        t0 = time.perf_counter()
        while True:
            try:
                start_barrier.wait(timeout=self.policy.barrier_timeout)
                return
            except threading.BrokenBarrierError:
                waited = time.perf_counter() - t0
                casualties = [
                    (w, p)
                    for w, p in self.procs.items()
                    if not p.is_alive()
                ]
                if not casualties and waited >= self.policy.straggler_grace:
                    for w, p in self.procs.items():
                        p.terminate()
                        p.join(timeout=5)
                        if p.is_alive():  # pragma: no cover
                            p.kill()
                            p.join(timeout=5)
                    casualties = list(self.procs.items())
                for w, proc in casualties:
                    count = self._respawns.get(w, 0) + 1
                    self._respawns[w] = count
                    record = FailureRecord(
                        engine=self.engine,
                        worker=w,
                        plane=None,
                        reason="worker lost while idle",
                        exitcode=proc.exitcode,
                        respawned=count <= self.policy.max_respawns,
                    )
                    self.failures.append(record)
                    _obs.record_failure(self.engine, w, None, record.reason)
                    if count > self.policy.max_respawns:
                        self.abort()
                        raise WorkerFailure(
                            f"{self.engine} worker {w} failed {count} times "
                            f"(max_respawns={self.policy.max_respawns})",
                            self.failures,
                        )
                    self.procs[w] = self.respawn(w, None)
                    _obs.record_recovery(self.engine, w, None)
                start_barrier.reset()
                if casualties:
                    t0 = time.perf_counter()

    # -- recovery ----------------------------------------------------------

    def _recover(self, plane: int, waited: float) -> bool:
        """One recovery round; returns True when a casualty was handled
        (the caller then restarts its straggler clock)."""
        casualties: list[tuple[int, mp.Process, str]] = []
        for w, proc in self.procs.items():
            if not proc.is_alive():
                casualties.append(
                    (w, proc, f"worker process died (exitcode {proc.exitcode})")
                )
        if not casualties and waited >= self.policy.straggler_grace:
            # Everyone is alive but someone never arrived: kill the
            # stragglers (heartbeat below the current plane) and replay.
            for w, proc in self.procs.items():
                if self.rec.heartbeat_of(w) < plane:
                    proc.terminate()
                    proc.join(timeout=5)
                    if proc.is_alive():  # pragma: no cover
                        proc.kill()
                        proc.join(timeout=5)
                    casualties.append(
                        (w, proc, f"straggler (silent {waited:.1f}s), killed")
                    )
        for w, proc, reason in casualties:
            count = self._respawns.get(w, 0) + 1
            self._respawns[w] = count
            record = FailureRecord(
                engine=self.engine,
                worker=w,
                plane=plane,
                reason=reason,
                exitcode=proc.exitcode,
                respawned=count <= self.policy.max_respawns,
            )
            self.failures.append(record)
            _obs.record_failure(self.engine, w, plane, reason)
            if count > self.policy.max_respawns:
                self.abort()
                raise WorkerFailure(
                    f"{self.engine} worker {w} failed {count} times "
                    f"(max_respawns={self.policy.max_respawns})",
                    self.failures,
                )
            self.procs[w] = self.respawn(w, plane)
            _obs.record_recovery(self.engine, w, plane)
        # Fresh barrier, then the verdict that releases the survivors.
        # Publishing even when nothing died (transient break / straggler
        # within grace) re-synchronises everyone at the same plane.
        self.barrier.reset()
        self.rec.publish(plane)
        return bool(casualties)

    def abort(self) -> None:
        """Give up: break the barrier so workers stop waiting, then kill
        and reap every child. Used on hard failure and forced shutdown."""
        try:
            self.barrier.abort()
        except Exception:  # pragma: no cover - barrier may be gone
            pass
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs.values():
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover
                proc.kill()
                proc.join(timeout=5)
