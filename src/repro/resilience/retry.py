"""Bounded, observable waits for the message-passing runtime.

:func:`queue_get_with_retry` replaces the bare ``queue.get(timeout=60)``
that used to turn every protocol hiccup into an opaque ``queue.Empty``
after a blind minute: it polls in short, exponentially growing slices,
invokes a liveness probe between slices (so a dead peer raises a typed
:class:`WorkerFailure` immediately instead of after the full deadline),
and converts deadline exhaustion into :class:`WorkerFailure` carrying a
description of what was being waited for.

:func:`payload_checksum` / :func:`verify_payload` give every ghost
message a CRC32 trailer so corruption in transit is detected at the
receiver (and retransmitted by the sender) rather than silently folded
into the DP.
"""

from __future__ import annotations

import queue as _queue
import time
import zlib
from typing import Any, Callable

import numpy as np

from repro.resilience.errors import WorkerFailure

#: Environment knob for the total receive deadline (seconds).
ENV_DEADLINE = "REPRO_COMM_TIMEOUT"

DEFAULT_DEADLINE = 60.0


def comm_deadline(environ=None) -> float:
    """The receive deadline: ``REPRO_COMM_TIMEOUT`` when set and numeric
    (floored at 0.1s), else :data:`DEFAULT_DEADLINE`.

    A malformed value falls back with a warning rather than raising —
    this is read deep inside worker receive loops, where a typo'd
    environment would otherwise surface as a crash mid-alignment
    instead of at startup.
    """
    import os
    import sys

    env = environ if environ is not None else os.environ
    raw = env.get(ENV_DEADLINE, "").strip()
    if not raw:
        return DEFAULT_DEADLINE
    try:
        return max(0.1, float(raw))
    except ValueError:
        print(
            f"# warning: ignoring non-numeric {ENV_DEADLINE}={raw!r}; "
            f"using default {DEFAULT_DEADLINE:.0f}s",
            file=sys.stderr,
            flush=True,
        )
        return DEFAULT_DEADLINE


class BackoffPolicy:
    """Deterministic bounded exponential backoff schedule.

    One policy value describes a whole retry budget — ``attempts`` tries
    with delays ``base * factor**k`` capped at ``cap`` between them —
    so callers (the router's failover path, tests, tools) can share and
    inspect the schedule instead of hard-coding sleeps. Deterministic
    (no jitter) because the fleet here is a handful of local replicas,
    and reproducible schedules make the chaos gates assertable.
    """

    def __init__(
        self,
        *,
        attempts: int = 3,
        base_delay_s: float = 0.05,
        factor: float = 2.0,
        cap_s: float = 1.0,
    ):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if base_delay_s < 0 or cap_s < 0 or factor < 1.0:
            raise ValueError(
                "base_delay_s/cap_s must be >= 0 and factor >= 1"
            )
        self.attempts = int(attempts)
        self.base_delay_s = float(base_delay_s)
        self.factor = float(factor)
        self.cap_s = float(cap_s)

    def delay_s(self, attempt: int) -> float:
        """Delay *after* 0-indexed ``attempt`` (before the next try)."""
        return min(self.base_delay_s * self.factor**attempt, self.cap_s)

    def delays(self) -> list[float]:
        """The inter-attempt delays for a full budget (length
        ``attempts - 1`` — there is no wait after the final try)."""
        return [self.delay_s(k) for k in range(self.attempts - 1)]

    def total_delay_s(self) -> float:
        return sum(self.delays())


def queue_get_with_retry(
    q,
    *,
    deadline: float,
    liveness: Callable[[], None] | None = None,
    base_timeout: float = 0.05,
    backoff: float = 2.0,
    max_timeout: float = 1.0,
    what: str = "message",
) -> Any:
    """Blocking ``q.get`` with backoff slices, a liveness probe and a
    hard deadline.

    ``liveness`` runs between slices; it should raise
    :class:`WorkerFailure` when the peer is known dead. Raises
    :class:`WorkerFailure` (not ``queue.Empty``) when ``deadline``
    seconds elapse without a message.
    """
    end = time.perf_counter() + deadline
    step = base_timeout
    while True:
        remaining = end - time.perf_counter()
        if remaining <= 0:
            raise WorkerFailure(
                f"timed out after {deadline:.0f}s waiting for {what}"
            )
        try:
            return q.get(timeout=min(step, remaining))
        except _queue.Empty:
            pass
        if liveness is not None:
            liveness()
        step = min(step * backoff, max_timeout)


def payload_checksum(payload: np.ndarray) -> int:
    """CRC32 over the payload bytes (shape/dtype ride in the message key)."""
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


def verify_payload(payload: np.ndarray, crc: int) -> bool:
    return payload_checksum(payload) == crc


def corrupt_payload(payload: np.ndarray) -> np.ndarray:
    """Bit-flip one element — the wire-corruption model the
    ``corrupt_ghost`` fault injects *after* the checksum is computed."""
    bad = np.array(payload, copy=True)
    flat = bad.reshape(-1)
    if flat.size:
        flat[0] = -flat[0] - 1.0
    return bad
