"""Typed failures shared by the fault-tolerance layer.

These live in their own module (rather than in :mod:`supervise` /
:mod:`degrade`) so that the CLI and the engines can import the types
without pulling in multiprocessing machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: CLI exit codes for the typed failures (argparse already uses 2).
EXIT_WORKER_FAILURE = 3
EXIT_DEGRADED = 4
EXIT_BAD_FAULT_SPEC = 5


@dataclass
class FailureRecord:
    """One observed worker/rank failure."""

    engine: str
    worker: int
    plane: int | None = None
    reason: str = ""
    exitcode: int | None = None
    respawned: bool = False

    def describe(self) -> str:
        where = f" at plane {self.plane}" if self.plane is not None else ""
        code = f" (exit {self.exitcode})" if self.exitcode is not None else ""
        tail = "respawned" if self.respawned else "not respawned"
        return (
            f"{self.engine} worker {self.worker}{where}: "
            f"{self.reason}{code}, {tail}"
        )


class WorkerFailure(RuntimeError):
    """A worker or rank died (or stalled) beyond what recovery allows.

    Carries the accumulated failure log so callers — and the CLI's
    one-line error path — can report *which* worker failed doing *what*
    instead of a bare ``queue.Empty`` or a hung barrier.
    """

    def __init__(
        self, message: str, failures: list[FailureRecord] | None = None
    ):
        super().__init__(message)
        self.failures: list[FailureRecord] = list(failures or [])

    def describe(self) -> str:
        lines = [str(self)]
        lines.extend(f"  - {rec.describe()}" for rec in self.failures)
        return "\n".join(lines)


class ProtocolError(RuntimeError):
    """The block/message protocol was violated (ordering, unknown tag)."""


class FaultSpecError(ValueError):
    """An ``--inject-fault`` / ``REPRO_FAULTS`` spec could not be parsed."""


class DegradationWarning(UserWarning):
    """Emitted when a run is transparently moved to a lower-memory engine."""


class DegradedRun(RuntimeError):
    """Degradation was required but the caller forbade it (strict mode)."""

    def __init__(self, message: str, plan: Any | None = None):
        super().__init__(message)
        self.plan = plan


__all__ = [
    "FailureRecord",
    "WorkerFailure",
    "ProtocolError",
    "FaultSpecError",
    "DegradationWarning",
    "DegradedRun",
    "EXIT_WORKER_FAILURE",
    "EXIT_DEGRADED",
    "EXIT_BAD_FAULT_SPEC",
]
