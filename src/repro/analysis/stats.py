"""Descriptive statistics of a (multi-row) alignment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.seqio.alphabet import GAP_CHAR


@dataclass(frozen=True)
class AlignmentStats:
    """Column/gap summary of an alignment.

    Attributes
    ----------
    length:
        Number of columns.
    columns_identical:
        Columns where every row holds the same residue (no gaps).
    columns_gapless:
        Columns with no gap in any row.
    gap_fraction:
        Fraction of all characters that are gaps.
    gap_runs:
        Total number of maximal gap runs across rows.
    mean_gap_run:
        Mean length of those runs (0 when there are none).
    """

    length: int
    columns_identical: int
    columns_gapless: int
    gap_fraction: float
    gap_runs: int
    mean_gap_run: float

    @property
    def identity(self) -> float:
        """Identical columns over total columns."""
        return self.columns_identical / self.length if self.length else 0.0


def gap_runs(row: str) -> list[int]:
    """Lengths of the maximal gap runs in one row.

    >>> gap_runs("A--CG-T")
    [2, 1]
    """
    runs: list[int] = []
    current = 0
    for ch in row:
        if ch == GAP_CHAR:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs


def alignment_stats(rows: Sequence[str]) -> AlignmentStats:
    """Compute :class:`AlignmentStats` for aligned ``rows``."""
    if not rows:
        raise ValueError("no rows given")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise ValueError("rows have unequal lengths")
    length = len(rows[0])
    identical = 0
    gapless = 0
    for col in zip(*rows):
        if GAP_CHAR not in col:
            gapless += 1
            if all(c == col[0] for c in col):
                identical += 1
    total_chars = length * len(rows)
    gap_chars = sum(r.count(GAP_CHAR) for r in rows)
    all_runs = [run for row in rows for run in gap_runs(row)]
    return AlignmentStats(
        length=length,
        columns_identical=identical,
        columns_gapless=gapless,
        gap_fraction=gap_chars / total_chars if total_chars else 0.0,
        gap_runs=len(all_runs),
        mean_gap_run=(sum(all_runs) / len(all_runs)) if all_runs else 0.0,
    )
