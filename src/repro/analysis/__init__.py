"""Alignment analysis: statistics, per-pair breakdowns, and comparison
metrics between alignments of the same sequences.

Used by the quality experiments (T3/T4) to go beyond a single SP number:
where do heuristic and exact alignments actually disagree, how are gaps
distributed, and how conserved is each column.
"""

from repro.analysis.stats import AlignmentStats, alignment_stats, gap_runs
from repro.analysis.compare import (
    column_agreement,
    aligned_pair_sets,
    pair_agreement,
    sp_breakdown,
)

__all__ = [
    "AlignmentStats",
    "alignment_stats",
    "gap_runs",
    "column_agreement",
    "aligned_pair_sets",
    "pair_agreement",
    "sp_breakdown",
]
