"""Comparison metrics between two alignments of the same sequences.

The standard developer question behind T3: *where* does the heuristic
alignment differ from the exact one? Two alignments of the same sequences
are compared by the residue pairs they align:

* :func:`aligned_pair_sets` — for each row pair, the set of aligned
  residue-index pairs the alignment induces;
* :func:`pair_agreement` — the fraction of reference pairs recovered
  (the "developer's sum-of-pairs score" of MSA benchmarking, a.k.a. the
  Q/SP column score);
* :func:`column_agreement` — fraction of reference columns reproduced
  exactly;
* :func:`sp_breakdown` — SP score split per row pair, localising which
  pairwise projection loses the score.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.core.scoring import ScoringScheme
from repro.seqio.alphabet import GAP_CHAR


def _check_same_sequences(a: Sequence[str], b: Sequence[str]) -> None:
    if len(a) != len(b):
        raise ValueError("alignments have different row counts")
    for ra, rb in zip(a, b):
        if ra.replace(GAP_CHAR, "") != rb.replace(GAP_CHAR, ""):
            raise ValueError(
                "alignments are not over the same sequences"
            )


def aligned_pair_sets(
    rows: Sequence[str],
) -> dict[tuple[int, int], set[tuple[int, int]]]:
    """Residue-index pairs aligned by each row pair.

    For rows ``(x, y)``, the set contains ``(i, j)`` whenever residue
    ``i`` of sequence ``x`` sits in the same column as residue ``j`` of
    sequence ``y``.
    """
    counters = [0] * len(rows)
    out: dict[tuple[int, int], set[tuple[int, int]]] = {
        pair: set() for pair in combinations(range(len(rows)), 2)
    }
    for col in zip(*rows):
        present = []
        for r, ch in enumerate(col):
            if ch != GAP_CHAR:
                present.append((r, counters[r]))
                counters[r] += 1
        for (rx, ix), (ry, iy) in combinations(present, 2):
            out[(rx, ry)].add((ix, iy))
    return out


def pair_agreement(
    candidate: Sequence[str], reference: Sequence[str]
) -> float:
    """Fraction of the reference's aligned residue pairs that the
    candidate alignment also aligns (1.0 = identical pairings).

    Returns 1.0 when the reference aligns no pairs at all.
    """
    _check_same_sequences(candidate, reference)
    cand = aligned_pair_sets(candidate)
    ref = aligned_pair_sets(reference)
    total = sum(len(s) for s in ref.values())
    if total == 0:
        return 1.0
    hit = sum(len(cand[pair] & ref[pair]) for pair in ref)
    return hit / total


def column_agreement(
    candidate: Sequence[str], reference: Sequence[str]
) -> float:
    """Fraction of reference columns reproduced exactly by the candidate.

    A column is identified by the tuple of residue indices it aligns
    (gaps as ``None``), making the metric invariant to column order
    padding differences.
    """
    _check_same_sequences(candidate, reference)

    def column_ids(rows: Sequence[str]) -> set[tuple]:
        counters = [0] * len(rows)
        ids = set()
        for col in zip(*rows):
            key = []
            for r, ch in enumerate(col):
                if ch == GAP_CHAR:
                    key.append(None)
                else:
                    key.append(counters[r])
                    counters[r] += 1
            ids.add(tuple(key))
        return ids

    ref_ids = column_ids(reference)
    if not ref_ids:
        return 1.0
    cand_ids = column_ids(candidate)
    return len(cand_ids & ref_ids) / len(ref_ids)


def sp_breakdown(
    rows: Sequence[str], scheme: ScoringScheme
) -> dict[tuple[int, int], float]:
    """SP score decomposed per row pair (linear gap model).

    The values sum to ``scheme.sp_score(rows)`` for three rows (and to the
    generalised SP score for more).
    """
    out: dict[tuple[int, int], float] = {}
    for a, b in combinations(range(len(rows)), 2):
        total = 0.0
        for x, y in zip(rows[a], rows[b]):
            total += scheme.pair_score(x, y)
        out[(a, b)] = total
    return out
