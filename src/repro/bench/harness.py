"""Experiment runner plumbing.

Every experiment is a function ``fn(quick: bool) -> ExperimentResult``
registered in :mod:`repro.bench.experiments`. ``quick=True`` shrinks
workload sizes so the whole suite finishes in well under a minute (used by
CI-style runs); ``quick=False`` uses the paper-scale parameters recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class ExperimentResult:
    """Rendered output plus structured data of one experiment.

    ``duration_s`` is the wall-clock time of the whole runner (filled in by
    :func:`run_experiment`); ``metrics`` is the flat scalar summary of
    everything the engines recorded into the metrics registry while the
    experiment ran — cells computed, cells/sec, peak plane/move-cube bytes,
    worker busy/wait totals (see ``MetricsRegistry.summary``).
    """

    exp_id: str
    title: str
    rendered: str
    data: dict[str, Any] = field(default_factory=dict)
    duration_s: float = 0.0
    metrics: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


#: Registry: exp id -> (title, runner). Populated by the @experiment
#: decorator in repro.bench.experiments.
_REGISTRY: dict[str, tuple[str, Callable[[bool], ExperimentResult]]] = {}


def experiment(exp_id: str, title: str):
    """Decorator registering an experiment runner."""

    def wrap(fn: Callable[[bool], ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = (title, fn)
        return fn

    return wrap


def list_experiments() -> list[tuple[str, str]]:
    """All registered ``(exp_id, title)`` pairs, in registration order."""
    _ensure_loaded()
    return [(eid, title) for eid, (title, _fn) in _REGISTRY.items()]


def run_experiment(
    exp_id: str,
    quick: bool = False,
    *,
    record: bool = False,
    runs_file: Any = None,
) -> ExperimentResult:
    """Run one experiment by id (see ``DESIGN.md`` §4 for the index).

    The run is wrapped in a metrics-collection scope, so the returned
    result carries engine-level metrics (cells/sec, peak bytes) alongside
    its rendered table, plus its wall-clock duration. With
    ``record=True`` the same summary is appended as one ``experiment``
    row to the run-record database (``runs_file`` defaults to
    ``RUNS.jsonl`` at the repo root; see ``docs/observability.md``).
    """
    from repro.obs import metrics as _metrics

    _ensure_loaded()
    try:
        title, fn = _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    with _metrics.collect() as reg:
        t0 = time.perf_counter()
        result = fn(quick)
        result.duration_s = time.perf_counter() - t0
    result.metrics = reg.summary()
    if record:
        from repro.runs import record_run

        record_run(
            "experiment",
            config={"exp": exp_id, "quick": quick},
            metrics={**result.metrics, "duration_s": result.duration_s},
            wall_s=result.duration_s,
            notes={"title": title},
            runs_file=runs_file,
        )
    return result


def _ensure_loaded() -> None:
    # The experiments module registers itself on import.
    import repro.bench.experiments  # noqa: F401
