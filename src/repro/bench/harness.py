"""Experiment runner plumbing.

Every experiment is a function ``fn(quick: bool) -> ExperimentResult``
registered in :mod:`repro.bench.experiments`. ``quick=True`` shrinks
workload sizes so the whole suite finishes in well under a minute (used by
CI-style runs); ``quick=False`` uses the paper-scale parameters recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class ExperimentResult:
    """Rendered output plus structured data of one experiment."""

    exp_id: str
    title: str
    rendered: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


#: Registry: exp id -> (title, runner). Populated by the @experiment
#: decorator in repro.bench.experiments.
_REGISTRY: dict[str, tuple[str, Callable[[bool], ExperimentResult]]] = {}


def experiment(exp_id: str, title: str):
    """Decorator registering an experiment runner."""

    def wrap(fn: Callable[[bool], ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = (title, fn)
        return fn

    return wrap


def list_experiments() -> list[tuple[str, str]]:
    """All registered ``(exp_id, title)`` pairs, in registration order."""
    _ensure_loaded()
    return [(eid, title) for eid, (title, _fn) in _REGISTRY.items()]


def run_experiment(exp_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id (see ``DESIGN.md`` §4 for the index)."""
    _ensure_loaded()
    try:
        title, fn = _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    return fn(quick)


def _ensure_loaded() -> None:
    # The experiments module registers itself on import.
    import repro.bench.experiments  # noqa: F401
