"""Benchmark harness: regenerates every table and figure of the evaluation.

Run ``python -m repro.bench --exp all`` (or ``repro-bench`` once installed)
to print each table's rows and each figure's series; see ``EXPERIMENTS.md``
for the recorded outputs and the paper-vs-measured discussion, and
``DESIGN.md`` §4 for the experiment index.
"""

from repro.bench.harness import ExperimentResult, run_experiment, list_experiments

__all__ = ["ExperimentResult", "run_experiment", "list_experiments"]
