"""One runner per table/figure of the (reconstructed) evaluation.

See the mismatch notice in ``DESIGN.md``: the experiment set reconstructs
the standard evaluation of the paper family from the title/venue; each
runner prints the rows or series the corresponding table or figure would
contain, and ``EXPERIMENTS.md`` records the measured outputs.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.bench.harness import ExperimentResult, experiment
from repro.cluster import (
    BlockGrid,
    ethernet_2007,
    gigabit_2007,
    simulate_wavefront,
)
from repro.cluster.metrics import block_sweep, sweep_procs
from repro.core.affine import align3_affine, score3_affine
from repro.core.bounds import carrillo_lipman_mask
from repro.core.dp3d import score3_dp3d
from repro.core.hirschberg import align3_hirschberg, memory_estimate_bytes
from repro.core.rolling import score3_slab
from repro.core.scoring import default_scheme_for
from repro.core.wavefront import score3_wavefront, wavefront_sweep
from repro.heuristics import align3_centerstar, align3_progressive
from repro.parallel.shared import score3_shared
from repro.parallel.threads import score3_threads
from repro.seqio.alphabet import DNA, PROTEIN
from repro.seqio.datasets import bundled_sequences
from repro.seqio.generate import MutationModel, mutated_family
from repro.util.tables import Table, format_series
from repro.util.timing import repeat_min

_DNA = default_scheme_for(DNA)
_PROCS = (1, 2, 4, 8, 16, 32, 64)


def _family(n: int, scale: float = 1.0, seed: int = 11) -> list[str]:
    model = MutationModel().scaled(scale)
    return mutated_family(n, model=model, seed=seed)


# ---------------------------------------------------------------------------
# T1 — sequential runtime vs length: scalar reference vs vectorised wavefront
# ---------------------------------------------------------------------------


@experiment("t1", "Table 1: sequential runtime vs sequence length")
def exp_t1(quick: bool) -> ExperimentResult:
    ns_scalar = (10, 20, 30) if quick else (10, 20, 30, 40)
    ns_vector = (20, 40, 60) if quick else (20, 40, 60, 80, 100, 120)
    table = Table(
        "T1 sequential runtime (DNA, linear gaps)",
        ["n", "cells", "t_dp3d_s", "t_wavefront_s", "vector_speedup", "Mcells/s"],
    )
    data: dict[str, list] = {"rows": []}
    for n in ns_vector:
        seqs = _family(n)
        cells = (len(seqs[0]) + 1) * (len(seqs[1]) + 1) * (len(seqs[2]) + 1)
        t_wf, s_wf = repeat_min(lambda: score3_wavefront(*seqs, _DNA), repeats=2)
        if n in ns_scalar:
            t_ref, s_ref = repeat_min(lambda: score3_dp3d(*seqs, _DNA), repeats=1)
            assert abs(s_ref - s_wf) < 1e-9
            ratio = t_ref / t_wf
        else:
            t_ref, ratio = float("nan"), float("nan")
        mcps = cells / t_wf / 1e6
        table.add_row(n, cells, t_ref, t_wf, ratio, mcps)
        data["rows"].append((n, cells, t_ref, t_wf, ratio, mcps))
    return ExperimentResult("t1", "sequential runtime", table.render(), data)


# ---------------------------------------------------------------------------
# T2 — memory: full matrix vs rolling vs Hirschberg
# ---------------------------------------------------------------------------


@experiment("t2", "Table 2: memory footprint of the engines")
def exp_t2(quick: bool) -> ExperimentResult:
    ns = (40, 80) if quick else (40, 80, 120, 160)
    table = Table(
        "T2 memory (bytes; analytic, plus tracemalloc-measured at smallest n)",
        ["n", "full_matrix_B", "wavefront_tb_B", "score_only_B", "hirschberg_B"],
    )
    data: dict[str, list] = {"rows": []}
    for n in ns:
        cube = (n + 1) ** 3
        full = cube * (8 + 1)  # float64 scores + int8 moves
        wavefront_tb = 4 * (n + 2) ** 2 * 8 + cube  # planes + move cube
        score_only = 4 * (n + 2) ** 2 * 8
        hb = memory_estimate_bytes(n, n, n)
        table.add_row(n, full, wavefront_tb, score_only, hb)
        data["rows"].append((n, full, wavefront_tb, score_only, hb))

    # Measured peak for the two memory-light paths at the smallest size.
    seqs = _family(ns[0])
    tracemalloc.start()
    score3_wavefront(*seqs, _DNA)
    _cur, peak_score = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    align3_hirschberg(*seqs, _DNA, base_cells=4_000)
    _cur, peak_hb = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    note = (
        f"measured peaks at n={ns[0]}: score-only wavefront "
        f"{peak_score} B, hirschberg {peak_hb} B"
    )
    data["measured"] = {"score_only": peak_score, "hirschberg": peak_hb}
    return ExperimentResult(
        "t2", "memory", table.render() + "\n" + note, data
    )


# ---------------------------------------------------------------------------
# F1/F2 — simulated cluster speedup / efficiency vs processor count
# ---------------------------------------------------------------------------


def _f1_sweep(quick: bool):
    ns = (100, 200) if quick else (100, 200, 400)
    series = {}
    results = {}
    for n in ns:
        res = sweep_procs(n, _PROCS, ethernet_2007(1), block=16)
        series[f"n={n}"] = [r.speedup for r in res]
        results[n] = res
    return ns, series, results


@experiment("f1", "Figure 1: simulated speedup vs processors (ethernet-2007)")
def exp_f1(quick: bool) -> ExperimentResult:
    ns, series, results = _f1_sweep(quick)
    rendered = format_series(
        "F1 speedup vs P (block 16, pencil mapping)", "P", list(_PROCS), series
    )
    ideal = {"ideal": list(_PROCS)}
    data = {"procs": list(_PROCS), "series": series, "ideal": ideal}
    return ExperimentResult("f1", "speedup", rendered, data)


@experiment("f2", "Figure 2: simulated parallel efficiency vs processors")
def exp_f2(quick: bool) -> ExperimentResult:
    ns, _series, results = _f1_sweep(quick)
    series = {
        f"n={n}": [r.efficiency for r in results[n]] for n in ns
    }
    rendered = format_series(
        "F2 efficiency vs P (block 16, pencil mapping)", "P", list(_PROCS), series
    )
    return ExperimentResult(
        "f2", "efficiency", rendered, {"procs": list(_PROCS), "series": series}
    )


# ---------------------------------------------------------------------------
# F3 — measured shared-memory speedup on this machine
# ---------------------------------------------------------------------------


@experiment("f3", "Figure 3: measured shared-memory speedup (this machine)")
def exp_f3(quick: bool) -> ExperimentResult:
    import multiprocessing as mp

    ns = (60, 80) if quick else (60, 80, 100, 120)
    cores = mp.cpu_count()
    table = Table(
        f"F3 measured wall time (s) and speedup, {cores} cores",
        ["n", "t_serial", "t_threads", "t_shared", "speedup_shared"],
    )
    data: dict[str, list] = {"rows": []}
    for n in ns:
        seqs = _family(n)
        t_serial, s0 = repeat_min(lambda: score3_wavefront(*seqs, _DNA), repeats=3)
        t_thr, s1 = repeat_min(
            lambda: score3_threads(*seqs, _DNA, workers=cores), repeats=3
        )
        t_shm, s2 = repeat_min(
            lambda: score3_shared(*seqs, _DNA, workers=cores), repeats=3, warmup=1
        )
        assert abs(s0 - s1) < 1e-9 and abs(s0 - s2) < 1e-9
        table.add_row(n, t_serial, t_thr, t_shm, t_serial / t_shm)
        data["rows"].append((n, t_serial, t_thr, t_shm, t_serial / t_shm))
    return ExperimentResult("f3", "shared-memory speedup", table.render(), data)


@experiment("f3pool", "Figure 3 addendum: persistent-pool speedup (this machine)")
def exp_f3pool(quick: bool) -> ExperimentResult:
    import multiprocessing as mp

    from repro.parallel.executor import WavefrontPool

    ns = (60, 80) if quick else (60, 80, 100, 120)
    cores = mp.cpu_count()
    table = Table(
        f"F3-pool measured wall time (s), {cores} cores, persistent workers",
        ["n", "t_serial", "t_pool", "speedup_pool"],
    )
    data: dict[str, list] = {"rows": []}
    cap = max(ns) + 10
    with WavefrontPool((cap, cap, cap), workers=cores) as pool:
        for n in ns:
            seqs = _family(n)
            t_serial, s0 = repeat_min(
                lambda: score3_wavefront(*seqs, _DNA), repeats=4, warmup=1
            )
            t_pool, s1 = repeat_min(
                lambda: pool.score3(*seqs, _DNA), repeats=4, warmup=1
            )
            assert abs(s0 - s1) < 1e-9
            table.add_row(n, t_serial, t_pool, t_serial / t_pool)
            data["rows"].append((n, t_serial, t_pool, t_serial / t_pool))
    return ExperimentResult("f3pool", "pool speedup", table.render(), data)


# ---------------------------------------------------------------------------
# F4 — block-size sweep and mapping ablation
# ---------------------------------------------------------------------------


@experiment("f4", "Figure 4: block-size tradeoff and mapping ablation")
def exp_f4(quick: bool) -> ExperimentResult:
    n = 100 if quick else 200
    procs = 16
    blocks = (4, 8, 16, 32, 64)
    machine = ethernet_2007(procs)
    res = block_sweep(n, blocks, machine)
    series = {
        "speedup": [r.speedup for r in res],
        "messages": [r.messages for r in res],
        "comm_time_s": [r.comm_time_total for r in res],
    }
    rendered = format_series(
        f"F4 block sweep (n={n}, P={procs}, ethernet-2007)",
        "block",
        list(blocks),
        series,
    )
    # Mapping ablation at the sweet-spot block size.
    grid = BlockGrid.for_sequences(n, n, n, 16)
    mapping_rows = Table(
        "F4b mapping ablation (block 16)", ["mapping", "speedup", "comm_MB"]
    )
    mapping_data = {}
    for mapping in ("pencil", "linear", "slab"):
        r = simulate_wavefront(grid, machine, mapping=mapping)
        mapping_rows.add_row(mapping, r.speedup, r.comm_volume_bytes / 1e6)
        mapping_data[mapping] = r.speedup
    rendered += "\n" + mapping_rows.render()
    return ExperimentResult(
        "f4",
        "block sweep",
        rendered,
        {"blocks": list(blocks), "series": series, "mappings": mapping_data},
    )


# ---------------------------------------------------------------------------
# T3 — exact vs heuristic SP score (optimality gap)
# ---------------------------------------------------------------------------


@experiment("t3", "Table 3: exact vs heuristic SP score across divergence")
def exp_t3(quick: bool) -> ExperimentResult:
    n = 40 if quick else 60
    scales = (0.5, 1.0, 2.0) if quick else (0.5, 1.0, 2.0, 4.0)
    trials = 3 if quick else 5
    table = Table(
        f"T3 optimality gap (DNA, n~{n}, {trials} trials/row)",
        ["mut_scale", "exact_SP", "centerstar_SP", "progressive_SP",
         "gap_cs", "gap_pg", "heuristic_optimal_frac", "pair_agreement_pg"],
    )
    data: dict[str, list] = {"rows": []}
    for scale in scales:
        from repro.analysis.compare import pair_agreement
        from repro.core.wavefront import align3_wavefront

        ex_t = cs_t = pg_t = agree_t = 0.0
        opt_hits = 0
        for trial in range(trials):
            seqs = _family(n, scale=scale, seed=100 * trial + 7)
            exact_aln = align3_wavefront(*seqs, _DNA)
            exact = exact_aln.score
            cs = align3_centerstar(*seqs, _DNA).score
            pg_aln = align3_progressive(*seqs, _DNA)
            pg = pg_aln.score
            assert cs <= exact + 1e-9 and pg <= exact + 1e-9
            ex_t += exact
            cs_t += cs
            pg_t += pg
            agree_t += pair_agreement(pg_aln.rows, exact_aln.rows)
            if max(cs, pg) >= exact - 1e-9:
                opt_hits += 1
        row = (
            scale,
            ex_t / trials,
            cs_t / trials,
            pg_t / trials,
            (ex_t - cs_t) / trials,
            (ex_t - pg_t) / trials,
            opt_hits / trials,
            agree_t / trials,
        )
        table.add_row(*row)
        data["rows"].append(row)
    return ExperimentResult("t3", "optimality gap", table.render(), data)


# ---------------------------------------------------------------------------
# F5 — Carrillo–Lipman pruning effectiveness vs divergence
# ---------------------------------------------------------------------------


@experiment("f5", "Figure 5: pruned fraction of the lattice vs divergence")
def exp_f5(quick: bool) -> ExperimentResult:
    n = 40 if quick else 80
    scales = (0.25, 1.0, 4.0) if quick else (0.25, 0.5, 1.0, 2.0, 4.0)
    kept, t_full_s, t_pruned_s = [], [], []
    for scale in scales:
        seqs = _family(n, scale=scale, seed=23)
        mask, stats = carrillo_lipman_mask(*seqs, _DNA)
        t_full, s_full = repeat_min(
            lambda: score3_wavefront(*seqs, _DNA), repeats=2
        )
        t_pruned, s_pruned = repeat_min(
            lambda: score3_wavefront(*seqs, _DNA, mask=mask), repeats=2
        )
        assert abs(s_full - s_pruned) < 1e-9, "pruning changed the optimum!"
        kept.append(stats.kept_fraction)
        t_full_s.append(t_full)
        t_pruned_s.append(t_pruned)
    rendered = format_series(
        f"F5 Carrillo-Lipman pruning (DNA, n~{n})",
        "mut_scale",
        list(scales),
        {
            "kept_fraction": kept,
            "t_full_s": t_full_s,
            "t_pruned_s": t_pruned_s,
        },
    )
    return ExperimentResult(
        "f5",
        "pruning",
        rendered,
        {"scales": list(scales), "kept": kept},
    )


# ---------------------------------------------------------------------------
# T4 — affine vs linear gap model
# ---------------------------------------------------------------------------


@experiment("t4", "Table 4: affine vs linear gap model (globins)")
def exp_t4(quick: bool) -> ExperimentResult:
    seqs = bundled_sequences("globins")
    if quick:
        seqs = [s[:40] for s in seqs]
    scheme_lin = default_scheme_for(PROTEIN)
    scheme_aff = scheme_lin.with_gaps(gap=-2.0, gap_open=-10.0)
    table = Table(
        "T4 gap models on the globin fragments (BLOSUM62)",
        ["model", "score", "time_s", "aln_len", "identity"],
    )
    t_lin, _ = repeat_min(lambda: score3_wavefront(*seqs, scheme_lin), repeats=1)
    from repro.core.wavefront import align3_wavefront

    aln_lin = align3_wavefront(*seqs, scheme_lin)
    table.add_row(
        "linear(g=-8)", aln_lin.score, t_lin, aln_lin.length, aln_lin.identity()
    )
    t_aff, _ = repeat_min(lambda: score3_affine(*seqs, scheme_aff), repeats=1)
    aln_aff = align3_affine(*seqs, scheme_aff)
    table.add_row(
        "affine(-10,-2)", aln_aff.score, t_aff, aln_aff.length, aln_aff.identity()
    )
    # Affine center-star heuristic: the cheap baseline under the same
    # objective, quantifying the optimality gap in the affine setting too.
    t_cs, cs = repeat_min(
        lambda: align3_centerstar(*seqs, scheme_aff), repeats=1
    )
    assert cs.score <= aln_aff.score + 1e-9
    table.add_row(
        "affine centerstar", cs.score, t_cs, cs.length, cs.identity()
    )
    data = {
        "linear_score": aln_lin.score,
        "affine_score": aln_aff.score,
        "affine_centerstar_score": cs.score,
        "t_linear": t_lin,
        "t_affine": t_aff,
    }
    return ExperimentResult("t4", "affine vs linear", table.render(), data)


# ---------------------------------------------------------------------------
# T5 — per-rank memory scalability of the distributed algorithm
# ---------------------------------------------------------------------------


@experiment("t5", "Table 5: per-rank memory and attainable length vs P")
def exp_t5(quick: bool) -> ExperimentResult:
    from repro.cluster.blockgrid import BlockGrid
    from repro.cluster.memory import max_length_for_budget, per_rank_memory

    n = 100 if quick else 200
    procs_list = (1, 4, 16) if quick else (1, 4, 16, 64)
    budget = 256 * 1024 * 1024  # a 2007-era node's spare RAM
    table = Table(
        f"T5 per-rank memory (n={n}, block 16, pencil) and max length "
        f"under a {budget // 2**20} MiB/rank budget",
        ["P", "full_max_MB", "score_only_max_MB", "imbalance",
         "max_n_full", "max_n_score_only"],
    )
    data: dict[str, list] = {"rows": []}
    grid = BlockGrid.for_sequences(n, n, n, 16)
    for p in procs_list:
        full = per_rank_memory(grid, p, mode="full")
        so = per_rank_memory(grid, p, mode="score_only")
        # The probe cost is O((n/block)^3); cap the search where the point
        # is already made (values at the cap mean "at least this").
        cap = 256 if quick else 512
        nf = max_length_for_budget(budget, p, mode="full", max_n=cap)
        ns = max_length_for_budget(budget, p, mode="score_only", max_n=cap)
        row = (
            p,
            full.max_rank / 2**20,
            so.max_rank / 2**20,
            full.imbalance,
            nf,
            ns,
        )
        table.add_row(*row)
        data["rows"].append(row)
    return ExperimentResult("t5", "memory scalability", table.render(), data)


# ---------------------------------------------------------------------------
# F6 — communication volume vs processor count (model accounting)
# ---------------------------------------------------------------------------


@experiment("f6", "Figure 6: communication volume vs processors")
def exp_f6(quick: bool) -> ExperimentResult:
    n = 100 if quick else 200
    res_eth = sweep_procs(n, _PROCS, ethernet_2007(1), block=16)
    res_gig = sweep_procs(n, _PROCS, gigabit_2007(1), block=16)
    series = {
        "comm_MB": [r.comm_volume_bytes / 1e6 for r in res_eth],
        "messages": [r.messages for r in res_eth],
        "comm_time_eth_s": [r.comm_time_total for r in res_eth],
        "comm_time_gig_s": [r.comm_time_total for r in res_gig],
    }
    rendered = format_series(
        f"F6 communication vs P (n={n}, block 16)", "P", list(_PROCS), series
    )
    return ExperimentResult(
        "f6", "comm volume", rendered, {"procs": list(_PROCS), "series": series}
    )


# ---------------------------------------------------------------------------
# A1 — ablation: search-space reduction strategies (full vs CL vs banded)
# ---------------------------------------------------------------------------


@experiment("a1", "Ablation 1: full vs Carrillo-Lipman vs certified banding")
def exp_a1(quick: bool) -> ExperimentResult:
    from repro.core.band import align3_banded

    n = 50 if quick else 80
    scales = (0.5, 2.0) if quick else (0.5, 1.0, 2.0, 4.0)
    table = Table(
        f"A1 search-space strategies (DNA, n~{n})",
        ["mut_scale", "t_full_s", "t_pruned_s", "t_banded_s",
         "banded_cells_frac", "all_equal"],
    )
    data: dict[str, list] = {"rows": []}
    for scale in scales:
        seqs = _family(n, scale=scale, seed=41)
        cube = 1
        for s in seqs:
            cube *= len(s) + 1
        t_full, s_full = repeat_min(
            lambda: score3_wavefront(*seqs, _DNA), repeats=2
        )
        mask, _stats = carrillo_lipman_mask(*seqs, _DNA)
        t_pruned, s_pruned = repeat_min(
            lambda: score3_wavefront(*seqs, _DNA, mask=mask), repeats=2
        )
        t_banded, aln = repeat_min(
            lambda: align3_banded(*seqs, _DNA), repeats=2
        )
        equal = (
            abs(s_full - s_pruned) < 1e-9 and abs(s_full - aln.score) < 1e-9
        )
        assert equal, "strategies disagree on the optimum!"
        row = (
            scale,
            t_full,
            t_pruned,
            t_banded,
            aln.meta["cells"] / cube,
            equal,
        )
        table.add_row(*row)
        data["rows"].append(row)
    return ExperimentResult("a1", "search-space ablation", table.render(), data)


# ---------------------------------------------------------------------------
# A2 — ablation: Hirschberg base-case threshold
# ---------------------------------------------------------------------------


@experiment("a2", "Ablation 2: Hirschberg base-case size sweep")
def exp_a2(quick: bool) -> ExperimentResult:
    n = 50 if quick else 70
    seqs = _family(n, seed=42)
    thresholds = (1_000, 10_000, 100_000) if quick else (
        1_000, 10_000, 100_000, 1_000_000
    )
    reference = score3_wavefront(*seqs, _DNA)
    table = Table(
        f"A2 Hirschberg base_cells sweep (DNA, n~{n})",
        ["base_cells", "time_s", "slab_sweeps", "base_calls", "optimal"],
    )
    data: dict[str, list] = {"rows": []}
    for bc in thresholds:
        t, aln = repeat_min(
            lambda: align3_hirschberg(*seqs, _DNA, base_cells=bc), repeats=2
        )
        ok = abs(aln.score - reference) < 1e-9
        assert ok
        row = (bc, t, aln.meta["slab_sweeps"], aln.meta["base_calls"], ok)
        table.add_row(*row)
        data["rows"].append(row)
    return ExperimentResult("a2", "hirschberg ablation", table.render(), data)


# ---------------------------------------------------------------------------
# A3 — ablation: heterogeneous nodes and weighted pencil mapping
# ---------------------------------------------------------------------------


@experiment("a3", "Ablation 3: stragglers vs speed-weighted mapping")
def exp_a3(quick: bool) -> ExperimentResult:
    from repro.cluster.blockgrid import BlockGrid
    from repro.cluster.hetero import (
        simulate_wavefront_hetero,
        uniform_with_stragglers,
    )

    n = 100 if quick else 200
    procs = 16
    grid = BlockGrid.for_sequences(n, n, n, 16)
    slowdowns = (1.0, 2.0, 4.0) if quick else (1.0, 2.0, 4.0, 8.0)
    table = Table(
        f"A3 heterogeneity (n={n}, P={procs}, 2 stragglers, ethernet-2007)",
        ["slowdown", "naive_speedup", "weighted_speedup", "recovery"],
    )
    data: dict[str, list] = {"rows": []}
    for slow in slowdowns:
        machine = uniform_with_stragglers(procs, stragglers=2, slowdown=slow)
        naive = simulate_wavefront_hetero(grid, machine, mapping="pencil")
        weighted = simulate_wavefront_hetero(grid, machine, mapping="weighted")
        row = (
            slow,
            naive.speedup,
            weighted.speedup,
            weighted.speedup / naive.speedup,
        )
        table.add_row(*row)
        data["rows"].append(row)
    return ExperimentResult("a3", "heterogeneity", table.render(), data)


# ---------------------------------------------------------------------------
# Extra ablation: engine agreement & throughput overview (not a paper item,
# but ties the evaluation together and guards the harness itself).
# ---------------------------------------------------------------------------


@experiment("dist", "Distributed runtime demo: real ranks vs monolithic")
def exp_dist(quick: bool) -> ExperimentResult:
    from repro.cluster.blockgrid import BlockGrid
    from repro.cluster.machine import MachineModel
    from repro.cluster.mpirun import run_distributed
    from repro.cluster.simulate import simulate_wavefront

    n = 16 if quick else 24
    seqs = _family(n, seed=55)
    reference = score3_wavefront(*seqs, _DNA)
    table = Table(
        f"Distributed message-passing ranks (DNA, n~{n}, block 6)",
        ["procs", "score_ok", "messages", "comm_bytes", "ledger_matches_sim"],
    )
    data: dict[str, list] = {"rows": []}
    dims = tuple(len(s) for s in seqs)
    grid = BlockGrid.for_sequences(*dims, 6)
    for procs in (1, 2, 4):
        res = run_distributed(*seqs, _DNA, block=6, procs=procs)
        ok = abs(res.score - reference) < 1e-9
        assert ok, "distributed ranks disagree with the monolithic engine"
        if procs == 1:
            matches = res.messages == 0
        else:
            sim = simulate_wavefront(grid, MachineModel(procs=procs))
            matches = (
                res.messages == sim.messages
                and res.comm_bytes == sim.comm_volume_bytes
            )
        row = (procs, ok, res.messages, res.comm_bytes, matches)
        table.add_row(*row)
        data["rows"].append(row)
    return ExperimentResult("dist", "distributed demo", table.render(), data)


@experiment("engines", "Engine overview: agreement and throughput")
def exp_engines(quick: bool) -> ExperimentResult:
    n = 40 if quick else 60
    seqs = _family(n)
    table = Table(
        f"Engine overview (DNA, n~{n})", ["engine", "score", "time_s"]
    )
    rows = []
    for name, fn in (
        ("wavefront", lambda: score3_wavefront(*seqs, _DNA)),
        ("slab", lambda: score3_slab(*seqs, _DNA)),
        ("hirschberg", lambda: align3_hirschberg(*seqs, _DNA).score),
        ("shared(2)", lambda: score3_shared(*seqs, _DNA, workers=2)),
        ("threads(2)", lambda: score3_threads(*seqs, _DNA, workers=2)),
    ):
        t0 = time.perf_counter()
        score = fn()
        dt = time.perf_counter() - t0
        table.add_row(name, score, dt)
        rows.append((name, score, dt))
    scores = {round(r[1], 6) for r in rows}
    assert len(scores) == 1, f"engines disagree: {rows}"
    return ExperimentResult("engines", "engine overview", table.render(), {"rows": rows})
