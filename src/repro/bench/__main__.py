"""Command-line entry point: ``python -m repro.bench --exp t1`` or
``repro-bench --exp all``."""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.harness import list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures "
        "(see DESIGN.md section 4 for the experiment index).",
    )
    parser.add_argument(
        "--exp",
        default="all",
        help="experiment id (t1, t2, f1..f6, t3, t4, engines) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink workload sizes for a fast smoke run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write each experiment's rendered output to DIR/<id>.txt",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip appending each experiment to the run-record store "
        "(RUNS.jsonl; see docs/observability.md)",
    )
    parser.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store to append to (default: RUNS.jsonl at the "
        "repo root)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid, title in list_experiments():
            print(f"{eid:8s} {title}")
        return 0

    ids = (
        [eid for eid, _ in list_experiments()]
        if args.exp == "all"
        else [args.exp]
    )
    out_dir = None
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    total = 0.0
    for eid in ids:
        result = run_experiment(
            eid,
            quick=args.quick,
            record=not args.no_record,
            runs_file=args.runs_file,
        )
        total += result.duration_s
        print(result.rendered)
        extras = ""
        if result.metrics.get("cells_computed"):
            extras = (
                f" cells={result.metrics['cells_computed']:.0f}"
                f" peak_cells/s={result.metrics.get('cells_per_s', 0.0):.3g}"
            )
        print(f"[{eid} completed in {result.duration_s:.2f}s{extras}]\n")
        if out_dir is not None:
            (out_dir / f"{eid}.txt").write_text(result.rendered + "\n")
    print(f"[suite total: {len(ids)} experiment(s) in {total:.2f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
