"""Progressive (profile-based) heuristic for three sequences.

Align the closest pair exactly (pairwise NW), freeze that alignment into a
profile, then align the third sequence against the profile
(:mod:`repro.heuristics.profile`). Mistakes made in the first pairwise step
are never revisited — the canonical failure mode that exact three-way
alignment avoids, and the reason the optimality gap of experiment T3 grows
with divergence.
"""

from __future__ import annotations

from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3
from repro.heuristics.profile import Profile, align_profile_sequence
from repro.pairwise.nw import align2, score2
from repro.util.validation import check_sequences


def align3_progressive(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> Alignment3:
    """Three-way alignment by progressive profile extension."""
    check_sequences((sa, sb, sc), count=3)
    seqs = (sa, sb, sc)
    pairs = ((0, 1), (0, 2), (1, 2))
    best_pair = max(
        pairs, key=lambda p: score2(seqs[p[0]], seqs[p[1]], scheme)
    )
    x, y = best_pair
    (z,) = tuple(set(range(3)) - set(best_pair))

    seed = align2(seqs[x], seqs[y], scheme)
    profile = Profile.from_rows(seed.rows)
    cols, aligned_z = align_profile_sequence(profile, seqs[z], scheme)

    rows: list[str] = [""] * 3
    rows[x] = "".join(c[0] for c in cols)
    rows[y] = "".join(c[1] for c in cols)
    rows[z] = aligned_z
    score = scheme.sp_score(rows)
    return Alignment3(
        rows=tuple(rows),  # type: ignore[arg-type]
        score=score,
        meta={
            "engine": "progressive",
            "seed_pair": best_pair,
            "seed_score": seed.score,
        },
    )
