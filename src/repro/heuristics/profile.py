"""Alignment profiles and profile-to-sequence alignment.

A profile summarises the columns of an existing alignment; aligning a new
sequence against it is a plain 2-D DP where the "substitution" score of
(profile column, residue) is the summed pair score of the residue against
every row of the column (gap rows contribute the gap score), and inserting
a gap into the new sequence costs the column's residue count times the gap
score. This is the classic sum-of-pairs profile extension used by
progressive aligners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.seqio.alphabet import GAP_CHAR


@dataclass
class Profile:
    """Column summary of a gapped alignment.

    Attributes
    ----------
    columns:
        List of column tuples (characters, gaps included) of the source
        alignment, in order.
    depth:
        Number of rows of the source alignment.
    """

    columns: list[tuple[str, ...]]
    depth: int

    @classmethod
    def from_rows(cls, rows: tuple[str, ...] | list[str]) -> "Profile":
        """Build a profile from aligned rows (equal lengths required)."""
        if not rows:
            raise ValueError("profile requires at least one row")
        lengths = {len(r) for r in rows}
        if len(lengths) != 1:
            raise ValueError("profile rows have unequal lengths")
        return cls(columns=list(zip(*rows)), depth=len(rows))

    @property
    def length(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def residue_count(self, col_idx: int) -> int:
        """Number of non-gap characters in a column."""
        return sum(1 for c in self.columns[col_idx] if c != GAP_CHAR)

    def column_vs_residue(
        self, col_idx: int, residue: str, scheme: ScoringScheme
    ) -> float:
        """Summed pair score of ``residue`` against every row of a column."""
        total = 0.0
        for c in self.columns[col_idx]:
            total += scheme.gap if c == GAP_CHAR else scheme.pair_score(c, residue)
        return total

    def column_vs_gap(self, col_idx: int, scheme: ScoringScheme) -> float:
        """Summed pair score of a gap against every row of a column
        (gap/gap pairs score 0)."""
        return self.residue_count(col_idx) * scheme.gap


def align_profile_sequence(
    profile: Profile,
    seq: str,
    scheme: ScoringScheme,
) -> tuple[list[tuple[str, ...]], str]:
    """Globally align ``seq`` against ``profile``.

    Returns ``(new_columns, aligned_seq_row)`` where ``new_columns`` are the
    profile's columns with all-gap columns inserted wherever the sequence
    required an insertion, and ``aligned_seq_row`` is the gapped sequence of
    the same length.
    """
    n, m = profile.length, len(seq)
    gap_row = (GAP_CHAR,) * profile.depth
    # Precompute scores to keep the fill tight.
    sub = np.empty((n, m))
    for i in range(n):
        for j in range(m):
            sub[i, j] = profile.column_vs_residue(i, seq[j], scheme)
    col_gap = np.array(
        [profile.column_vs_gap(i, scheme) for i in range(n)]
    )  # profile column against a gap in seq
    ins_gap = profile.depth * scheme.gap  # seq residue against all-gap column

    NEG = -1.0e30
    D = np.full((n + 1, m + 1), NEG)
    M = np.zeros((n + 1, m + 1), dtype=np.int8)
    D[0, 0] = 0.0
    for i in range(1, n + 1):
        D[i, 0] = D[i - 1, 0] + col_gap[i - 1]
        M[i, 0] = 1
    for j in range(1, m + 1):
        D[0, j] = D[0, j - 1] + ins_gap
        M[0, j] = 2
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            diag = D[i - 1, j - 1] + sub[i - 1, j - 1]
            up = D[i - 1, j] + col_gap[i - 1]
            left = D[i, j - 1] + ins_gap
            if diag >= up and diag >= left:
                D[i, j], M[i, j] = diag, 3
            elif up >= left:
                D[i, j], M[i, j] = up, 1
            else:
                D[i, j], M[i, j] = left, 2

    cols: list[tuple[str, ...]] = []
    row: list[str] = []
    i, j = n, m
    while (i, j) != (0, 0):
        mv = int(M[i, j])
        if mv == 3:
            cols.append(profile.columns[i - 1])
            row.append(seq[j - 1])
            i, j = i - 1, j - 1
        elif mv == 1:
            cols.append(profile.columns[i - 1])
            row.append(GAP_CHAR)
            i -= 1
        elif mv == 2:
            cols.append(gap_row)
            row.append(seq[j - 1])
            j -= 1
        else:  # pragma: no cover
            raise RuntimeError("broken profile traceback")
    cols.reverse()
    row.reverse()
    return cols, "".join(row)
