"""Heuristic three-sequence alignment baselines.

Exact three-way alignment exists because heuristics leave score on the
table; these baselines quantify that optimality gap (experiment T3) and
supply the lower bound that drives Carrillo–Lipman pruning
(:mod:`repro.core.bounds`).

* :func:`align3_centerstar` — Gusfield's center-star specialised to three
  sequences: pick the sequence with the highest summed pairwise score, align
  the other two to it, merge with "once a gap, always a gap".
* :func:`align3_progressive` — align the closest pair first, then align the
  third sequence against the resulting two-row *profile*.
"""

from repro.heuristics.centerstar import align3_centerstar
from repro.heuristics.progressive import align3_progressive
from repro.heuristics.profile import Profile, align_profile_sequence

__all__ = [
    "align3_centerstar",
    "align3_progressive",
    "Profile",
    "align_profile_sequence",
]
