"""Center-star heuristic for three sequences.

Gusfield's center-star method: choose the *center* sequence that maximises
the summed optimal pairwise score against the others, align each remaining
sequence to the center pairwise, then merge the two pairwise alignments on
the center's residues ("once a gap, always a gap"). For three sequences the
merge is a single synchronised walk.

The result is a feasible three-way alignment, so its SP score is a valid
lower bound on the optimum — which is exactly how
:mod:`repro.core.bounds` uses it.
"""

from __future__ import annotations

from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3
from repro.pairwise.nw import align2, score2
from repro.seqio.alphabet import GAP_CHAR
from repro.util.validation import check_sequences


def _merge_on_center(
    center_x: tuple[str, str],
    center_y: tuple[str, str],
) -> tuple[str, str, str]:
    """Merge two pairwise alignments that share their first row's sequence.

    ``center_x`` aligns (center, x); ``center_y`` aligns (center, y). The
    merge emits columns in order, consuming center residues synchronously;
    a column whose center is a gap in one alignment is emitted with a gap in
    the other alignment's member.
    """
    cx_c, cx_o = center_x
    cy_c, cy_o = center_y
    out_c: list[str] = []
    out_x: list[str] = []
    out_y: list[str] = []
    a = b = 0  # cursors into the two alignments
    while a < len(cx_c) or b < len(cy_c):
        a_gap = a < len(cx_c) and cx_c[a] == GAP_CHAR
        b_gap = b < len(cy_c) and cy_c[b] == GAP_CHAR
        if a_gap:
            # x inserted relative to the center: y gets a gap.
            out_c.append(GAP_CHAR)
            out_x.append(cx_o[a])
            out_y.append(GAP_CHAR)
            a += 1
        elif b_gap:
            out_c.append(GAP_CHAR)
            out_x.append(GAP_CHAR)
            out_y.append(cy_o[b])
            b += 1
        else:
            # Both alignments sit on the same center residue.
            if a >= len(cx_c) or b >= len(cy_c):
                raise RuntimeError(
                    "center-star merge desynchronised (unequal center use)"
                )
            if cx_c[a] != cy_c[b]:  # pragma: no cover - defensive
                raise RuntimeError("center rows disagree during merge")
            out_c.append(cx_c[a])
            out_x.append(cx_o[a])
            out_y.append(cy_o[b])
            a += 1
            b += 1
    return "".join(out_c), "".join(out_x), "".join(out_y)


def align3_centerstar(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> Alignment3:
    """Three-way alignment by the center-star heuristic.

    Runs the three pairwise alignments (O(n^2) total), so it is dramatically
    cheaper than the exact O(n^3) DP; experiment T3 measures how much SP
    score the shortcut costs.

    Affine schemes are supported: the pairwise step uses Gotoh and the
    result is scored with the quasi-natural affine SP scorer, so the
    returned score remains a valid lower bound for the affine 3-D DP.
    """
    check_sequences((sa, sb, sc), count=3)
    seqs = (sa, sb, sc)
    if scheme.is_affine:
        from repro.pairwise.gotoh import align2_affine, score2_affine

        pair_align = lambda x, y: align2_affine(x, y, scheme)  # noqa: E731
        pair_score = lambda x, y: score2_affine(x, y, scheme)  # noqa: E731
    else:
        pair_align = lambda x, y: align2(x, y, scheme)  # noqa: E731
        pair_score = lambda x, y: score2(x, y, scheme)  # noqa: E731
    pair_scores = {
        (0, 1): pair_score(sa, sb),
        (0, 2): pair_score(sa, sc),
        (1, 2): pair_score(sb, sc),
    }
    sums = [
        pair_scores[(0, 1)] + pair_scores[(0, 2)],
        pair_scores[(0, 1)] + pair_scores[(1, 2)],
        pair_scores[(0, 2)] + pair_scores[(1, 2)],
    ]
    center = max(range(3), key=lambda idx: sums[idx])
    others = [idx for idx in range(3) if idx != center]

    aln_x = pair_align(seqs[center], seqs[others[0]])
    aln_y = pair_align(seqs[center], seqs[others[1]])
    merged_c, merged_x, merged_y = _merge_on_center(aln_x.rows, aln_y.rows)

    rows: list[str] = [""] * 3
    rows[center] = merged_c
    rows[others[0]] = merged_x
    rows[others[1]] = merged_y
    score = (
        scheme.sp_score_affine_quasinatural(rows)
        if scheme.is_affine
        else scheme.sp_score(rows)
    )
    return Alignment3(
        rows=tuple(rows),  # type: ignore[arg-type]
        score=score,
        meta={
            "engine": "centerstar",
            "center": center,
            "pair_scores": {f"{x}{y}": v for (x, y), v in pair_scores.items()},
        },
    )
