"""Append-only, torn-line-tolerant JSONL store for run records.

``RUNS.jsonl`` lives at the repo root next to ``BENCH_kernel.json`` (it
is *not* committed — rows carry machine fingerprints and timestamps) and
is shared by every benchmark, acceptance gate and load generator that
self-records. The durability story is the cache disk tier's
(:mod:`repro.cache.store`), proven by ``tests/test_cache_concurrency.py``:

* appends go through an ``O_APPEND`` descriptor, so concurrent writers
  interleave at line granularity and never corrupt each other;
* a writer killed mid-append leaves a torn final line; readers skip it,
  and the next append newline-terminates it first so a *good* record is
  never glued onto the fragment;
* rows whose ``schema`` tag is unknown are skipped on read (counted in
  :attr:`RunStore.skipped`), so a future ``runs/2`` writer does not
  brick a ``runs/1`` reader sharing the file.

Unbounded append-only files eventually need mowing: :meth:`RunStore.gc`
keeps the newest N rows per kind, rotating the previous file to
``RUNS.jsonl.1`` so nothing is destroyed by a GC.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

from repro.runs.record import SCHEMA, RunRecord, assert_env_clean

RUNS_NAME = "RUNS.jsonl"


def default_runs_path() -> pathlib.Path:
    """The store path: the repo root when running from a checkout
    (``src`` layout, three parents up), the working directory otherwise."""
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root / RUNS_NAME
    return pathlib.Path.cwd() / RUNS_NAME


class RunStore:
    """Run-record database over one JSONL file.

    Stateless between calls: every read re-scans the file, so a store
    object is always consistent with concurrent appenders (rows are
    small and counts stay in the hundreds thanks to :meth:`gc`).
    """

    def __init__(self, path: Any = None):
        self.path = (
            default_runs_path()
            if path is None
            else pathlib.Path(os.fspath(path))
        )
        #: Lines the last read pass skipped (torn, foreign schema, or
        #: malformed) — surfaced by ``repro runs list``.
        self.skipped = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, record: RunRecord) -> None:
        """Append one record; raises :class:`~repro.runs.record.EnvLeakError`
        if the serialised row contains any environment-variable value."""
        line = json.dumps(
            record.to_dict(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )
        assert_env_clean(line)
        data = (line + "\n").encode()
        if self._tail_is_torn():
            # Terminate the torn final line a killed writer left behind
            # so this record starts on a fresh line (the fragment stays,
            # unparseable but harmless — readers skip it).
            data = b"\n" + data
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def _tail_is_torn(self) -> bool:
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except (OSError, ValueError):
            return False  # missing or empty file: nothing to repair

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(
        self,
        kind: str | None = None,
        fp: str | None = None,
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Rows in append order, optionally filtered by ``kind`` and
        fingerprint id; ``limit`` keeps only the newest N after filtering."""
        out: list[RunRecord] = []
        self.skipped = 0
        if not self.path.exists():
            return out
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    rec = RunRecord.from_dict(doc)
                except (json.JSONDecodeError, ValueError, KeyError, TypeError):
                    self.skipped += 1
                    continue
                if kind is not None and rec.kind != kind:
                    continue
                if fp is not None and rec.fp != fp:
                    continue
                out.append(rec)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def tail_lines(self, limit: int = 10) -> list[str]:
        """The last ``limit`` raw lines (including ones readers skip)."""
        if not self.path.exists():
            return []
        with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
            lines = [ln.rstrip("\n") for ln in fh if ln.strip()]
        return lines[-limit:] if limit >= 0 else lines

    def counts(self) -> dict[str, int]:
        """Row count per kind (valid rows only)."""
        out: dict[str, int] = {}
        for rec in self.records():
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Rotation / GC
    # ------------------------------------------------------------------

    def gc(self, keep_per_kind: int = 100) -> tuple[int, int]:
        """Compact the store to the newest ``keep_per_kind`` rows per kind.

        The pre-GC file is rotated to ``<path>.1`` (clobbering any older
        rotation), so one GC is always reversible; torn fragments and
        foreign-schema rows are left behind in the rotation only.
        Returns ``(kept, dropped)`` counting valid rows.
        """
        if keep_per_kind < 1:
            raise ValueError(
                f"keep_per_kind must be >= 1, got {keep_per_kind}"
            )
        recs = self.records()
        dropped = self.skipped
        keep_idx: set[int] = set()
        per_kind: dict[str, list[int]] = {}
        for i, rec in enumerate(recs):
            per_kind.setdefault(rec.kind, []).append(i)
        for indices in per_kind.values():
            keep_idx.update(indices[-keep_per_kind:])
        kept = [recs[i] for i in sorted(keep_idx)]
        dropped += len(recs) - len(kept)
        if not self.path.exists():
            return 0, 0
        rotated = self.path.with_name(self.path.name + ".1")
        os.replace(self.path, rotated)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for rec in kept:
                fh.write(
                    json.dumps(
                        rec.to_dict(), sort_keys=True,
                        separators=(",", ":"), allow_nan=False,
                    )
                    + "\n"
                )
        os.replace(tmp, self.path)
        return len(kept), dropped
