"""Schema-versioned run records (``runs/1``).

A :class:`RunRecord` is one full-context measurement row: what ran
(``kind``), under which knobs (``config`` + its hash), on which code
(git revision + dirty flag), on what machine (an *environment-elided*
fingerprint), for how long (``wall_s``), and what it measured (a flat
``metrics`` payload of floats — cells/s, speedups, latency percentiles,
hit rates, shed rates…). The perf-trajectory gate in
``tools/check_perf.py --trajectory`` compares a fresh measurement
against the rolling median of prior same-fingerprint rows, so every
field here exists to make rows comparable *or* to explain why they are
not (different config hash, different machine, dirty tree).

Environment hygiene
-------------------
The machine fingerprint is built from :mod:`platform` and
``os.cpu_count()`` only — never from ``os.environ`` — mirroring the
PR 2 ``docs/api.md`` fix that stopped generated artifacts from leaking
the build machine's environment. :func:`assert_env_clean` enforces the
discipline at append time: a serialised record that contains the value
of any environment variable is rejected with :class:`EnvLeakError`
before it reaches disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cache.store import jsonable

#: Schema tag stamped on every row; readers skip rows with any other tag.
SCHEMA = "runs/1"

#: Fingerprint id of rows migrated from a committed machine-neutral
#: baseline (e.g. ``BENCH_kernel.json``). Deliberately never equal to a
#: real :func:`fingerprint_id`, so baseline rows seed *trends* but are
#: excluded from same-fingerprint trajectory gating.
BASELINE_FP = "baseline"

#: Environment-variable values shorter than this are not treated as
#: leaks: tiny values ("1", "xterm", "C.UTF-8") collide with legitimate
#: record content far too often to be a signal.
_MIN_LEAK_LEN = 16


class EnvLeakError(ValueError):
    """A run record contains the value of an environment variable."""


def canonical_json(value: Any) -> str:
    """Deterministic strict-JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(
        jsonable(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def digest(value: Any, length: int = 12) -> str:
    """Truncated SHA-256 of the canonical JSON rendering of ``value``."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()[:length]


def machine_fingerprint() -> dict[str, Any]:
    """What kind of machine this is — without saying *which* machine.

    CPU count, platform triple and Python version are what move
    benchmark numbers; hostnames, usernames, paths and environment
    variables identify people and machines and are deliberately absent.
    """
    return {
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def fingerprint_id(fingerprint: Mapping[str, Any] | None = None) -> str:
    """Stable short id of a fingerprint dict (default: this machine)."""
    fp = machine_fingerprint() if fingerprint is None else dict(fingerprint)
    return digest(fp)


def config_hash(config: Mapping[str, Any] | None) -> str:
    """Stable short id of a config dict (key order never matters)."""
    return digest(dict(config or {}))


def git_revision(start_dir: Any = None) -> tuple[str | None, bool]:
    """``(short_rev, dirty)`` of the checkout at ``start_dir``, best effort.

    Returns ``(None, False)`` when git is missing, times out, or the
    directory is not a work tree — a record without provenance still
    beats no record.
    """
    cwd = os.fspath(start_dir) if start_dir is not None else os.getcwd()
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if rev.returncode != 0:
            return None, False
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = status.returncode == 0 and bool(status.stdout.strip())
        return rev.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, False


def assert_env_clean(
    record_text: str, environ: Mapping[str, str] | None = None
) -> None:
    """Raise :class:`EnvLeakError` if ``record_text`` contains the value
    of any environment variable (of :data:`_MIN_LEAK_LEN`+ characters).

    ``environ`` defaults to ``os.environ`` *at call time* (the PR 2
    rule: no import-time environment snapshots).
    """
    env = os.environ if environ is None else environ
    for name, value in env.items():
        if len(value) >= _MIN_LEAK_LEN and value in record_text:
            raise EnvLeakError(
                f"run record contains the value of ${name} — records must "
                "stay environment-free (see docs/observability.md)"
            )


@dataclass
class RunRecord:
    """One schema-versioned row of the run database."""

    kind: str
    config: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0
    t: float = 0.0
    fingerprint: dict[str, Any] = field(default_factory=dict)
    fp: str = ""
    config_hash: str = ""
    git_rev: str | None = None
    git_dirty: bool = False
    notes: dict[str, Any] = field(default_factory=dict)
    schema: str = SCHEMA

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "kind": self.kind,
            "t": self.t,
            "config": jsonable(self.config),
            "config_hash": self.config_hash,
            "fingerprint": jsonable(self.fingerprint),
            "fp": self.fp,
            "git_rev": self.git_rev,
            "git_dirty": self.git_dirty,
            "wall_s": self.wall_s,
            "metrics": jsonable(self.metrics),
            "notes": jsonable(self.notes),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from a parsed row; raises on malformed docs."""
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"row schema {doc.get('schema')!r} is not {SCHEMA!r}"
            )
        kind = doc["kind"]
        if not isinstance(kind, str) or not kind:
            raise ValueError("row kind must be a non-empty string")
        metrics = doc.get("metrics") or {}
        if not isinstance(metrics, dict):
            raise ValueError("row metrics must be an object")
        return cls(
            kind=kind,
            config=dict(doc.get("config") or {}),
            metrics={str(k): v for k, v in metrics.items()},
            wall_s=float(doc.get("wall_s", 0.0)),
            t=float(doc.get("t", 0.0)),
            fingerprint=dict(doc.get("fingerprint") or {}),
            fp=str(doc.get("fp", "")),
            config_hash=str(doc.get("config_hash", "")),
            git_rev=doc.get("git_rev"),
            git_dirty=bool(doc.get("git_dirty", False)),
            notes=dict(doc.get("notes") or {}),
        )

    def metric(self, name: str, default: float | None = None) -> float | None:
        """One metric as a float (non-finite sentinels parse back)."""
        value = self.metrics.get(name)
        if value is None:
            return default
        try:
            return float(value)
        except (TypeError, ValueError):
            return default

    def when(self) -> str:
        """Human timestamp; migrated baseline rows have no wall clock."""
        if self.t <= 0.0:
            return "baseline"
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.t))


def new_record(
    kind: str,
    *,
    config: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    wall_s: float = 0.0,
    notes: Mapping[str, Any] | None = None,
    fingerprint: Mapping[str, Any] | None = None,
    git_dir: Any = None,
) -> RunRecord:
    """Build a fully-populated record for a run that just finished."""
    fp_dict = machine_fingerprint() if fingerprint is None else dict(fingerprint)
    rev, dirty = git_revision(git_dir)
    cfg = dict(config or {})
    return RunRecord(
        kind=kind,
        config=cfg,
        metrics=dict(metrics or {}),
        wall_s=float(wall_s),
        t=time.time(),
        fingerprint=fp_dict,
        fp=fingerprint_id(fp_dict),
        config_hash=config_hash(cfg),
        git_rev=rev,
        git_dirty=dirty,
        notes=dict(notes or {}),
    )
