"""Perf-trajectory helpers: kernel-row extraction and rolling medians.

The trajectory discipline: a regression gate should compare a fresh
measurement against the *recent history of this machine*, not against
one lucky committed snapshot. These helpers give
``tools/check_perf.py --trajectory`` (and the trend renderer) the
pieces:

* :func:`kernel_metrics` — flatten a ``bench-kernel/2`` benchmark
  document into the flat metric payload a run row carries;
* :func:`seed_from_baseline` — migrate the committed
  ``BENCH_kernel.json`` snapshot into an empty store as the first
  trajectory row (fingerprint id :data:`~repro.runs.record.BASELINE_FP`,
  so it seeds trends but never pollutes same-machine gating);
* :func:`trajectory` / :func:`trajectory_median` — the last N
  same-fingerprint values of one metric and their rolling median, with
  ``None`` signalling "trajectory too thin, fall back to the baseline".
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from repro.runs.record import BASELINE_FP, RunRecord, config_hash
from repro.runs.store import RunStore

#: Kind of rows holding real plane-kernel benchmark measurements — the
#: rows the perf trajectory is made of. ``check_perf`` gate-outcome rows
#: use kind ``"check_perf"`` and are never gated against.
KERNEL_KIND = "bench_kernel"

#: Schema tag of the committed kernel baseline document.
KERNEL_BASELINE_SCHEMA = "bench-kernel/2"


def default_baseline_path() -> pathlib.Path:
    """``BENCH_kernel.json`` next to the run store's default location."""
    from repro.runs.store import default_runs_path

    return default_runs_path().parent / "BENCH_kernel.json"


def kernel_metrics(doc: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a ``bench-kernel/2`` result document into run-row metrics."""
    small, large = doc["small_repeated"], doc["large_sweep"]
    metrics = {
        "small_speedup": float(small["speedup"]),
        "large_speedup": float(large["speedup"]),
        "small_cells_per_s": float(small["new_cells_per_s"]),
        "large_cells_per_s": float(large["new_cells_per_s"]),
    }
    hirschberg = doc.get("hirschberg_e2e")
    if hirschberg:
        metrics["hirschberg_cells_per_s"] = float(
            hirschberg["cube_cells_per_s"]
        )
        metrics["hirschberg_seconds"] = float(hirschberg["seconds"])
    # Documents written before the pruned regime existed lack this
    # section; .get keeps old trajectory rows loadable.
    high = doc.get("high_similarity")
    if high:
        metrics["pruned_speedup"] = float(high["speedup"])
        metrics["pruned_kept_fraction"] = float(high["kept_fraction"])
    # Likewise for documents predating the block-tiled scaling curve.
    scaling = doc.get("scaling")
    if scaling:
        metrics["scaling_speedup"] = float(scaling["speedup"])
    anchored = doc.get("long_anchored")
    if anchored:
        metrics["anchored_seconds"] = float(anchored["seconds"])
        metrics["anchored_coverage"] = float(anchored["coverage"])
        metrics["anchored_cells_per_s"] = float(
            anchored["dense_equiv_cells_per_s"]
        )
    return metrics


def seed_from_baseline(
    store: RunStore, baseline_path: Any = None
) -> RunRecord | None:
    """Migrate ``BENCH_kernel.json`` into ``store`` if it has no kernel rows.

    Idempotent: a store that already holds any ``bench_kernel`` row is
    left untouched. Returns the migrated record, or None when nothing
    was (or could be) seeded. The committed file stays in place as the
    machine-neutral acceptance floor; the migrated row only guarantees
    the *trend* view is never empty on a fresh checkout.
    """
    if store.records(kind=KERNEL_KIND):
        return None
    path = (
        default_baseline_path()
        if baseline_path is None
        else pathlib.Path(baseline_path)
    )
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("schema") != KERNEL_BASELINE_SCHEMA:
        return None
    try:
        metrics = kernel_metrics(doc)
    except (KeyError, TypeError, ValueError):
        return None
    record = RunRecord(
        kind=KERNEL_KIND,
        config=dict(doc.get("config") or {}),
        metrics=metrics,
        wall_s=0.0,
        t=0.0,  # the committed snapshot is deliberately timestamp-free
        fingerprint={"source": path.name},
        fp=BASELINE_FP,
        config_hash=config_hash(doc.get("config")),
        git_rev=None,
        git_dirty=False,
        notes={"migrated_from": path.name},
    )
    store.append(record)
    return record


def rolling_median(values: list[float]) -> float:
    """Median of ``values`` (mean of the middle pair for even counts)."""
    if not values:
        raise ValueError("median of an empty trajectory")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def trajectory(
    store: RunStore,
    metric: str,
    *,
    kind: str = KERNEL_KIND,
    fp: str | None = None,
    window: int = 5,
) -> list[float]:
    """The last ``window`` finite values of ``metric`` from same-``fp``
    rows of ``kind`` (``fp=None`` means this machine's fingerprint)."""
    from repro.runs.record import fingerprint_id

    if fp is None:
        fp = fingerprint_id()
    values: list[float] = []
    for rec in store.records(kind=kind, fp=fp):
        value = rec.metric(metric)
        if value is not None and value == value:  # drop NaN
            values.append(value)
    return values[-window:] if window >= 0 else values


def trajectory_median(
    store: RunStore,
    metric: str,
    *,
    kind: str = KERNEL_KIND,
    fp: str | None = None,
    window: int = 5,
    min_rows: int = 3,
) -> tuple[float | None, list[float]]:
    """``(median, values)`` over the trajectory window; the median is
    ``None`` while fewer than ``min_rows`` rows exist — the caller's
    signal to fall back to the committed baseline."""
    values = trajectory(store, metric, kind=kind, fp=fp, window=window)
    if len(values) < min_rows:
        return None, values
    return rolling_median(values), values
