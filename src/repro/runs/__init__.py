"""Run-record database: every benchmark, gate and load run is a row.

``repro.runs`` turns one-off performance snapshots into a *trajectory*:
each run of ``benchmarks/bench_*.py``, ``tools/check_*.py`` and the
``repro.bench`` harness appends a schema-versioned
:class:`~repro.runs.record.RunRecord` to an append-only JSONL store
(``RUNS.jsonl`` at the repo root, not committed), and
``tools/check_perf.py --trajectory`` gates fresh measurements against
the rolling median of prior same-machine rows instead of a single
committed baseline. ``repro runs`` and ``repro report --trends`` render
the database. See ``docs/observability.md``.

:func:`record_run` is the one-call recorder the instrumented scripts
use — deliberately best-effort, because a benchmark must never fail
just because its bookkeeping could not be written.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Mapping

from repro.runs.record import (  # noqa: F401
    BASELINE_FP,
    SCHEMA,
    EnvLeakError,
    RunRecord,
    assert_env_clean,
    config_hash,
    fingerprint_id,
    git_revision,
    machine_fingerprint,
    new_record,
)
from repro.runs.store import (  # noqa: F401
    RUNS_NAME,
    RunStore,
    default_runs_path,
)
from repro.runs.trajectory import (  # noqa: F401
    KERNEL_KIND,
    default_baseline_path,
    kernel_metrics,
    rolling_median,
    seed_from_baseline,
    trajectory,
    trajectory_median,
)
from repro.runs.trend import (  # noqa: F401
    lower_is_better,
    render_runs_table,
    render_trends,
    sparkline,
)

__all__ = [
    "BASELINE_FP",
    "SCHEMA",
    "EnvLeakError",
    "RunRecord",
    "RunStore",
    "RUNS_NAME",
    "assert_env_clean",
    "config_hash",
    "default_baseline_path",
    "default_runs_path",
    "fingerprint_id",
    "git_revision",
    "KERNEL_KIND",
    "kernel_metrics",
    "lower_is_better",
    "machine_fingerprint",
    "new_record",
    "record_run",
    "render_runs_table",
    "render_trends",
    "rolling_median",
    "seed_from_baseline",
    "sparkline",
    "trajectory",
    "trajectory_median",
]


def record_run(
    kind: str,
    *,
    config: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    wall_s: float = 0.0,
    notes: Mapping[str, Any] | None = None,
    runs_file: Any = None,
    enabled: bool = True,
    git_dir: Any = None,
) -> RunRecord | None:
    """Build and append one run row; never raises.

    Returns the appended record, or None when recording is disabled or
    failed (the failure is reported on stderr — a read-only checkout or
    a full disk must not turn a green benchmark red).
    """
    if not enabled:
        return None
    try:
        record = new_record(
            kind,
            config=config,
            metrics=metrics,
            wall_s=wall_s,
            notes=notes,
            git_dir=git_dir,
        )
        RunStore(runs_file).append(record)
        return record
    except Exception as exc:  # noqa: BLE001 — recording is best-effort
        print(f"warning: run record not written: {exc}", file=sys.stderr)
        return None


class RunTimer:
    """Context manager measuring ``wall_s`` for :func:`record_run`.

    >>> with RunTimer() as timer:
    ...     pass
    >>> timer.wall_s >= 0.0
    True
    """

    def __enter__(self) -> "RunTimer":
        self._t0 = time.perf_counter()
        self.wall_s = 0.0
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        return False
