"""Trend rendering: sparklines, deltas and regression annotations.

Backend of ``repro report --trends`` and the ``repro runs`` CLI. Each
metric recorded by at least two rows of a kind becomes one trend row:

``metric  n  first  last  delta%  trend  spark``

where ``delta%`` compares the newest value against the median of the
*previous* values (one noisy run should not move the reference), and
``trend`` annotates moves beyond the tolerance as ``REGRESSING`` or
``improving`` with direction awareness — cells/s falling is a
regression, p99 latency falling is an improvement.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.runs.store import RunStore
from repro.runs.trajectory import rolling_median
from repro.util.tables import format_table

#: Eight-level block sparkline ramp (min .. max of the series).
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Render ``values`` as one block character each; NaN renders as a
    space, a constant series as a flat mid-level line."""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if not math.isfinite(v):
            out.append(" ")
        elif span <= 0:
            out.append(SPARK_CHARS[3])
        else:
            idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[idx])
    return "".join(out)


def lower_is_better(metric: str) -> bool:
    """Direction heuristic from the metric name.

    Throughput-ish names (per_s, speedup, rates of good events) count up;
    time-ish and failure-ish names (seconds, latency percentiles, shed,
    overhead, errors, misses) count down. Checked before the generic
    ``_s`` suffix so ``cells_per_s`` stays higher-is-better.
    """
    name = metric.lower()
    higher = ("per_s", "speedup", "hit_rate", "throughput", "dedup", "passed")
    if any(h in name for h in higher):
        return False
    lower = (
        "second", "latency", "_ms", "p50", "p95", "p99", "shed",
        "overhead", "err", "miss", "wall",
    )
    if any(h in name for h in lower):
        return True
    return name.endswith("_s")


def _delta(values: list[float]) -> float | None:
    """Fractional move of the newest value vs the median of the rest."""
    if len(values) < 2:
        return None
    ref = rolling_median(values[:-1])
    if ref == 0:
        return None
    return values[-1] / ref - 1.0


def trend_flag(metric: str, delta: float | None, tolerance: float) -> str:
    """Annotate a delta: regressions shout, improvements whisper."""
    if delta is None or abs(delta) <= tolerance:
        return ""
    worse = delta < 0 if not lower_is_better(metric) else delta > 0
    return "REGRESSING" if worse else "improving"


def render_trends(
    store: RunStore,
    *,
    kinds: list[str] | None = None,
    window: int = 12,
    tolerance: float = 0.10,
) -> str:
    """Per-kind trend tables over the last ``window`` rows of each kind."""
    records = store.records()
    if kinds:
        wanted = set(kinds)
        records = [r for r in records if r.kind in wanted]
    if not records:
        return f"run store {store.path}: no records"
    by_kind: dict[str, list] = defaultdict(list)
    for rec in records:
        by_kind[rec.kind].append(rec)

    sections = [
        f"run store {store.path}: {len(records)} record(s), "
        f"{len(by_kind)} kind(s)"
        + (f", {store.skipped} skipped line(s)" if store.skipped else "")
    ]
    for kind in sorted(by_kind):
        recs = by_kind[kind][-window:] if window >= 0 else by_kind[kind]
        series: dict[str, list[float]] = defaultdict(list)
        for rec in recs:
            for name in rec.metrics:
                value = rec.metric(name)
                if value is not None:
                    series[name].append(value)
        rows = []
        for name in sorted(series):
            values = series[name]
            if len(values) < 2:
                continue
            delta = _delta(values)
            rows.append(
                (
                    name,
                    len(values),
                    values[0],
                    values[-1],
                    "-" if delta is None else f"{delta:+.1%}",
                    trend_flag(name, delta, tolerance),
                    sparkline(values),
                )
            )
        if rows:
            span = f"{recs[0].when()} .. {recs[-1].when()}"
            sections.append(
                format_table(
                    f"{kind} trends ({len(recs)} runs, {span})",
                    ["metric", "n", "first", "last", "delta",
                     "trend", "spark"],
                    rows,
                )
            )
        else:
            sections.append(
                f"== {kind} trends ==\n(only one recorded run — "
                "record another to see a trend)"
            )
    return "\n\n".join(sections)


def render_runs_table(records: list, skipped: int = 0) -> str:
    """The ``repro runs list`` view: one row per record."""
    if not records:
        return "no run records"
    rows = []
    for i, rec in enumerate(records):
        key_metrics = ", ".join(
            f"{k}={rec.metrics[k]:.4g}"
            if isinstance(rec.metrics[k], (int, float))
            else f"{k}={rec.metrics[k]}"
            for k in sorted(rec.metrics)[:2]
        )
        rows.append(
            (
                i,
                rec.when(),
                rec.kind,
                rec.fp[:8] or "-",
                rec.config_hash[:8] or "-",
                (rec.git_rev or "-") + ("+" if rec.git_dirty else ""),
                rec.wall_s,
                len(rec.metrics),
                key_metrics,
            )
        )
    title = f"run records ({len(records)} shown"
    title += f", {skipped} skipped line(s))" if skipped else ")"
    return format_table(
        title,
        ["#", "when", "kind", "fp", "config", "git", "wall_s",
         "metrics", "head"],
        rows,
    )
