"""Shared cache service: the disk tier promoted to a network service.

``repro cache-server`` runs one :class:`CacheServer` in front of a
:class:`~repro.cache.store.ResultCache` (typically with a persistent
``cache_dir``), and every serve replica started with ``--cache-url``
treats it as a third cache tier. The payoff is shard-independence: a
result computed on replica A is one round trip away for replica B, and
a replica restarted during a rolling deploy refills its LRU from here
instead of recomputing O(n^3) cubes.

Protocol (same HTTP/1.1 JSON framing as the rest of the stack):

* ``GET /v1/cache/<key>`` → 200 ``{"key", "alignment"}`` | 404
* ``PUT /v1/cache/<key>`` with ``{"alignment": {...}}`` → 200
  (payloads are validated by decoding before insertion; corrupt ones
  get a 400 and never touch the store)
* ``GET /healthz`` → 200 (or 503 while draining)
* ``GET /metrics`` → cache counters + request counts

The service is intentionally dumb — no invalidation, no TTLs —
because keys are content-addressed digests of the full request: a key
can only ever map to one value, so "last write wins" and "serve
whatever you have" are both correct.
"""

from __future__ import annotations

import string
import sys
import time
from typing import Any

from repro.cache.store import ResultCache
from repro.serve import protocol
from repro.serve.httpd import JsonHttpServer, run_blocking

_KEY_CHARS = set(string.hexdigits)
#: sha256 hexdigest length — the only key shape the store emits.
_KEY_LEN = 64

_CACHE_PREFIX = "/v1/cache/"


def _valid_key(key: str) -> bool:
    return len(key) == _KEY_LEN and all(c in _KEY_CHARS for c in key)


class CacheServer(JsonHttpServer):
    """Asyncio HTTP front end over one :class:`ResultCache`."""

    banner = "cache-serving on"

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = None,
        cache_entries: int = 65536,
        keepalive_timeout_s: float = 30.0,
        drain_timeout_s: float = 10.0,
        drain_grace_s: float = 0.0,
        cache: ResultCache | None = None,
    ):
        super().__init__(
            host=host,
            port=port,
            keepalive_timeout_s=keepalive_timeout_s,
            drain_timeout_s=drain_timeout_s,
            drain_grace_s=drain_grace_s,
        )
        self.cache = cache if cache is not None else ResultCache(
            max_entries=cache_entries, cache_dir=cache_dir
        )
        self.requests = {"get": 0, "put": 0, "hit": 0}

    async def _dispatch(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, self._metrics_payload(), []
        if path.startswith(_CACHE_PREFIX):
            key = path[len(_CACHE_PREFIX):]
            if not _valid_key(key):
                return 400, protocol.error_payload(
                    "bad_key", "cache keys are 64-char hex digests"
                ), []
            if method == "GET":
                return self._get(key)
            if method == "PUT":
                return self._put(key, request)
            return self._method_not_allowed("GET, PUT")
        return 404, protocol.error_payload(
            "not_found", f"no route for {path}"
        ), []

    # ------------------------------------------------------------------

    def _get(self, key: str) -> tuple[int, Any, list[tuple[str, str]]]:
        self.requests["get"] += 1
        payload = self.cache.get_payload(key)
        if payload is None:
            return 404, protocol.error_payload(
                "cache_miss", "key not present"
            ), []
        self.requests["hit"] += 1
        return 200, {"key": key, "alignment": payload}, []

    def _put(
        self, key: str, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        self.requests["put"] += 1
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
            body.get("alignment"), dict
        ):
            raise protocol.BadRequest(
                'body must be {"alignment": {...}}'
            )
        try:
            self.cache.put_payload(key, body["alignment"])
        except (ValueError, KeyError, TypeError) as exc:
            return 400, protocol.error_payload(
                "bad_payload", f"alignment failed validation: {exc}"
            ), []
        # 200 with a body, not 204: the framing layer always writes a
        # JSON body, and http.client ignores bodies on 204 — the stale
        # bytes would desync the next keep-alive exchange.
        return 200, {"stored": key}, []

    def _healthz(self) -> tuple[int, Any, list[tuple[str, str]]]:
        status = 503 if self.draining else 200
        return status, {
            "status": "draining" if self.draining else "ok",
            "role": "cache",
            "time": time.time(),
            "uptime_s": self.uptime_s(),
            "entries": len(self.cache),
        }, []

    def _metrics_payload(self) -> dict:
        return {
            "role": "cache",
            "uptime_s": self.uptime_s(),
            "entries": len(self.cache),
            "requests": dict(self.requests),
            "cache": self.cache.stats.snapshot(),
        }


def run_cache_server(**kwargs: Any) -> int:
    """Blocking entry point used by ``repro cache-server``."""
    try:
        return run_blocking(lambda: CacheServer(**kwargs))
    except OSError as exc:
        print(f"# fatal: {exc}", file=sys.stderr, flush=True)
        return 1
