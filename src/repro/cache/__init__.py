"""Content-addressed caching of alignment results (``repro.cache``).

The serving-stack layer: :mod:`repro.cache.key` derives canonical request
digests (sequences + scheme + mode + method, plus a permutation-invariant
secondary key), and :mod:`repro.cache.store` holds results in a bounded
in-memory LRU tier over an optional persistent JSONL tier. ``align3``
accepts a cache via its ``cache=`` argument; :mod:`repro.batch` uses one
to deduplicate whole request batches. See ``docs/batching.md``.
"""

from repro.cache.key import (
    EXACT_METHODS,
    MODES,
    VOLATILE_META_KEYS,
    canonical_order,
    comparable_meta,
    derive_for_order,
    method_key_class,
    permutation_key,
    permute_rows,
    request_key,
    scheme_fingerprint,
)
from repro.cache.store import (
    CacheStats,
    ResultCache,
    decode_alignment,
    encode_alignment,
    jsonable,
)

__all__ = [
    "EXACT_METHODS",
    "MODES",
    "VOLATILE_META_KEYS",
    "CacheStats",
    "ResultCache",
    "canonical_order",
    "comparable_meta",
    "decode_alignment",
    "derive_for_order",
    "encode_alignment",
    "jsonable",
    "method_key_class",
    "permutation_key",
    "permute_rows",
    "request_key",
    "scheme_fingerprint",
]
