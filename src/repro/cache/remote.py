"""Client for the shared cache service (``repro cache-server``).

One :class:`RemoteCacheClient` is the glue that turns a
:class:`~repro.cache.store.ResultCache` into a three-tier store: after
a local memory/disk miss the cache asks the service
(``GET /v1/cache/<key>``), and every put is mirrored there
(``PUT /v1/cache/<key>``), so N serve replicas share one working set —
a replica restart loses only its LRU, and a key computed on one shard
is a cheap hit everywhere.

Failure posture matters more than speed here: the remote tier sits on
the hot serving path, so the client keeps its timeouts short and trips
a circuit breaker after ``breaker_threshold`` consecutive transport
errors — while the breaker is open every call returns a miss
immediately instead of stalling the compute thread behind a dead
service. The breaker half-opens after ``breaker_cooldown_s`` and one
successful exchange closes it. All methods are best-effort and never
raise; the serving tier degrades to local-only caching.

Thread-safe: one lock guards the single keep-alive connection and the
breaker state (the batch layer calls from one compute thread; tests
and tools may share a client across a few threads).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any


class RemoteCacheClient:
    """Best-effort HTTP client for one cache service."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 1.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
    ):
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self._lock = threading.Lock()
        self._conn: http.client.HTTPConnection | None = None
        self._consecutive_errors = 0
        self._open_until = 0.0  # monotonic; breaker open while in future
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.breaker_trips = 0

    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "RemoteCacheClient":
        """Build from a ``host:port`` (or ``http://host:port``) string."""
        raw = url.strip()
        if raw.startswith("http://"):
            raw = raw[len("http://"):]
        raw = raw.rstrip("/")
        host, sep, port = raw.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"cache url must be host:port, got {url!r}"
            )
        return cls(host or "127.0.0.1", int(port), **kwargs)

    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _breaker_open(self) -> bool:
        return time.monotonic() < self._open_until

    def _note_error(self) -> None:
        self.errors += 1
        self._consecutive_errors += 1
        if self._consecutive_errors >= self.breaker_threshold:
            self._open_until = time.monotonic() + self.breaker_cooldown_s
            self._consecutive_errors = 0
            self.breaker_trips += 1

    def _note_success(self) -> None:
        self._consecutive_errors = 0
        self._open_until = 0.0

    def _exchange(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, bytes] | None:
        """One request/response, with a single reconnect on a stale
        keep-alive connection. None on transport failure (noted)."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode()
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                self._note_success()
                return resp.status, raw
            except (http.client.HTTPException, OSError):
                self._conn = None
                if attempt == 1:
                    self._note_error()
                    return None
        return None  # pragma: no cover — loop always returns

    # ------------------------------------------------------------------

    def get_payload(self, key: str) -> dict | None:
        """The encoded alignment payload for ``key``, or None on a miss,
        any error, or an open breaker."""
        with self._lock:
            if self._breaker_open():
                return None
            out = self._exchange("GET", f"/v1/cache/{key}")
            if out is None:
                self.misses += 1
                return None
            status, raw = out
            if status != 200:
                self.misses += 1
                return None
            try:
                payload = json.loads(raw)["alignment"]
            except (json.JSONDecodeError, KeyError, TypeError):
                self.misses += 1
                return None
            if not isinstance(payload, dict):
                self.misses += 1
                return None
            self.hits += 1
            return payload

    def put_payload(self, key: str, payload: dict) -> bool:
        """Mirror one encoded payload to the service; False on failure."""
        with self._lock:
            if self._breaker_open():
                return False
            out = self._exchange(
                "PUT", f"/v1/cache/{key}", {"alignment": payload}
            )
            return out is not None and out[0] in (200, 204)

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "breaker_trips": self.breaker_trips,
            "breaker_open": float(self._breaker_open()),
        }
