"""Canonical request digests for the result cache.

A cache key must be *content-addressed*: two requests collide exactly when
an engine would be handed the same inputs. The digest therefore covers

* the three sequences, upcased (every alphabet encoder upcases, so
  ``"gat"`` and ``"GAT"`` are the same request);
* the full :class:`~repro.core.scoring.ScoringScheme` — alphabet letters
  and wildcard, the raw ``float64`` bytes of the substitution matrix, and
  both gap parameters (the ``name`` is presentation only and excluded);
* the alignment ``mode`` (``global``/``local``/``semiglobal``); and
* the **equivalence class** of the *resolved* method
  (:func:`method_key_class`), not the raw request string. Every exact
  linear-gap engine (``dp3d``, ``wavefront``, ``hirschberg``, ``pruned``,
  ``banded``, ``shared``, ``threads``) reproduces the reference argmax
  tie-breaks and returns bit-identical rows and scores, so their results
  are interchangeable and share the single class ``"exact"``. Keying on
  the raw string was a bug: ``align3(method="auto")`` hashed ``"auto"``
  *before* resolution, so the same triple computed as ``auto`` and as
  ``wavefront`` was solved and stored twice — and a run degraded from
  ``wavefront`` to ``hirschberg`` was stored under the un-degraded key.
  Callers must resolve ``auto`` (and any degradation) first, then key on
  ``method_key_class(resolved)``; ``align3`` still probes the legacy raw
  key on a miss so caches persisted by older releases stay warm.

Permutation equivalence
-----------------------
SP scoring is symmetric in the three sequences: aligning ``(B, A, C)``
is the same DP as ``(A, B, C)`` with the rows swapped, and the optimal
*score* is identical. :func:`permutation_key` digests the sequences in
sorted order so permutation-equivalent requests share a secondary key,
and :func:`permute_rows` maps an alignment computed for one order onto
another. Tie-breaking among co-optimal alignments is order-dependent, so
a permutation-derived alignment is guaranteed score-identical but not
row-identical to a cold compute — callers must keep the two hit classes
distinct (see ``docs/batching.md``).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3

#: Alignment modes a key may carry (mirrors the CLI ``--mode`` choices).
MODES = ("global", "local", "semiglobal")

#: Engines that provably return bit-identical rows *and* scores for the
#: linear gap model (they all reproduce the reference tie-breaks, and
#: pruning/banding keep every cell of every optimal path). Their cached
#: results are interchangeable.
EXACT_METHODS = frozenset(
    {"dp3d", "wavefront", "hirschberg", "pruned", "banded", "shared", "blocks", "threads"}
)


def method_key_class(method: str) -> str:
    """Cache-key equivalence class of a *resolved* method.

    All bit-identical exact engines collapse to ``"exact"``; anything
    else (``affine``, future approximate engines) keys as itself.
    ``auto`` must be resolved before calling this — passing it through
    would recreate the aliasing bug this class exists to fix.
    """
    if method == "auto":
        raise ValueError("resolve method='auto' before deriving a cache key")
    return "exact" if method in EXACT_METHODS else method


def scheme_fingerprint(scheme: ScoringScheme) -> bytes:
    """Byte string identifying the scoring semantics of ``scheme``.

    Covers everything that changes a DP result; excludes ``name``.
    """
    parts = [
        scheme.alphabet.letters.encode(),
        (scheme.alphabet.wildcard or "").encode(),
        repr(float(scheme.gap)).encode(),
        repr(float(scheme.gap_open)).encode(),
        scheme.matrix.tobytes(),
    ]
    return b"\x1f".join(parts)


def request_key(
    seqs: Sequence[str],
    scheme: ScoringScheme,
    mode: str = "global",
    method: str = "auto",
    *,
    constraints: Sequence[Sequence[int]] | None = None,
) -> str:
    """Primary cache key: exact request identity (order-sensitive).

    ``constraints`` is the *normalised* anchor chain (sorted
    ``(i, j, k, length)`` tuples from
    :func:`repro.anchor.normalize_constraints`); a constrained request
    computes a different optimum, so the chain is folded into the
    digest. ``None`` and ``()`` contribute nothing — unconstrained
    requests hash byte-for-byte as they did before constraints existed,
    so no persisted cache entry is invalidated.
    """
    if len(seqs) != 3:
        raise ValueError(f"request needs exactly three sequences, got {len(seqs)}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; available: {MODES}")
    h = hashlib.sha256()
    for s in seqs:
        h.update(s.upper().encode())
        h.update(b"\x1e")
    h.update(scheme_fingerprint(scheme))
    h.update(b"\x1e")
    h.update(mode.encode())
    h.update(b"\x1e")
    h.update(method.encode())
    if constraints:
        h.update(b"\x1e")
        for c in constraints:
            i, j, k, length = c
            h.update(f"{i},{j},{k},{length};".encode())
    return h.hexdigest()


def canonical_order(seqs: Sequence[str]) -> tuple[tuple[str, str, str], tuple[int, ...]]:
    """Sorted sequence triple plus the permutation that produced it.

    Returns ``(canonical, perm)`` with ``canonical[i] == seqs[perm[i]]``;
    the sort is stable, so duplicate sequences keep their input order and
    the permutation is deterministic.
    """
    order = sorted(range(3), key=lambda i: seqs[i].upper())
    canonical = tuple(seqs[i] for i in order)
    return canonical, tuple(order)  # type: ignore[return-value]


def permutation_key(
    seqs: Sequence[str],
    scheme: ScoringScheme,
    mode: str = "global",
    method: str = "auto",
) -> str:
    """Secondary key shared by all orderings of the same sequence triple."""
    canonical, _perm = canonical_order(seqs)
    return request_key(canonical, scheme, mode, method)


def permute_rows(aln: Alignment3, perm: Sequence[int]) -> Alignment3:
    """Reorder alignment rows by ``perm`` (``new.rows[i] == aln.rows[perm[i]]``).

    Columns are untouched, so the result is a valid alignment with the
    identical SP score (the objective is symmetric in the rows). Meta is
    shallow-copied with ``permuted_from`` recording the row map.
    """
    if sorted(perm) != [0, 1, 2]:
        raise ValueError(f"perm must be a permutation of (0, 1, 2), got {perm}")
    rows = tuple(aln.rows[p] for p in perm)
    meta = dict(aln.meta)
    spans = meta.get("spans")
    if isinstance(spans, (list, tuple)) and len(spans) == 3:
        # Per-row provenance (local/semiglobal) must follow its row.
        meta["spans"] = [spans[p] for p in perm]
    meta["permuted_from"] = list(perm)
    return Alignment3(rows=rows, score=aln.score, meta=meta)  # type: ignore[arg-type]


def derive_for_order(
    canonical_aln: Alignment3, seqs: Sequence[str]
) -> Alignment3:
    """Map an alignment of ``canonical_order(seqs)`` back onto ``seqs``.

    ``canonical[i] == seqs[perm[i]]`` means row ``i`` of the canonical
    alignment belongs at position ``perm[i]`` of the request, i.e. the
    request's row ``j`` is canonical row ``perm.index(j)``.
    """
    _canonical, perm = canonical_order(seqs)
    inverse = tuple(perm.index(j) for j in range(3))
    return permute_rows(canonical_aln, inverse)


#: Meta keys that legitimately differ between two computes of the same
#: request (timings and cache/batch bookkeeping); stripped by
#: :func:`comparable_meta` before bit-identity comparisons.
VOLATILE_META_KEYS = frozenset(
    {"wall_time_s", "cache", "batch", "permuted_from"}
)


def comparable_meta(meta: dict) -> dict:
    """``meta`` with volatile keys stripped and values JSON-canonicalised.

    Two alignments of the same request are "bit-identical modulo timing"
    when their rows and scores are equal and their ``comparable_meta``
    views are equal — the canonicalisation makes a tuple-bearing in-memory
    meta comparable with one that round-tripped through the disk tier.
    """
    from repro.cache.store import jsonable

    return {
        k: jsonable(v) for k, v in meta.items() if k not in VOLATILE_META_KEYS
    }
