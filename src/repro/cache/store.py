"""Content-addressed alignment result store with two tiers.

**Memory tier** — a bounded LRU dict of encoded results. Every ``get``
moves the entry to the young end; inserting past ``max_entries`` evicts
the oldest. Entries are stored *encoded* (plain JSON-able dicts), so a
cached result can never be corrupted by a caller mutating the
:class:`~repro.core.types.Alignment3` it was handed — each hit decodes a
fresh object.

**Disk tier** (optional) — an append-only JSONL file ``results.jsonl``
under ``cache_dir``, one ``{"key": ..., "alignment": ...}`` object per
line. On open the file is scanned once to build a key→offset index
(last write wins, so re-puts supersede); a disk hit seeks to the offset,
decodes, and promotes the entry into the memory tier. Append-only JSONL
makes concurrent writers safe at line granularity (the same property
:mod:`repro.obs.trace` relies on) and survives truncated final lines
from a killed process.

Round-trip fidelity
-------------------
``encode_alignment``/``decode_alignment`` preserve rows and score
bit-identically (JSON serialises floats via ``repr``, which Python
round-trips exactly) and meta up to JSON canonicalisation — tuples
become lists, numpy scalars become Python numbers, and non-finite
floats become the string sentinels ``"NaN"``/``"Infinity"``/
``"-Infinity"`` so the emitted JSON stays *strict* (RFC 8259 has no
NaN/Infinity literals; ``json.dumps`` would otherwise emit extensions
many parsers reject). A non-finite *score* round-trips exactly because
``decode_alignment`` passes the sentinel through ``float()``
(:func:`jsonable`). Comparisons should therefore go through
:func:`repro.cache.key.comparable_meta`, which applies the same
canonicalisation to both sides and strips timing fields.
"""

from __future__ import annotations

import json
import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.types import Alignment3
from repro.obs import hooks as _obs


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-able Python objects.

    Tuples become lists, numpy scalars/arrays become numbers/nested
    lists, non-finite floats become the strict-JSON string sentinels
    ``"NaN"``/``"Infinity"``/``"-Infinity"``; anything JSON cannot carry
    falls back to ``repr`` (provenance meta is free-form, and a
    lossy-but-stable rendering beats a failed put).
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return jsonable(value.item())
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def encode_alignment(aln: Alignment3) -> dict:
    """Encode an alignment as a JSON-able dict (inverse of decode)."""
    return {
        "rows": list(aln.rows),
        # jsonable() turns a non-finite score into its string sentinel;
        # decode's float() parses the sentinel back exactly.
        "score": jsonable(float(aln.score)),
        "meta": jsonable(aln.meta),
    }


def decode_alignment(payload: dict, key: str | None = None) -> Alignment3:
    """Rebuild an :class:`Alignment3` from :func:`encode_alignment` output.

    ``key`` (when known) is included in validation errors so a corrupted
    disk entry can be traced back to its cache line.
    """
    rows = tuple(payload["rows"])
    where = "" if key is None else f" (cache key {key!r})"
    if len(rows) != 3:
        raise ValueError(
            f"cache payload has {len(rows)} rows, expected 3{where}"
        )
    for r, row in enumerate(rows):
        if not isinstance(row, str):
            raise ValueError(
                f"cache payload row {r} is {type(row).__name__}, "
                f"expected str{where}"
            )
    return Alignment3(
        rows=rows,  # type: ignore[arg-type]
        score=float(payload["score"]),
        meta=dict(payload.get("meta", {})),
    )


@dataclass
class CacheStats:
    """Counters accumulated over a cache's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    remote_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits + self.remote_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "remote_hits": self.remote_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Two-tier content-addressed store of alignment results.

    Parameters
    ----------
    max_entries:
        Memory-tier capacity; the least recently used entry is evicted
        when a put exceeds it. Must be >= 1.
    cache_dir:
        Optional directory for the persistent JSONL tier (created if
        missing). When None the cache is memory-only.
    remote:
        Optional :class:`repro.cache.remote.RemoteCacheClient` (or any
        object with ``get_payload``/``put_payload``): a *shared* third
        tier queried after a local miss and populated on every put, so
        replicas of the serve tier see each other's results. Remote IO
        is best-effort and happens outside the lock — a dead cache
        service degrades to local-only serving, never an error.

    Thread-safe: a single lock guards the local tiers — every operation
    is a dict move plus at most one line of file IO, so contention is
    negligible next to an O(n^3) miss.
    """

    _DISK_FILE = "results.jsonl"

    def __init__(
        self,
        max_entries: int = 1024,
        cache_dir: Any = None,
        *,
        remote: Any = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.remote = remote
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._disk_index: dict[str, int] = {}
        self._disk_path: str | None = None
        self._repair_newline = False
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)
            self._disk_path = os.path.join(self.cache_dir, self._DISK_FILE)
            self._load_disk_index()

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _load_disk_index(self) -> None:
        assert self._disk_path is not None
        if not os.path.exists(self._disk_path):
            return
        offset = 0
        with open(self._disk_path, "rb") as fh:
            for line in fh:
                if line.endswith(b"\n"):
                    try:
                        rec = json.loads(line)
                        self._disk_index[rec["key"]] = offset
                    except (json.JSONDecodeError, KeyError, TypeError):
                        pass  # foreign or truncated line; skip it
                else:
                    # A writer died mid-append. The torn fragment itself
                    # is unrecoverable, but the next append must not glue
                    # onto it — that would corrupt a *good* record too.
                    self._repair_newline = True
                offset += len(line)

    def _disk_get(self, key: str) -> dict | None:
        if self._disk_path is None:
            return None
        offset = self._disk_index.get(key)
        if offset is None:
            return None
        try:
            with open(self._disk_path, "rb") as fh:
                fh.seek(offset)
                rec = json.loads(fh.readline())
            # With concurrent writers the fstat-then-write in _disk_put
            # can record a stale offset (another process appended in
            # between). The line there is still a whole valid record —
            # just someone else's — so verify before trusting it.
            if rec.get("key") != key:
                return None
            return rec["alignment"]
        except (OSError, json.JSONDecodeError, KeyError):
            return None

    def _disk_put(self, key: str, payload: dict) -> None:
        if self._disk_path is None:
            return
        # allow_nan=False guards the strictness contract: jsonable()
        # should have sentinel-ised every non-finite float, and a miss
        # fails loudly here instead of writing non-strict JSON to disk.
        line = json.dumps(
            {"key": key, "alignment": payload},
            separators=(",", ":"),
            allow_nan=False,
        )
        data = (line + "\n").encode()
        # O_APPEND keeps concurrent writers line-atomic; the recorded
        # offset is only valid for this process's view, which is fine —
        # other processes build their own index on open.
        skew = 0
        if self._repair_newline:
            # Terminate the torn final line left by a killed writer so
            # this record starts on a fresh line. Done lazily on first
            # append (not on open) so read-only opens never write.
            data = b"\n" + data
            skew = 1
            self._repair_newline = False
        fd = os.open(
            self._disk_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            offset = os.fstat(fd).st_size + skew
            os.write(fd, data)
        finally:
            os.close(fd)
        self._disk_index[key] = offset

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or key in self._disk_index

    def get(self, key: str, *, record: bool = True) -> Alignment3 | None:
        """The cached alignment for ``key``, or None. Decodes fresh.

        Probes memory, then disk, then (outside the lock) the remote
        tier; a remote hit is promoted into the memory tier so repeats
        stay local. ``record=False`` skips the hit/miss accounting —
        used for secondary-key probes (permutation lookups) that would
        otherwise double-count a single logical request.
        """
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                if record:
                    self.stats.memory_hits += 1
                    _obs.record_cache("memory_hit")
                return decode_alignment(payload, key=key)
            payload = self._disk_get(key)
            if payload is not None:
                self._insert_memory(key, payload)
                if record:
                    self.stats.disk_hits += 1
                    _obs.record_cache("disk_hit")
                return decode_alignment(payload, key=key)
        if self.remote is not None:
            payload = self._remote_get(key)
            if payload is not None:
                try:
                    aln = decode_alignment(payload, key=key)
                except (ValueError, KeyError, TypeError):
                    pass  # corrupt remote entry: treat as a miss
                else:
                    with self._lock:
                        self._insert_memory(key, payload)
                        if record:
                            self.stats.remote_hits += 1
                    if record:
                        _obs.record_cache("remote_hit")
                    return aln
        if record:
            with self._lock:
                self.stats.misses += 1
            _obs.record_cache("miss")
        return None

    def put(self, key: str, aln: Alignment3) -> None:
        """Store ``aln`` under ``key`` in every tier (remote best-effort)."""
        payload = encode_alignment(aln)
        with self._lock:
            self._insert_memory(key, payload)
            self._disk_put(key, payload)
            self.stats.puts += 1
        if self.remote is not None:
            self._remote_put(key, payload)

    def _remote_get(self, key: str) -> dict | None:
        try:
            return self.remote.get_payload(key)
        except Exception:  # noqa: BLE001 — remote tier is best-effort
            return None

    def _remote_put(self, key: str, payload: dict) -> None:
        try:
            self.remote.put_payload(key, payload)
        except Exception:  # noqa: BLE001 — remote tier is best-effort
            pass

    # -- payload-level API (the cache *service* side) -------------------

    def get_payload(self, key: str, *, record: bool = True) -> dict | None:
        """The raw encoded payload for ``key`` from the local tiers only
        (the cache service is itself the remote tier, so it must never
        recurse into one)."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                if record:
                    self.stats.memory_hits += 1
                    _obs.record_cache("memory_hit")
                return payload
            payload = self._disk_get(key)
            if payload is not None:
                self._insert_memory(key, payload)
                if record:
                    self.stats.disk_hits += 1
                    _obs.record_cache("disk_hit")
                return payload
            if record:
                self.stats.misses += 1
                _obs.record_cache("miss")
            return None

    def put_payload(self, key: str, payload: dict) -> None:
        """Store an already-encoded payload in the local tiers.

        Validates by decoding first, so a corrupt or foreign payload is
        rejected (``ValueError``) instead of poisoning the store.
        """
        decode_alignment(payload, key=key)
        with self._lock:
            self._insert_memory(key, payload)
            self._disk_put(key, payload)
            self.stats.puts += 1

    def _insert_memory(self, key: str, payload: dict) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            _obs.record_cache("eviction")

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier, if any, is untouched)."""
        with self._lock:
            self._memory.clear()
