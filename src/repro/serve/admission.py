"""Admission control: decide at the door, not at the barrier.

A wedged alignment service helps nobody — an overloaded one must say so
*immediately* and cheaply. Admission is therefore a pair of O(1) checks
against two resources:

* **queue depth** — triples admitted but not yet flushed into a batch.
  Bounds queueing delay directly.
* **estimated cell cost** — every triple costs roughly
  ``(n1+1)(n2+1)(n3+1)`` DP cells to compute cold
  (:func:`estimate_cells`); the controller bounds the cells admitted but
  not yet completed. This is the knob that actually tracks *work*, since
  a single 300-mer triple outweighs a thousand 20-mers.

A shed request gets a ``Retry-After`` estimated from the in-flight cell
backlog over an EWMA of observed compute throughput, so well-behaved
clients back off proportionally to the actual overload instead of
hammering a fixed interval. The estimate is deliberately conservative:
dedup and cache hits only make the backlog drain faster than predicted.

All state is mutated from the event loop only — no locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs import hooks as _obs

#: Optimistic prior for compute throughput (cells/s) before the first
#: batch completes; the vectorised wavefront sustains well above this.
DEFAULT_CELLS_PER_S = 2_000_000.0

#: EWMA weight of a new throughput observation.
EWMA_ALPHA = 0.3

#: Retry-After clamp (seconds).
MIN_RETRY_AFTER = 1.0
MAX_RETRY_AFTER = 60.0


def estimate_cells(seqs: Sequence[str], constraints=None) -> int:
    """Estimated DP cost of one triple: the full lattice size.

    Deliberately ignores pruning, caching and dedup — admission wants the
    worst-case cost of a *cold* compute. A constrained request (a
    normalised anchor chain, see :mod:`repro.anchor`) never walks the
    full cube, so its cost is the chain's sub-cube sum — this is what
    makes long constrained triples admissible at all under
    ``max_request_cells``.
    """
    n1, n2, n3 = (len(s) for s in seqs)
    if constraints:
        from repro.anchor import as_anchors, chain_cells, validate_chain

        try:
            anchors = validate_chain(as_anchors(constraints), (n1, n2, n3))
            return chain_cells(anchors, (n1, n2, n3))
        except (TypeError, ValueError):
            pass  # malformed chain: fall through to the worst case
    return (n1 + 1) * (n2 + 1) * (n3 + 1)


@dataclass(frozen=True)
class Decision:
    """Outcome of one admission check."""

    admitted: bool
    #: ``"queue_full"`` or ``"cells_full"`` when shed, else "".
    reason: str = ""
    #: Suggested client backoff (whole seconds, >= 1) when shed.
    retry_after_s: int = 0


class AdmissionController:
    """Bounded-queue + cost-model gatekeeper for the serving layer.

    Lifecycle per request: :meth:`try_admit` (counts it as queued and
    in-flight), :meth:`on_flush` when the micro-batcher moves it into a
    compute batch (leaves the queue, still in flight), :meth:`on_complete`
    when its result — or failure — is final (releases its cells).
    """

    def __init__(
        self,
        max_queued_requests: int,
        max_inflight_cells: int,
    ):
        if max_queued_requests < 1:
            raise ValueError(
                f"max_queued_requests must be >= 1, got {max_queued_requests}"
            )
        if max_inflight_cells < 1:
            raise ValueError(
                f"max_inflight_cells must be >= 1, got {max_inflight_cells}"
            )
        self.max_queued_requests = int(max_queued_requests)
        self.max_inflight_cells = int(max_inflight_cells)
        self.queued_requests = 0
        self.inflight_cells = 0
        self.shed_total = 0
        self.admitted_total = 0
        self.cells_per_s = DEFAULT_CELLS_PER_S

    # ------------------------------------------------------------------

    def try_admit(self, n_requests: int, cost_cells: int) -> Decision:
        """Admit ``n_requests`` triples costing ``cost_cells``, or shed."""
        if self.queued_requests + n_requests > self.max_queued_requests:
            return self._shed("queue_full")
        if self.inflight_cells + cost_cells > self.max_inflight_cells:
            return self._shed("cells_full")
        self.queued_requests += n_requests
        self.inflight_cells += cost_cells
        self.admitted_total += n_requests
        self._publish()
        return Decision(admitted=True)

    def _shed(self, reason: str) -> Decision:
        self.shed_total += 1
        _obs.record_serve_shed(reason)
        return Decision(
            admitted=False, reason=reason, retry_after_s=self.retry_after()
        )

    def retry_after(self) -> int:
        """Whole-second backoff hint from the in-flight backlog."""
        est = self.inflight_cells / max(self.cells_per_s, 1.0)
        est = min(max(est, MIN_RETRY_AFTER), MAX_RETRY_AFTER)
        return int(-(-est // 1))  # ceil without math import

    # ------------------------------------------------------------------

    def on_flush(self, n_requests: int) -> None:
        """``n_requests`` triples left the queue for a compute batch."""
        self.queued_requests = max(0, self.queued_requests - n_requests)
        self._publish()

    def on_complete(self, cost_cells: int) -> None:
        """A request's work is finished (served, failed, or skipped)."""
        self.inflight_cells = max(0, self.inflight_cells - cost_cells)
        self._publish()

    def observe_throughput(self, cells: int, seconds: float) -> None:
        """Fold one completed batch into the cells/s EWMA."""
        if cells <= 0 or seconds <= 0:
            return
        rate = cells / seconds
        self.cells_per_s = (
            (1 - EWMA_ALPHA) * self.cells_per_s + EWMA_ALPHA * rate
        )

    def _publish(self) -> None:
        _obs.record_serve_queue(
            depth=self.queued_requests, inflight_cells=self.inflight_cells
        )

    def snapshot(self) -> dict[str, float]:
        return {
            "queued_requests": self.queued_requests,
            "inflight_cells": self.inflight_cells,
            "max_queued_requests": self.max_queued_requests,
            "max_inflight_cells": self.max_inflight_cells,
            "shed_total": self.shed_total,
            "admitted_total": self.admitted_total,
            "cells_per_s_estimate": self.cells_per_s,
        }
