"""Configuration for the alignment service.

One frozen dataclass so a server's whole posture — socket, pool size,
admission limits, micro-batch shape, deadlines — is a single value that
can be built from CLI flags, passed to tests, and echoed in
``/healthz``. See ``docs/serving.md`` for how the knobs interact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batch.scheduler import DEFAULT_MAX_POOL_CELLS
from repro.serve.protocol import DEFAULT_MAX_BODY_BYTES

#: Default service port (unassigned in the IANA registry).
DEFAULT_PORT = 8673


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`repro.serve.app.AlignServer` needs to run.

    Admission control
    -----------------
    ``queue_depth`` bounds how many *triples* may sit in the micro-batch
    queue awaiting a flush; ``max_inflight_cells`` bounds the estimated
    DP-cell cost of everything admitted but not yet completed. Either
    limit trips a 429 with ``Retry-After``. ``max_request_cells`` is a
    hard per-POST cap (413) — a request that large should go through the
    CLI, not a latency-bounded service.

    Micro-batching
    --------------
    An arriving request starts a batch window; the batch flushes to the
    long-lived :class:`~repro.batch.BatchScheduler` when it holds
    ``batch_max_requests`` triples or the oldest waits past
    ``batch_max_age_s``, whichever comes first.
    """

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (the bound address is
    #: printed to stderr and exposed on the server object).
    port: int = DEFAULT_PORT

    #: Optional replica name, echoed in ``/healthz``/``/metrics`` so a
    #: router (or an operator) can tell instances apart.
    instance: str | None = None

    #: Worker processes for the scheduler's persistent WavefrontPool.
    workers: int = 2
    #: Memory-tier capacity of the shared result cache.
    cache_entries: int = 4096
    #: Optional persistent cache directory (survives restarts).
    cache_dir: str | None = None
    #: Optional shared cache service (``host:port``) queried on local
    #: misses and populated on puts — the tier replicas share.
    cache_url: str | None = None
    #: Cube-size ceiling for pool execution (larger jobs fall back to
    #: ``align3`` and its degradation ladder).
    max_pool_cells: int = DEFAULT_MAX_POOL_CELLS
    #: How ``method="auto"`` requests pick an engine: ``"similarity"``
    #: (identity cost model; routes similar triples to the pruned
    #: engine) or the legacy ``"cells"`` cube-size split.
    auto_policy: str = "similarity"

    # Admission control / backpressure.
    queue_depth: int = 256
    max_inflight_cells: int = 64_000_000
    max_request_cells: int = 200_000_000

    # Micro-batching.
    batch_max_requests: int = 32
    batch_max_age_s: float = 0.01

    # Deadlines and connection hygiene.
    default_deadline_s: float = 30.0
    keepalive_timeout_s: float = 5.0
    drain_timeout_s: float = 30.0
    #: After a drain request, keep the listener open (already answering
    #: ``/healthz`` with 503) this long, so a health-polling router
    #: reroutes before connects start failing (rolling restarts).
    drain_grace_s: float = 0.0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES

    #: Async-job table capacity (oldest finished jobs are evicted).
    job_capacity: int = 1024

    def validate(self) -> "ServeConfig":
        """Raise ``ValueError`` on out-of-range knobs; return self."""
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        for name in (
            "cache_entries", "queue_depth", "max_inflight_cells",
            "max_request_cells", "batch_max_requests", "job_capacity",
            "max_body_bytes", "max_pool_cells",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in (
            "batch_max_age_s", "default_deadline_s", "keepalive_timeout_s",
            "drain_timeout_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        if self.drain_grace_s < 0:
            raise ValueError(
                f"drain_grace_s must be >= 0, got {self.drain_grace_s}"
            )
        from repro.core.api import AUTO_POLICIES

        if self.auto_policy not in AUTO_POLICIES:
            raise ValueError(
                f"auto_policy must be one of {AUTO_POLICIES}, "
                f"got {self.auto_policy!r}"
            )
        return self
