"""``repro.serve`` — the alignment service.

A stdlib-only asyncio HTTP/1.1 JSON front-end (``repro serve``) that
funnels concurrent clients through admission control and a micro-batcher
into one long-lived :class:`~repro.batch.BatchScheduler`, so the cache,
dedup and persistent worker pool amortise across the whole request
stream. See ``docs/serving.md`` for the endpoint and backpressure
contract.
"""

from repro.serve.admission import AdmissionController, Decision, estimate_cells
from repro.serve.app import AlignServer, run_server
from repro.serve.batcher import DeadlineExceeded, MicroBatcher
from repro.serve.client import ServeClient, ServeResponse, wait_ready
from repro.serve.config import DEFAULT_PORT, ServeConfig

__all__ = [
    "AdmissionController",
    "AlignServer",
    "DEFAULT_PORT",
    "Decision",
    "DeadlineExceeded",
    "MicroBatcher",
    "ServeClient",
    "ServeConfig",
    "ServeResponse",
    "estimate_cells",
    "run_server",
    "wait_ready",
]
