"""Minimal HTTP/1.1 framing over asyncio streams.

The serving layer speaks plain HTTP/1.1 with JSON bodies and needs
nothing beyond the stdlib, so this module implements the narrow slice
the service actually uses: request-line + header parsing, fixed-length
bodies (``Content-Length`` only — chunked uploads are rejected), and
keep-alive response rendering. Everything unusual becomes a typed
exception the server maps onto a 4xx response instead of a dropped
connection.

Limits are explicit: the header block is capped by the stream reader's
``limit`` (set by :func:`repro.serve.app.AlignServer.start`) and bodies
by ``max_body_bytes`` — an oversized upload raises
:class:`PayloadTooLarge` *before* the body is read into memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Iterable

#: Upper bound on the request head (request line + headers), enforced by
#: the stream reader's ``limit`` argument.
MAX_HEADER_BYTES = 32 * 1024

#: Default body cap; :class:`~repro.serve.config.ServeConfig` overrides.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH")


class BadRequest(ValueError):
    """The request violates HTTP framing or the JSON schema (-> 400)."""


class PayloadTooLarge(ValueError):
    """Headers or body exceed the configured limits (-> 413)."""


@dataclass
class HttpRequest:
    """One parsed request: the framing plus the raw body."""

    method: str
    target: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """Target without the query string (no decoding: targets are ASCII
        API routes, not file paths)."""
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> str:
        parts = self.target.split("?", 1)
        return parts[1] if len(parts) == 2 else ""

    @property
    def wants_close(self) -> bool:
        """True when this request forbids keep-alive (explicit
        ``Connection: close`` or an HTTP/1.0 peer)."""
        conn = self.headers.get("connection", "").lower()
        if "close" in conn:
            return True
        return self.version == "HTTP/1.0" and "keep-alive" not in conn

    def json(self) -> Any:
        """The body decoded as JSON, or :class:`BadRequest`."""
        if not self.body:
            raise BadRequest("empty body where JSON was expected")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Read one request off ``reader``.

    Returns None on a clean EOF (the peer closed an idle keep-alive
    connection); raises :class:`BadRequest` / :class:`PayloadTooLarge`
    on malformed or oversized input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise BadRequest("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise PayloadTooLarge("request head exceeds the header limit") from None

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if method not in _METHODS:
        raise BadRequest(f"unknown method {method!r}")
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise BadRequest(f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise BadRequest(f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise BadRequest("chunked request bodies are not supported")

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise BadRequest(
                f"bad Content-Length: {raw_length!r}"
            ) from None
        if length < 0:
            raise BadRequest(f"bad Content-Length: {raw_length!r}")
        if length > max_body_bytes:
            raise PayloadTooLarge(
                f"body of {length} bytes exceeds the {max_body_bytes}-byte cap"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest("connection closed mid-body") from None
    return HttpRequest(
        method=method, target=target, version=version, headers=headers,
        body=body,
    )


@dataclass
class HttpResponse:
    """One parsed response: status, headers, raw body."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def retry_after_s(self) -> float | None:
        raw = self.headers.get("retry-after")
        try:
            return float(raw) if raw is not None else None
        except ValueError:
            return None

    def json(self) -> Any:
        """The body decoded as JSON, or :class:`BadResponse`."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadResponse(f"body is not valid JSON: {exc}") from None


class BadResponse(ValueError):
    """A peer's response violates HTTP framing or the JSON contract.

    Raised by :func:`read_response` (the router's view of a replica);
    the router maps it onto the ``bad_response`` failure kind rather
    than letting a corrupt upstream take the client connection down.
    """


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Read one HTTP/1.1 response off ``reader`` (the client side of
    :func:`render_response` — status line, headers, ``Content-Length``
    body). Raises :class:`BadResponse` on malformed or truncated input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        raise BadResponse("connection closed before response head") from None
    except asyncio.LimitOverrunError:
        raise BadResponse("response head exceeds the header limit") from None

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise BadResponse(f"malformed status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise BadResponse(f"malformed status line: {lines[0]!r}") from None

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise BadResponse(f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise BadResponse(f"bad Content-Length: {raw_length!r}") from None
        if length < 0:
            raise BadResponse(f"bad Content-Length: {raw_length!r}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadResponse("connection closed mid-body") from None
    return HttpResponse(status=status, headers=headers, body=body)


def render_request(
    method: str,
    target: str,
    payload: Any | None = None,
    *,
    host: str = "router",
) -> bytes:
    """Serialise one JSON request (the client side of :func:`read_request`)."""
    body = b""
    if payload is not None:
        body = json.dumps(payload, separators=(",", ":")).encode()
    lines = [
        f"{method} {target} HTTP/1.1",
        f"Host: {host}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def render_response(
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    extra_headers: Iterable[tuple[str, str]] = (),
) -> bytes:
    """Serialise one JSON response (status line, headers, body)."""
    body = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def error_payload(kind: str, message: str, **details: Any) -> dict:
    """The service's uniform error body shape."""
    err: dict[str, Any] = {"type": kind, "message": message}
    err.update(details)
    return {"error": err}
