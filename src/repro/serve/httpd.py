"""Shared asyncio HTTP/1.1 server scaffolding.

Three services speak the same wire protocol — the alignment service
(:class:`repro.serve.app.AlignServer`), the front router
(:class:`repro.router.app.RouterServer`) and the shared cache service
(:class:`repro.cache.service.CacheServer`). :class:`JsonHttpServer`
holds everything they have in common so each service implements only
its routes and lifecycle hooks:

* socket bind/accept with per-connection tasks and keep-alive loops;
* uniform exception→status mapping around a ``_dispatch`` coroutine;
* graceful drain: stop accepting, run the service's flush hooks, give
  in-flight responses a bounded grace period, then cancel stragglers;
* the signal-driven ``request_drain``/``serve_until_drained`` pattern
  and the ``# <banner> HOST:PORT`` stderr line the tooling scrapes.

The drain sequence is ordered for rolling restarts: the ``draining``
flag flips (so ``/healthz`` answers 503) *before* the listener closes,
and ``drain_grace_s`` optionally keeps the listener open in that state
so a health-polling router observes the drain and reroutes while the
replica still answers — the zero-failed-request handoff
``docs/robustness.md`` describes.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
import time
from typing import Any

from repro.serve import protocol


class JsonHttpServer:
    """Base class for the stack's asyncio JSON-over-HTTP services."""

    #: stderr banner prefix; tooling scrapes ``# <banner> HOST:PORT``.
    banner = "serving on"

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = protocol.DEFAULT_MAX_BODY_BYTES,
        keepalive_timeout_s: float = 5.0,
        drain_timeout_s: float = 30.0,
        drain_grace_s: float = 0.0,
    ):
        self._bind_host = host
        self._bind_port = port
        self.max_body_bytes = int(max_body_bytes)
        self.keepalive_timeout_s = float(keepalive_timeout_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.drain_grace_s = float(drain_grace_s)
        self.draining = False
        self.host: str | None = None
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._drain_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the socket (after :meth:`_on_start`); returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        await self._on_start()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self._bind_host,
            port=self._bind_port,
            limit=protocol.MAX_HEADER_BYTES,
        )
        addr = self._server.sockets[0].getsockname()
        self.host, self.port = addr[0], addr[1]
        self._started_at = time.time()
        return self.host, self.port

    def request_drain(self) -> None:
        """Ask the serve loop to drain and exit. Safe to call from a
        signal handler or another thread, and idempotent — a repeat
        signal after the loop already drained and closed is a no-op."""
        if self._loop is not None and self._drain_requested is not None:
            try:
                self._loop.call_soon_threadsafe(self._drain_requested.set)
            except RuntimeError:
                pass  # loop already closed: the drain it asked for is done

    async def serve_until_drained(self) -> None:
        """Serve until :meth:`request_drain`, then drain gracefully."""
        assert self._drain_requested is not None, "call start() first"
        await self._drain_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """Flip to draining, close the listener, flush, finish in-flight
        responses, release resources. Idempotent."""
        if self.draining:
            return
        self.draining = True
        # Grace window: /healthz already answers 503 but the listener
        # stays open, so health-polling routers reroute before connects
        # start failing (rolling-restart handoff).
        if self.drain_grace_s > 0:
            await asyncio.sleep(self.drain_grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._on_listener_closed()
        # In-flight handlers now hold their results; give them until the
        # drain timeout to write responses and hang up.
        deadline = time.monotonic() + self.drain_timeout_s
        while self._conn_tasks and time.monotonic() < deadline:
            pending = {t for t in self._conn_tasks if not t.done()}
            if not pending:
                break
            await asyncio.wait(
                pending, timeout=max(0.05, deadline - time.monotonic())
            )
        for task in list(self._conn_tasks):
            if not task.done():
                task.cancel()
        await self._on_drained()

    # Hooks ------------------------------------------------------------

    async def _on_start(self) -> None:
        """Runs before the listener binds (spawn collectors, pollers)."""

    async def _on_listener_closed(self) -> None:
        """Runs after the listener closes, before in-flight waits
        (flush queues, stop background tasks feeding responses)."""

    async def _on_drained(self) -> None:
        """Runs last: release pools and background resources."""

    def uptime_s(self) -> float:
        return round(time.time() - self._started_at, 3)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await asyncio.wait_for(
                    protocol.read_request(
                        reader, max_body_bytes=self.max_body_bytes
                    ),
                    timeout=self.keepalive_timeout_s,
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive connection
            except protocol.PayloadTooLarge as exc:
                writer.write(protocol.render_response(
                    413,
                    protocol.error_payload("payload_too_large", str(exc)),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            except protocol.BadRequest as exc:
                writer.write(protocol.render_response(
                    400,
                    protocol.error_payload("bad_request", str(exc)),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            if request is None:
                return
            keep_alive = not request.wants_close and not self.draining
            body = await self._respond(request, keep_alive)
            writer.write(body)
            await writer.drain()
            if not keep_alive:
                return

    async def _respond(
        self, request: protocol.HttpRequest, keep_alive: bool
    ) -> bytes:
        t0 = time.perf_counter()
        extra: list[tuple[str, str]] = []
        try:
            status, payload, extra = await self._dispatch(request)
        except protocol.BadRequest as exc:
            status, payload = 400, protocol.error_payload(
                "bad_request", str(exc)
            )
        except Exception as exc:  # never let a handler kill the loop
            mapped = self._map_exception(exc)
            if mapped is None:
                status, payload = 500, protocol.error_payload(
                    "internal", f"{type(exc).__name__}: {exc}"
                )
            else:
                status, payload = mapped
        self._record_request(
            route=request.path,
            status=status,
            seconds=time.perf_counter() - t0,
        )
        return protocol.render_response(
            status, payload, keep_alive=keep_alive, extra_headers=extra
        )

    async def _dispatch(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        raise NotImplementedError

    def _map_exception(self, exc: Exception) -> tuple[int, Any] | None:
        """Service-specific exception→(status, payload) mapping; None
        falls through to the generic 500."""
        return None

    def _record_request(
        self, *, route: str, status: int, seconds: float
    ) -> None:
        """Per-exchange observability hook (no-op by default)."""

    @staticmethod
    def _method_not_allowed(
        allowed: str,
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        return 405, protocol.error_payload(
            "method_not_allowed", f"use {allowed}"
        ), [("Allow", allowed)]


async def amain(server: JsonHttpServer) -> int:
    """Run ``server`` until a drain signal: the shared body of every
    blocking CLI entry point (``repro serve``/``router``/``cache-server``)."""
    host, port = await server.start()
    print(
        f"# {server.banner} {host}:{port}", file=sys.stderr, flush=True
    )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, server.request_drain)
    await server.serve_until_drained()
    print("# drained cleanly", file=sys.stderr, flush=True)
    return 0


def run_blocking(make_server) -> int:
    """Blocking runner: build the server inside a fresh event loop via
    ``make_server()`` and serve until drained; returns the exit code."""
    async def _go() -> int:
        return await amain(make_server())

    try:
        return asyncio.run(_go())
    except KeyboardInterrupt:  # signal handler not installable (rare)
        return 0
