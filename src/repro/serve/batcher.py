"""Micro-batching: many concurrent clients, one scheduler.

The whole point of fronting :class:`~repro.batch.BatchScheduler` with a
service is that its amortisations — exact dedup, permutation reuse, the
persistent :class:`~repro.parallel.executor.WavefrontPool` — apply
*across clients*, not just within one CLI invocation. The micro-batcher
is the funnel that makes that true: every admitted request joins an
asyncio queue; a collector coalesces the queue into batches bounded by
**size** (``max_requests`` triples) and **age** (the first job in a
window waits at most ``max_age_s``), and each batch runs through one
long-lived scheduler on a dedicated single worker thread.

One thread, deliberately: the scheduler owns one worker pool, batches
serialise behind it, and the event loop stays free to accept, shed and
answer health checks while a batch computes. Results come back through
per-job futures; a batch-level failure (e.g. a
:class:`~repro.resilience.errors.WorkerFailure` past what supervision
can absorb) fails only the jobs in that batch and closes the pool so
the next batch starts from a clean spawn — the server itself never
dies with a worker.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from dataclasses import dataclass, replace
from typing import Any

from repro.batch.scheduler import (
    AlignmentRequest,
    BatchReport,
    BatchScheduler,
    RequestResult,
)
from repro.obs import hooks as _obs
from repro.serve.admission import AdmissionController, estimate_cells


class DeadlineExceeded(Exception):
    """A job's deadline passed before its batch ran (-> 504)."""


@dataclass
class Job:
    """One admitted HTTP request: 1..k triples plus its completion future."""

    requests: list[AlignmentRequest]
    cost_cells: int
    future: "asyncio.Future[list[RequestResult]]"
    #: ``loop.time()`` admission timestamp.
    enqueued_at: float
    #: Absolute ``loop.time()`` deadline; jobs still queued past it fail
    #: with :class:`DeadlineExceeded` instead of wasting a compute.
    deadline_at: float
    #: Set by the handler when the client stopped waiting (sync requests
    #: that already got their 504); the batcher then skips the work.
    cancelled: bool = False


#: Queue sentinel: drain requested, flush what remains and stop.
_SHUTDOWN = object()


def _consume_exception(fut: "asyncio.Future") -> None:
    if not fut.cancelled():
        fut.exception()  # flag it retrieved; awaiters still receive it


class MicroBatcher:
    """Coalesce admitted jobs into size/age-bounded scheduler batches."""

    def __init__(
        self,
        scheduler: BatchScheduler,
        admission: AdmissionController,
        *,
        max_requests: int = 32,
        max_age_s: float = 0.01,
    ):
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        if max_age_s <= 0:
            raise ValueError(f"max_age_s must be > 0, got {max_age_s}")
        self.scheduler = scheduler
        self.admission = admission
        self.max_requests = int(max_requests)
        self.max_age_s = float(max_age_s)
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._draining = False
        self.batches_run = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Producer side (called from request handlers, on the event loop)
    # ------------------------------------------------------------------

    def submit(
        self,
        requests: list[AlignmentRequest],
        cost_cells: int,
        deadline_s: float,
    ) -> Job:
        """Enqueue one admitted job (admission already accounted it)."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        job = Job(
            requests=requests,
            cost_cells=cost_cells,
            future=loop.create_future(),
            enqueued_at=now,
            deadline_at=now + deadline_s,
        )
        # Mark failures as retrieved even when the waiter gave up (its
        # deadline fired first) so abandoned futures don't log warnings.
        job.future.add_done_callback(_consume_exception)
        self._queue.put_nowait(job)
        return job

    def drain(self) -> None:
        """Stop collecting after the already-queued jobs are served."""
        if not self._draining:
            self._draining = True
            self._queue.put_nowait(_SHUTDOWN)

    # ------------------------------------------------------------------
    # Collector task
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Collect-and-flush until drained. Runs as one asyncio task."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                first = await self._queue.get()
                if first is _SHUTDOWN:
                    break
                batch, stop = await self._fill_window(loop, first)
                await self._flush(loop, batch)
                if stop:
                    break
        finally:
            self._executor.shutdown(wait=True)

    async def _fill_window(
        self, loop: asyncio.AbstractEventLoop, first: Job
    ) -> tuple[list[Job], bool]:
        """Grow a batch from ``first`` until size or age trips."""
        batch = [first]
        total = len(first.requests)
        flush_at = loop.time() + self.max_age_s
        reason = "age"
        stop = False
        while total < self.max_requests:
            remaining = flush_at - loop.time()
            if remaining <= 0:
                break
            try:
                job = await asyncio.wait_for(
                    self._queue.get(), timeout=remaining
                )
            except asyncio.TimeoutError:
                break
            if job is _SHUTDOWN:
                reason, stop = "drain", True
                break
            batch.append(job)
            total += len(job.requests)
        else:
            reason = "size"
        _obs.record_serve_flush(reason=reason, jobs=len(batch), requests=total)
        return batch, stop

    async def _flush(
        self, loop: asyncio.AbstractEventLoop, batch: list[Job]
    ) -> None:
        """Run one collected batch through the scheduler and fan results
        back out to the job futures."""
        now = loop.time()
        live: list[Job] = []
        for job in batch:
            self.admission.on_flush(len(job.requests))
            if job.cancelled or job.future.done():
                self.admission.on_complete(job.cost_cells)
            elif now > job.deadline_at:
                job.future.set_exception(DeadlineExceeded(
                    f"queued past its deadline ({len(job.requests)} request(s))"
                ))
                self.admission.on_complete(job.cost_cells)
            else:
                live.append(job)
        if not live:
            return

        flat: list[AlignmentRequest] = []
        for job in live:
            flat.extend(job.requests)
        t0 = time.perf_counter()
        try:
            report: BatchReport = await loop.run_in_executor(
                self._executor, self.scheduler.run, flat
            )
        except Exception as exc:
            # Fail this batch's jobs, not the server; drop the pool so
            # the next batch respawns clean workers.
            for job in live:
                if not job.future.done():
                    job.future.set_exception(exc)
                self.admission.on_complete(job.cost_cells)
            _obs.record_serve_batch_failure(type(exc).__name__)
            try:
                self.scheduler.close()
            except Exception:
                pass
            return

        self.batches_run += 1
        self.requests_served += len(flat)
        # Cost-model feedback: computed jobs consumed roughly their
        # admission estimate; everything else was (nearly) free.
        computed_cells = 0
        offset = 0
        for job in live:
            slice_ = report.results[offset : offset + len(job.requests)]
            # Rebase indices to the job's own request list: the
            # scheduler numbers results across the whole coalesced
            # batch, but each client sees only its own job, and the
            # response contract says "index" matches *their* order.
            slice_ = [
                replace(r, index=r.index - offset) for r in slice_
            ]
            offset += len(job.requests)
            computed_cells += sum(
                estimate_cells(req.seqs, req.constraints)
                if r.source == "computed"
                else 0
                for r, req in zip(slice_, job.requests)
            )
            if not job.future.done():
                job.future.set_result(slice_)
            self.admission.on_complete(job.cost_cells)
        self.admission.observe_throughput(
            computed_cells, time.perf_counter() - t0
        )
