"""The alignment service: asyncio front-end over the batching layer.

``repro serve`` turns the existing stack — :mod:`repro.obs` metrics,
:mod:`repro.resilience` supervision, the :mod:`repro.cache` result store
and the :mod:`repro.batch` scheduler — into a long-running HTTP/1.1 JSON
service. One process, one event loop, one compute thread, one worker
pool:

* **POST /v1/align** — a single triple or a list; admitted requests join
  the micro-batch queue and block until served (or add ``"async": true``
  for a 202 + job id). Results are bit-identical to :func:`repro.core.api.align3`.
* **GET /v1/jobs/<id>** — poll an async job.
* **GET /healthz** — liveness + drain state (503 while draining, so load
  balancers stop routing here first).
* **GET /metrics** — JSON snapshot of the :mod:`repro.obs` registry plus
  cache and admission state.

Backpressure is explicit: a full queue or cell budget sheds with **429**
and a ``Retry-After`` derived from the measured compute throughput; a
request whose deadline lapses gets **504**; a worker failure that
supervision could not absorb degrades to a typed **503** for that batch
only. ``SIGTERM``/``SIGINT`` trigger a graceful drain — stop accepting,
flush the queue, finish in-flight responses, close the pool — and the
process exits 0. See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import signal
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro import __version__
from repro.batch.scheduler import (
    AlignmentRequest,
    BatchScheduler,
    RequestResult,
)
from repro.cache import ResultCache
from repro.obs import hooks as _obs
from repro.obs import metrics as _metrics
from repro.resilience.errors import WorkerFailure
from repro.serve import protocol
from repro.serve.admission import AdmissionController, estimate_cells
from repro.serve.batcher import DeadlineExceeded, MicroBatcher
from repro.serve.config import ServeConfig


def parse_align_payload(
    obj: Any, config: ServeConfig
) -> tuple[list[AlignmentRequest], bool, float]:
    """Validate one POST /v1/align body.

    Returns ``(requests, want_async, deadline_s)``; raises
    :class:`protocol.BadRequest` on any schema violation. Accepts either
    a single request object or ``{"requests": [...]}``; each request is
    ``{"seqs": [a, b, c]}`` or ``{"a": ..., "b": ..., "c": ...}`` with
    optional ``id``, ``mode`` and ``method`` — the same shapes as the
    ``repro batch`` JSONL format.
    """
    if not isinstance(obj, dict):
        raise protocol.BadRequest(
            f"body must be a JSON object, got {type(obj).__name__}"
        )
    if "requests" in obj:
        items = obj["requests"]
        if not isinstance(items, list) or not items:
            raise protocol.BadRequest("'requests' must be a non-empty list")
    else:
        items = [obj]

    want_async = bool(obj.get("async", False))
    deadline_s = obj.get("deadline_s", config.default_deadline_s)
    if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool):
        raise protocol.BadRequest("'deadline_s' must be a number")
    deadline_s = float(deadline_s)
    if not (0 < deadline_s <= 3600):
        raise protocol.BadRequest(
            f"'deadline_s' must be in (0, 3600], got {deadline_s:g}"
        )

    requests: list[AlignmentRequest] = []
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            raise protocol.BadRequest(f"request {i} must be a JSON object")
        if "seqs" in item:
            seqs = item["seqs"]
        elif all(k in item for k in ("a", "b", "c")):
            seqs = [item["a"], item["b"], item["c"]]
        else:
            raise protocol.BadRequest(
                f"request {i} needs 'seqs' or 'a'/'b'/'c'"
            )
        if not (
            isinstance(seqs, list)
            and len(seqs) == 3
            and all(isinstance(s, str) for s in seqs)
        ):
            raise protocol.BadRequest(
                f"request {i}: 'seqs' must be three strings"
            )
        req = AlignmentRequest(
            seqs=tuple(seqs),  # type: ignore[arg-type]
            mode=item.get("mode", "global"),
            method=item.get("method", "auto"),
            rid=str(item["id"]) if "id" in item else None,
        )
        try:
            req = BatchScheduler._normalise(req)
        except (ValueError, TypeError) as exc:
            raise protocol.BadRequest(f"request {i}: {exc}") from None
        requests.append(req)
    return requests, want_async, deadline_s


def result_payload(res: RequestResult) -> dict:
    """Serialise one served request for the JSON response."""
    aln = res.alignment
    return {
        "id": res.rid,
        "index": res.index,
        "score": aln.score,
        "rows": list(aln.rows),
        "source": res.source,
        "cache_hit": res.cache_hit,
        "engine": aln.meta.get("engine"),
    }


@dataclass
class JobRecord:
    """State of one async job in the bounded table."""

    status: str = "queued"  # queued -> done | failed
    created_at: float = 0.0
    n_requests: int = 0
    results: list[dict] | None = None
    error: dict | None = None

    def payload(self, jid: str) -> dict:
        out: dict[str, Any] = {
            "job": jid,
            "status": self.status,
            "requests": self.n_requests,
        }
        if self.results is not None:
            out["results"] = self.results
        if self.error is not None:
            out["error"] = self.error
        return out


class JobTable:
    """Bounded async-job registry (oldest *finished* jobs evicted first,
    then oldest overall — a flood of async submissions cannot grow
    memory without bound)."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._counter = itertools.count(1)

    def register(self, n_requests: int) -> tuple[str, JobRecord]:
        jid = f"job-{next(self._counter)}"
        rec = JobRecord(
            status="queued", created_at=time.time(), n_requests=n_requests
        )
        self._jobs[jid] = rec
        self._evict()
        return jid, rec

    def get(self, jid: str) -> JobRecord | None:
        return self._jobs.get(jid)

    def _evict(self) -> None:
        while len(self._jobs) > self.capacity:
            victim = None
            for jid, rec in self._jobs.items():
                if rec.status != "queued":
                    victim = jid
                    break
            if victim is None:  # all queued: drop the oldest anyway
                victim = next(iter(self._jobs))
            del self._jobs[victim]

    def __len__(self) -> int:
        return len(self._jobs)


class AlignServer:
    """One serving instance: socket, admission, batcher, job table."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        cache: ResultCache | None = None,
        scheduler: BatchScheduler | None = None,
    ):
        self.config = (config or ServeConfig()).validate()
        self.cache = cache if cache is not None else ResultCache(
            max_entries=self.config.cache_entries,
            cache_dir=self.config.cache_dir,
        )
        self.scheduler = scheduler or BatchScheduler(
            cache=self.cache,
            workers=self.config.workers,
            max_pool_cells=self.config.max_pool_cells,
        )
        self.admission = AdmissionController(
            max_queued_requests=self.config.queue_depth,
            max_inflight_cells=self.config.max_inflight_cells,
        )
        self.batcher = MicroBatcher(
            self.scheduler,
            self.admission,
            max_requests=self.config.batch_max_requests,
            max_age_s=self.config.batch_max_age_s,
        )
        self.jobs = JobTable(self.config.job_capacity)
        self.draining = False
        self.host: str | None = None
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._batch_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._drain_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the socket and start the collector; returns (host, port)."""
        # /metrics must always have a registry to snapshot; respect a
        # registry the caller (e.g. --metrics) already enabled.
        if not _metrics.enabled:
            _metrics.enable()
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._batch_task = asyncio.create_task(
            self.batcher.run(), name="repro-serve-batcher"
        )
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_HEADER_BYTES,
        )
        addr = self._server.sockets[0].getsockname()
        self.host, self.port = addr[0], addr[1]
        self._started_at = time.time()
        return self.host, self.port

    def request_drain(self) -> None:
        """Ask the serve loop to drain and exit. Safe to call from a
        signal handler or another thread, and idempotent — a repeat
        signal after the loop already drained and closed is a no-op."""
        if self._loop is not None and self._drain_requested is not None:
            try:
                self._loop.call_soon_threadsafe(self._drain_requested.set)
            except RuntimeError:
                pass  # loop already closed: the drain it asked for is done

    async def serve_until_drained(self) -> None:
        """Serve until :meth:`request_drain`, then drain gracefully."""
        assert self._drain_requested is not None, "call start() first"
        await self._drain_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, flush the queue, finish in-flight responses,
        release the pool. Idempotent."""
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.batcher.drain()
        if self._batch_task is not None:
            await self._batch_task
        # In-flight handlers now hold their results; give them until the
        # drain timeout to write responses and hang up.
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self._conn_tasks and time.monotonic() < deadline:
            pending = {t for t in self._conn_tasks if not t.done()}
            if not pending:
                break
            await asyncio.wait(
                pending, timeout=max(0.05, deadline - time.monotonic())
            )
        for task in list(self._conn_tasks):
            if not task.done():
                task.cancel()
        self.scheduler.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await asyncio.wait_for(
                    protocol.read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    ),
                    timeout=self.config.keepalive_timeout_s,
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive connection
            except protocol.PayloadTooLarge as exc:
                writer.write(protocol.render_response(
                    413,
                    protocol.error_payload("payload_too_large", str(exc)),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            except protocol.BadRequest as exc:
                writer.write(protocol.render_response(
                    400,
                    protocol.error_payload("bad_request", str(exc)),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            if request is None:
                return
            keep_alive = not request.wants_close and not self.draining
            body = await self._respond(request, keep_alive)
            writer.write(body)
            await writer.drain()
            if not keep_alive:
                return

    async def _respond(
        self, request: protocol.HttpRequest, keep_alive: bool
    ) -> bytes:
        t0 = time.perf_counter()
        extra: list[tuple[str, str]] = []
        try:
            status, payload, extra = await self._dispatch(request)
        except protocol.BadRequest as exc:
            status, payload = 400, protocol.error_payload(
                "bad_request", str(exc)
            )
        except DeadlineExceeded as exc:
            status, payload = 504, protocol.error_payload(
                "deadline_exceeded", str(exc)
            )
        except WorkerFailure as exc:
            status, payload = 503, protocol.error_payload(
                "worker_failure", exc.describe()
            )
        except Exception as exc:  # never let a handler kill the loop
            status, payload = 500, protocol.error_payload(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        _obs.record_serve_request(
            route=request.path,
            status=status,
            seconds=time.perf_counter() - t0,
        )
        return protocol.render_response(
            status, payload, keep_alive=keep_alive, extra_headers=extra
        )

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return 200, self._metrics_payload(), []
        if path == "/v1/align":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._align(request)
        if path.startswith("/v1/jobs/"):
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._job_status(path[len("/v1/jobs/"):])
        return 404, protocol.error_payload(
            "not_found", f"no route for {request.method} {path}"
        ), []

    @staticmethod
    def _method_not_allowed(
        allowed: str,
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        return 405, protocol.error_payload(
            "method_not_allowed", f"use {allowed}"
        ), [("Allow", allowed)]

    def _healthz(self) -> tuple[int, Any, list[tuple[str, str]]]:
        status = 503 if self.draining else 200
        return status, {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "uptime_s": round(time.time() - self._started_at, 3),
            "queue_depth": self.admission.queued_requests,
            "inflight_cells": self.admission.inflight_cells,
            "workers": self.config.workers,
        }, []

    def _metrics_payload(self) -> dict:
        return {
            "metrics": _metrics.registry().snapshot(),
            "cache": (
                self.cache.stats.snapshot() if self.cache is not None else None
            ),
            "admission": self.admission.snapshot(),
            "serve": {
                "uptime_s": round(time.time() - self._started_at, 3),
                "draining": self.draining,
                "batches_run": self.batcher.batches_run,
                "requests_served": self.batcher.requests_served,
                "jobs_tracked": len(self.jobs),
            },
        }

    def _job_status(
        self, jid: str
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        rec = self.jobs.get(jid)
        if rec is None:
            return 404, protocol.error_payload(
                "not_found", f"unknown job {jid!r} (finished jobs are "
                "evicted once the table fills)"
            ), []
        return 200, rec.payload(jid), []

    async def _align(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        if self.draining:
            return 503, protocol.error_payload(
                "draining", "server is draining; retry against another "
                "instance"
            ), [("Retry-After", "1")]
        requests, want_async, deadline_s = parse_align_payload(
            request.json(), self.config
        )
        cost = sum(estimate_cells(r.seqs) for r in requests)
        if cost > self.config.max_request_cells:
            return 413, protocol.error_payload(
                "request_too_large",
                f"estimated {cost} DP cells exceeds the per-request cap "
                f"of {self.config.max_request_cells}",
                estimated_cells=cost,
            ), []
        decision = self.admission.try_admit(len(requests), cost)
        if not decision.admitted:
            return 429, protocol.error_payload(
                "overloaded",
                f"admission shed this request ({decision.reason})",
                reason=decision.reason,
                retry_after_s=decision.retry_after_s,
            ), [("Retry-After", str(decision.retry_after_s))]

        job = self.batcher.submit(requests, cost, deadline_s)
        if want_async:
            jid, rec = self.jobs.register(len(requests))
            job.future.add_done_callback(
                lambda fut: self._finish_job(rec, fut)
            )
            return 202, {
                "job": jid,
                "status": "queued",
                "poll": f"/v1/jobs/{jid}",
                "requests": len(requests),
            }, []

        try:
            results = await asyncio.wait_for(
                asyncio.shield(job.future), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            # The batch may still compute this job; the client stopped
            # waiting, so tell the batcher not to bother if it can skip.
            job.cancelled = True
            raise DeadlineExceeded(
                f"no result within deadline_s={deadline_s:g}"
            ) from None
        return 200, {
            "results": [result_payload(r) for r in results],
            "count": len(results),
        }, []

    @staticmethod
    def _finish_job(rec: JobRecord, fut: "asyncio.Future") -> None:
        if fut.cancelled():
            rec.status = "failed"
            rec.error = {"type": "cancelled", "message": "job cancelled"}
            return
        exc = fut.exception()
        if exc is None:
            rec.status = "done"
            rec.results = [result_payload(r) for r in fut.result()]
        else:
            rec.status = "failed"
            if isinstance(exc, DeadlineExceeded):
                kind = "deadline_exceeded"
            elif isinstance(exc, WorkerFailure):
                kind = "worker_failure"
            else:
                kind = "internal"
            rec.error = {"type": kind, "message": str(exc)}


async def _amain(config: ServeConfig) -> int:
    server = AlignServer(config)
    host, port = await server.start()
    print(f"# serving on {host}:{port}", file=sys.stderr, flush=True)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, server.request_drain)
    await server.serve_until_drained()
    print("# drained cleanly", file=sys.stderr, flush=True)
    return 0


def run_server(config: ServeConfig | None = None) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    try:
        return asyncio.run(_amain(config or ServeConfig()))
    except KeyboardInterrupt:  # signal handler not installable (rare)
        return 0
