"""The alignment service: asyncio front-end over the batching layer.

``repro serve`` turns the existing stack — :mod:`repro.obs` metrics,
:mod:`repro.resilience` supervision, the :mod:`repro.cache` result store
and the :mod:`repro.batch` scheduler — into a long-running HTTP/1.1 JSON
service. One process, one event loop, one compute thread, one worker
pool:

* **POST /v1/align** — a single triple or a list; admitted requests join
  the micro-batch queue and block until served (or add ``"async": true``
  for a 202 + job id). Results are bit-identical to :func:`repro.core.api.align3`.
* **GET /v1/jobs/<id>** — poll an async job.
* **GET /healthz** — liveness + drain state (503 while draining, so load
  balancers stop routing here first).
* **GET /metrics** — JSON snapshot of the :mod:`repro.obs` registry plus
  cache and admission state.

Backpressure is explicit: a full queue or cell budget sheds with **429**
and a ``Retry-After`` derived from the measured compute throughput; a
request whose deadline lapses gets **504**; a worker failure that
supervision could not absorb degrades to a typed **503** for that batch
only. ``SIGTERM``/``SIGINT`` trigger a graceful drain — stop accepting,
flush the queue, finish in-flight responses, close the pool — and the
process exits 0. See ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro import __version__
from repro.batch.scheduler import (
    AlignmentRequest,
    BatchScheduler,
    RequestResult,
)
from repro.cache import ResultCache
from repro.obs import hooks as _obs
from repro.obs import metrics as _metrics
from repro.resilience.errors import WorkerFailure
from repro.serve import protocol
from repro.serve.admission import AdmissionController, estimate_cells
from repro.serve.batcher import DeadlineExceeded, MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.httpd import JsonHttpServer, run_blocking


def parse_align_payload(
    obj: Any, config: ServeConfig
) -> tuple[list[AlignmentRequest], bool, float]:
    """Validate one POST /v1/align body.

    Returns ``(requests, want_async, deadline_s)``; raises
    :class:`protocol.BadRequest` on any schema violation. Accepts either
    a single request object or ``{"requests": [...]}``; each request is
    ``{"seqs": [a, b, c]}`` or ``{"a": ..., "b": ..., "c": ...}`` with
    optional ``id``, ``mode`` and ``method`` — the same shapes as the
    ``repro batch`` JSONL format.
    """
    if not isinstance(obj, dict):
        raise protocol.BadRequest(
            f"body must be a JSON object, got {type(obj).__name__}"
        )
    if "requests" in obj:
        items = obj["requests"]
        if not isinstance(items, list) or not items:
            raise protocol.BadRequest("'requests' must be a non-empty list")
    else:
        items = [obj]

    want_async = bool(obj.get("async", False))
    deadline_s = obj.get("deadline_s", config.default_deadline_s)
    if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool):
        raise protocol.BadRequest("'deadline_s' must be a number")
    deadline_s = float(deadline_s)
    if not (0 < deadline_s <= 3600):
        raise protocol.BadRequest(
            f"'deadline_s' must be in (0, 3600], got {deadline_s:g}"
        )

    return parse_align_items(items), want_async, deadline_s


def parse_align_items(items: list) -> list[AlignmentRequest]:
    """Validate and normalise the raw item dicts of an align body.

    Shared with the router (:mod:`repro.router.routing`), which must
    derive the *same* normalised request — and therefore the same
    cache key — as the replica that will serve it.
    """
    requests: list[AlignmentRequest] = []
    for i, item in enumerate(items):
        if not isinstance(item, dict):
            raise protocol.BadRequest(f"request {i} must be a JSON object")
        if "seqs" in item:
            seqs = item["seqs"]
        elif all(k in item for k in ("a", "b", "c")):
            seqs = [item["a"], item["b"], item["c"]]
        else:
            raise protocol.BadRequest(
                f"request {i} needs 'seqs' or 'a'/'b'/'c'"
            )
        if not (
            isinstance(seqs, list)
            and len(seqs) == 3
            and all(isinstance(s, str) for s in seqs)
        ):
            raise protocol.BadRequest(
                f"request {i}: 'seqs' must be three strings"
            )
        constraints = None
        if item.get("constraints"):
            from repro.anchor import constraints_from_jsonable

            try:
                constraints = constraints_from_jsonable(item["constraints"])
            except ValueError as exc:
                raise protocol.BadRequest(f"request {i}: {exc}") from None
        req = AlignmentRequest(
            seqs=tuple(seqs),  # type: ignore[arg-type]
            mode=item.get("mode", "global"),
            method=item.get("method", "auto"),
            rid=str(item["id"]) if "id" in item else None,
            constraints=constraints,
        )
        try:
            req = BatchScheduler._normalise(req)
        except (ValueError, TypeError) as exc:
            raise protocol.BadRequest(f"request {i}: {exc}") from None
        requests.append(req)
    return requests


def result_payload(res: RequestResult) -> dict:
    """Serialise one served request for the JSON response."""
    aln = res.alignment
    return {
        "id": res.rid,
        "index": res.index,
        "score": aln.score,
        "rows": list(aln.rows),
        "source": res.source,
        "cache_hit": res.cache_hit,
        "engine": aln.meta.get("engine"),
    }


@dataclass
class JobRecord:
    """State of one async job in the bounded table."""

    status: str = "queued"  # queued -> done | failed
    created_at: float = 0.0
    n_requests: int = 0
    results: list[dict] | None = None
    error: dict | None = None

    def payload(self, jid: str) -> dict:
        out: dict[str, Any] = {
            "job": jid,
            "status": self.status,
            "requests": self.n_requests,
        }
        if self.results is not None:
            out["results"] = self.results
        if self.error is not None:
            out["error"] = self.error
        return out


class JobTable:
    """Bounded async-job registry: only *finished* jobs are evicted
    (oldest first). A still-running job's record is never dropped — an
    evicted in-flight id would orphan the job for its poller — so when
    every record is in flight the table grows past ``capacity`` (with a
    one-line warning) until jobs finish and eviction can catch up."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._counter = itertools.count(1)
        self._overflow_warned = False

    def register(self, n_requests: int) -> tuple[str, JobRecord]:
        jid = f"job-{next(self._counter)}"
        rec = JobRecord(
            status="queued", created_at=time.time(), n_requests=n_requests
        )
        self._jobs[jid] = rec
        self._evict()
        return jid, rec

    def get(self, jid: str) -> JobRecord | None:
        return self._jobs.get(jid)

    def _evict(self) -> None:
        while len(self._jobs) > self.capacity:
            victim = None
            for jid, rec in self._jobs.items():
                if rec.status != "queued":
                    victim = jid
                    break
            if victim is None:
                # Every record is in flight: growing past capacity is
                # the lesser evil (admission control bounds how fast
                # this can happen). Warn once per overflow episode.
                if not self._overflow_warned:
                    print(
                        f"# warning: job table over capacity "
                        f"({len(self._jobs)} > {self.capacity}) with all "
                        f"jobs in flight; growing until some finish",
                        file=sys.stderr,
                        flush=True,
                    )
                    self._overflow_warned = True
                return
            del self._jobs[victim]
        self._overflow_warned = False

    def __len__(self) -> int:
        return len(self._jobs)


class AlignServer(JsonHttpServer):
    """One serving instance: socket, admission, batcher, job table."""

    banner = "serving on"

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        cache: ResultCache | None = None,
        scheduler: BatchScheduler | None = None,
    ):
        self.config = (config or ServeConfig()).validate()
        super().__init__(
            host=self.config.host,
            port=self.config.port,
            max_body_bytes=self.config.max_body_bytes,
            keepalive_timeout_s=self.config.keepalive_timeout_s,
            drain_timeout_s=self.config.drain_timeout_s,
            drain_grace_s=self.config.drain_grace_s,
        )
        if cache is not None:
            self.cache = cache
        else:
            remote = None
            if self.config.cache_url:
                from repro.cache.remote import RemoteCacheClient

                remote = RemoteCacheClient.from_url(self.config.cache_url)
            self.cache = ResultCache(
                max_entries=self.config.cache_entries,
                cache_dir=self.config.cache_dir,
                remote=remote,
            )
        self.scheduler = scheduler or BatchScheduler(
            cache=self.cache,
            workers=self.config.workers,
            max_pool_cells=self.config.max_pool_cells,
            auto_policy=self.config.auto_policy,
        )
        self.admission = AdmissionController(
            max_queued_requests=self.config.queue_depth,
            max_inflight_cells=self.config.max_inflight_cells,
        )
        # Admission-informed method selection: the scheduler reads the
        # controller's live throughput EWMA per request, so ``auto``
        # thresholds track what this machine actually sustains.
        self.scheduler.cells_per_s_hint = lambda: self.admission.cells_per_s
        self.batcher = MicroBatcher(
            self.scheduler,
            self.admission,
            max_requests=self.config.batch_max_requests,
            max_age_s=self.config.batch_max_age_s,
        )
        self.jobs = JobTable(self.config.job_capacity)
        self._batch_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle hooks (JsonHttpServer owns the socket/drain machinery)
    # ------------------------------------------------------------------

    async def _on_start(self) -> None:
        # /metrics must always have a registry to snapshot; respect a
        # registry the caller (e.g. --metrics) already enabled.
        if not _metrics.enabled:
            _metrics.enable()
        self._batch_task = asyncio.create_task(
            self.batcher.run(), name="repro-serve-batcher"
        )

    async def _on_listener_closed(self) -> None:
        self.batcher.drain()
        if self._batch_task is not None:
            await self._batch_task

    async def _on_drained(self) -> None:
        self.scheduler.close()

    def _map_exception(self, exc: Exception) -> tuple[int, Any] | None:
        if isinstance(exc, DeadlineExceeded):
            return 504, protocol.error_payload(
                "deadline_exceeded", str(exc)
            )
        if isinstance(exc, WorkerFailure):
            return 503, protocol.error_payload(
                "worker_failure", exc.describe()
            )
        return None

    def _record_request(
        self, *, route: str, status: int, seconds: float
    ) -> None:
        _obs.record_serve_request(route=route, status=status, seconds=seconds)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return 200, self._metrics_payload(), []
        if path == "/v1/align":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._align(request)
        if path.startswith("/v1/jobs/"):
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._job_status(path[len("/v1/jobs/"):])
        return 404, protocol.error_payload(
            "not_found", f"no route for {request.method} {path}"
        ), []

    def _healthz(self) -> tuple[int, Any, list[tuple[str, str]]]:
        status = 503 if self.draining else 200
        return status, {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "instance": self.config.instance,
            "uptime_s": self.uptime_s(),
            "queue_depth": self.admission.queued_requests,
            "inflight_cells": self.admission.inflight_cells,
            "workers": self.config.workers,
        }, []

    def _metrics_payload(self) -> dict:
        return {
            "metrics": _metrics.registry().snapshot(),
            "cache": (
                self.cache.stats.snapshot() if self.cache is not None else None
            ),
            "admission": self.admission.snapshot(),
            "serve": {
                "instance": self.config.instance,
                "uptime_s": self.uptime_s(),
                "draining": self.draining,
                "batches_run": self.batcher.batches_run,
                "requests_served": self.batcher.requests_served,
                "jobs_tracked": len(self.jobs),
            },
        }

    def _job_status(
        self, jid: str
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        rec = self.jobs.get(jid)
        if rec is None:
            return 404, protocol.error_payload(
                "not_found", f"unknown job {jid!r} (finished jobs are "
                "evicted once the table fills)"
            ), []
        return 200, rec.payload(jid), []

    async def _align(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        if self.draining:
            return 503, protocol.error_payload(
                "draining", "server is draining; retry against another "
                "instance"
            ), [("Retry-After", "1")]
        requests, want_async, deadline_s = parse_align_payload(
            request.json(), self.config
        )
        cost = sum(estimate_cells(r.seqs, r.constraints) for r in requests)
        if cost > self.config.max_request_cells:
            return 413, protocol.error_payload(
                "request_too_large",
                f"estimated {cost} DP cells exceeds the per-request cap "
                f"of {self.config.max_request_cells}",
                estimated_cells=cost,
            ), []
        decision = self.admission.try_admit(len(requests), cost)
        if not decision.admitted:
            return 429, protocol.error_payload(
                "overloaded",
                f"admission shed this request ({decision.reason})",
                reason=decision.reason,
                retry_after_s=decision.retry_after_s,
            ), [("Retry-After", str(decision.retry_after_s))]

        job = self.batcher.submit(requests, cost, deadline_s)
        if want_async:
            jid, rec = self.jobs.register(len(requests))
            job.future.add_done_callback(
                lambda fut: self._finish_job(rec, fut)
            )
            return 202, {
                "job": jid,
                "status": "queued",
                "poll": f"/v1/jobs/{jid}",
                "requests": len(requests),
            }, []

        try:
            results = await asyncio.wait_for(
                asyncio.shield(job.future), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            # The batch may still compute this job; the client stopped
            # waiting, so tell the batcher not to bother if it can skip.
            job.cancelled = True
            raise DeadlineExceeded(
                f"no result within deadline_s={deadline_s:g}"
            ) from None
        return 200, {
            "results": [result_payload(r) for r in results],
            "count": len(results),
        }, []

    @staticmethod
    def _finish_job(rec: JobRecord, fut: "asyncio.Future") -> None:
        if fut.cancelled():
            rec.status = "failed"
            rec.error = {"type": "cancelled", "message": "job cancelled"}
            return
        exc = fut.exception()
        if exc is None:
            rec.status = "done"
            rec.results = [result_payload(r) for r in fut.result()]
        else:
            rec.status = "failed"
            if isinstance(exc, DeadlineExceeded):
                kind = "deadline_exceeded"
            elif isinstance(exc, WorkerFailure):
                kind = "worker_failure"
            else:
                kind = "internal"
            rec.error = {"type": kind, "message": str(exc)}


def run_server(config: ServeConfig | None = None) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    return run_blocking(lambda: AlignServer(config or ServeConfig()))
