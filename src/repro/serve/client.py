"""A small synchronous client for the alignment service.

Built on :mod:`http.client` so the load generator, the acceptance gate
and the tests share one request path with zero dependencies. One
:class:`ServeClient` wraps one keep-alive connection and is **not**
thread-safe — concurrent load tests give each thread its own client,
which also mirrors how independent HTTP clients hit a real deployment.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass
class ServeResponse:
    """One HTTP exchange: status, interesting headers, decoded body."""

    status: int
    headers: dict[str, str]
    body: Any

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after_s(self) -> float | None:
        raw = self.headers.get("retry-after")
        try:
            return float(raw) if raw is not None else None
        except ValueError:
            return None


class ServeClient:
    """Thin JSON client for one ``repro serve`` instance."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: Any | None = None
    ) -> ServeResponse:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive connection (e.g. server drained it): one
            # reconnect, then let the error surface.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        try:
            decoded = json.loads(raw) if raw else None
        except json.JSONDecodeError:
            decoded = raw.decode("latin-1")
        return ServeResponse(
            status=resp.status,
            headers={k.lower(): v for k, v in resp.getheaders()},
            body=decoded,
        )

    # ------------------------------------------------------------------

    def align(
        self,
        seqs: Sequence[str] | None = None,
        *,
        requests: Sequence[dict] | None = None,
        mode: str = "global",
        method: str = "auto",
        rid: str | None = None,
        deadline_s: float | None = None,
        want_async: bool = False,
    ) -> ServeResponse:
        """POST /v1/align with a single triple or a prepared request list."""
        payload: dict[str, Any]
        if requests is not None:
            payload = {"requests": list(requests)}
        elif seqs is not None:
            payload = {"seqs": list(seqs), "mode": mode, "method": method}
            if rid is not None:
                payload["id"] = rid
        else:
            raise ValueError("give either seqs or requests")
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if want_async:
            payload["async"] = True
        return self._request("POST", "/v1/align", payload)

    def job(self, jid: str) -> ServeResponse:
        return self._request("GET", f"/v1/jobs/{jid}")

    def healthz(self) -> ServeResponse:
        return self._request("GET", "/healthz")

    def metrics(self) -> ServeResponse:
        return self._request("GET", "/metrics")


def wait_ready(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> bool:
    """Poll until a TCP connect to the service succeeds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return True
        except OSError:
            time.sleep(interval)
    return False
