"""Cube-chain decomposition for a consistent anchor chain.

A validated chain of anchors (see :mod:`repro.anchor.model`) factors the
DP cube into an alternating sequence of free *segments* (sub-cubes the
engines must solve) and forced anchor runs (columns spliced in
verbatim). Because every monotone path through the cube that respects
the anchors must enter each anchor at its start cell and leave at its
end cell, the sub-problems are independent and the optimum subject to
the constraints is the sum of sub-cube optima plus the anchor-column
scores — the decomposition of Chin et al. lifted to three sequences.

This module is pure geometry: no scoring, no engines. It is shared by
the solver (:mod:`repro.anchor.solve`), the degradation planner
(max sub-cube memory pricing) and serve admission (chain cell costing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .model import Anchor

__all__ = [
    "Segment",
    "chain_cells",
    "chain_coverage",
    "decompose",
    "max_subcube_dims",
    "segment_dims",
]


@dataclass(frozen=True)
class Segment:
    """One free sub-cube between anchors (or a chain end)."""

    start: tuple[int, int, int]
    end: tuple[int, int, int]

    @property
    def dims(self) -> tuple[int, int, int]:
        return (
            self.end[0] - self.start[0],
            self.end[1] - self.start[1],
            self.end[2] - self.start[2],
        )

    @property
    def cells(self) -> int:
        n1, n2, n3 = self.dims
        return (n1 + 1) * (n2 + 1) * (n3 + 1)

    @property
    def empty(self) -> bool:
        return self.start == self.end


def decompose(
    anchors: Sequence[Anchor], dims: tuple[int, int, int]
) -> list[Segment | Anchor]:
    """Return the alternating segment/anchor chain covering the cube.

    ``anchors`` must already be sorted and consistent (the output of
    :func:`repro.anchor.model.validate_chain`). The result always starts
    and ends with a :class:`Segment` (possibly empty) and contains every
    anchor in order: ``[seg0, a0, seg1, a1, ..., segM]``.
    """
    parts: list[Segment | Anchor] = []
    cursor = (0, 0, 0)
    for a in anchors:
        parts.append(Segment(cursor, a.start))
        parts.append(a)
        cursor = a.end
    parts.append(Segment(cursor, dims))
    return parts


def segment_dims(
    anchors: Sequence[Anchor], dims: tuple[int, int, int]
) -> list[tuple[int, int, int]]:
    """Dims of every free segment in chain order (empty ones included)."""
    return [p.dims for p in decompose(anchors, dims) if isinstance(p, Segment)]


def max_subcube_dims(
    anchors: Sequence[Anchor], dims: tuple[int, int, int]
) -> tuple[int, int, int]:
    """Dims of the largest free sub-cube (by lattice cell count).

    With no anchors this is ``dims`` itself; with a fully anchored cube
    it is ``(0, 0, 0)``. This is what the degradation planner prices:
    sub-cubes are solved sequentially, so peak memory follows the
    biggest one, not the full cube.
    """
    best = (0, 0, 0)
    best_cells = 1
    for d in segment_dims(anchors, dims):
        cells = (d[0] + 1) * (d[1] + 1) * (d[2] + 1)
        if cells > best_cells:
            best, best_cells = d, cells
    return best if anchors else dims


def chain_cells(anchors: Sequence[Anchor], dims: tuple[int, int, int]) -> int:
    """Total DP work for the chain: sum of sub-cube lattices + anchor columns.

    This is the anchored analogue of ``serve.admission.estimate_cells``'s
    full-lattice count, used to cost constrained requests honestly.
    """
    total = sum(
        (d[0] + 1) * (d[1] + 1) * (d[2] + 1)
        for d in segment_dims(anchors, dims)
    )
    total += sum(a.length for a in anchors)
    return total


def chain_coverage(
    anchors: Sequence[Anchor], dims: tuple[int, int, int]
) -> float:
    """Fraction of the alignment pinned by anchors: sum(length)/max(dims)."""
    longest = max(dims) if max(dims) > 0 else 1
    return min(1.0, sum(a.length for a in anchors) / longest)
