"""Constraint model for constrained and anchored three-way alignment.

A *constraint* (anchor) is a triple of start offsets plus a run length
``(i, j, k, length)``: the alignment is forced through ``length``
consecutive three-way columns pairing ``sa[i:i+length]``,
``sb[j:j+length]`` and ``sc[k:k+length]`` — in DP-cube terms, the path
must visit cell ``(i, j, k)`` and then take ``length`` all-advance
(``ABC``) moves to cell ``(i+length, j+length, k+length)``. Anchors
usually mark exact sequence matches (that is what
:mod:`repro.anchor.discover` finds), but the model does not require it:
any forced co-alignment of three equal-length substrings is a valid
constraint, scored like every other column.

A *chain* of constraints must be consistent: sorted by start cell, each
anchor's end must be ≤ the next anchor's start **component-wise**
(touching is allowed — the segment between them is then empty). A
consistent chain factors the cube into independent sub-cubes (Chin et
al., PAPERS.md), which is what :mod:`repro.anchor.chain` exploits.

Everything here works on plain ``(i, j, k, length)`` int tuples at the
boundaries (JSON IO, cache keys, :class:`~repro.batch.scheduler.AlignmentRequest`
hashing) and on the :class:`Anchor` dataclass internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "Anchor",
    "as_anchors",
    "constraints_from_jsonable",
    "normalize_constraints",
    "validate_chain",
]


@dataclass(frozen=True, order=True)
class Anchor:
    """One forced run of three-way columns (see module docs)."""

    i: int
    j: int
    k: int
    length: int

    @property
    def start(self) -> tuple[int, int, int]:
        return (self.i, self.j, self.k)

    @property
    def end(self) -> tuple[int, int, int]:
        return (self.i + self.length, self.j + self.length, self.k + self.length)

    def astuple(self) -> tuple[int, int, int, int]:
        return (self.i, self.j, self.k, self.length)


def _coerce_one(raw: Any, where: str) -> Anchor:
    if isinstance(raw, Anchor):
        values: Sequence[Any] = raw.astuple()
    elif isinstance(raw, dict):
        try:
            values = (raw["i"], raw["j"], raw["k"], raw["length"])
        except KeyError as exc:
            raise ValueError(
                f"{where}: constraint object needs keys i/j/k/length "
                f"(missing {exc.args[0]!r})"
            ) from None
    elif isinstance(raw, (list, tuple)):
        values = raw
    else:
        raise ValueError(
            f"{where}: constraint must be [i, j, k, length], got "
            f"{type(raw).__name__}"
        )
    if len(values) != 4:
        raise ValueError(
            f"{where}: constraint must have exactly four integers, got "
            f"{len(values)}"
        )
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, int):
            raise ValueError(
                f"{where}: constraint fields must be integers, got {v!r}"
            )
        out.append(int(v))
    i, j, k, length = out
    if min(i, j, k) < 0:
        raise ValueError(f"{where}: constraint offsets must be >= 0, got {out}")
    if length < 1:
        raise ValueError(f"{where}: constraint length must be >= 1, got {length}")
    return Anchor(i, j, k, length)


def as_anchors(constraints: Iterable[Any]) -> tuple[Anchor, ...]:
    """Coerce an iterable of tuples/dicts/:class:`Anchor` to anchors.

    Shape and sign validation only; bounds and chain consistency need the
    sequence lengths — see :func:`validate_chain`.
    """
    return tuple(
        _coerce_one(raw, f"constraint {n}")
        for n, raw in enumerate(constraints)
    )


def constraints_from_jsonable(raw: Any, where: str = "constraints") -> tuple[
    tuple[int, int, int, int], ...
]:
    """Parse the wire/JSONL ``constraints`` field to plain int tuples.

    Accepts a list of ``[i, j, k, length]`` lists (or ``{"i": ...}``
    objects); raises ``ValueError`` with ``where`` in the message on any
    shape violation. Deep validation (bounds, chain order) happens where
    the sequences are known.
    """
    if not isinstance(raw, (list, tuple)):
        raise ValueError(
            f"{where} must be a list of [i, j, k, length] entries, got "
            f"{type(raw).__name__}"
        )
    return tuple(
        _coerce_one(item, f"{where}[{n}]").astuple()
        for n, item in enumerate(raw)
    )


def validate_chain(
    anchors: Sequence[Anchor], dims: tuple[int, int, int]
) -> tuple[Anchor, ...]:
    """Sort ``anchors`` and verify bounds plus chain consistency.

    Returns the sorted chain; raises ``ValueError`` when an anchor runs
    past a sequence end or when two anchors cannot lie on one monotone
    path (each anchor's end must be ≤ the next anchor's start in every
    coordinate — overlapping or crossing anchors admit no alignment).
    """
    n1, n2, n3 = dims
    chain = tuple(sorted(anchors))
    for a in chain:
        if a.i + a.length > n1 or a.j + a.length > n2 or a.k + a.length > n3:
            raise ValueError(
                f"constraint {a.astuple()} runs past the sequence ends "
                f"{dims}"
            )
    for prev, nxt in zip(chain, chain[1:]):
        pe, ns = prev.end, nxt.start
        if any(e > s for e, s in zip(pe, ns)):
            raise ValueError(
                f"constraints {prev.astuple()} and {nxt.astuple()} are "
                f"inconsistent: no monotone alignment path passes through "
                f"both (end {pe} exceeds start {ns})"
            )
    return chain


def normalize_constraints(
    constraints: Iterable[Any] | None, dims: tuple[int, int, int]
) -> tuple[tuple[int, int, int, int], ...]:
    """One-stop normalisation for API boundaries.

    Coerces, sorts and fully validates ``constraints`` against the
    sequence lengths ``dims``; returns the canonical plain-tuple chain
    (hashable, JSON-friendly, and the exact form
    :func:`repro.cache.request_key` digests). ``None`` and empty input
    normalise to ``()``.
    """
    if not constraints:
        return ()
    chain = validate_chain(as_anchors(constraints), dims)
    return tuple(a.astuple() for a in chain)
