"""Chain solver: constrained / anchored alignment over existing engines.

:func:`align3_chain` is the engine behind ``align3(constraints=...)`` and
``align3(method="anchored")``. It decomposes the cube along a validated
anchor chain (:mod:`repro.anchor.chain`), solves every free sub-cube with
whichever exact engine :func:`repro.core.api.select_method` picks for
*that sub-cube* (a near-identical 200-residue gap segment gets ``banded``
while a diverged one gets ``wavefront``), splices the forced anchor
columns between the sub-alignments, and scores the stitched rows with
``scheme.sp_score`` — the same closing idiom as the Hirschberg engine.

Correctness: every alignment that respects the anchors factors uniquely
into per-segment alignments plus the fixed anchor columns, and the SP
objective is column-additive under the linear gap model, so summing
per-segment optima is optimal subject to the constraints (Chin et al.).
With an empty chain there is exactly one segment — the full cube — and
the result is bit-identical to the unanchored engines.

Memory: sub-cubes are solved *sequentially* sharing one grow-only
:class:`~repro.core.workspace.PlaneWorkspace`, so the peak footprint
follows the largest sub-cube, not the full cube — this is what opens
the n >> 10^3 regime (see ``degrade.estimate_bytes(..., anchors=...)``).
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Sequence

from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.resilience import degrade as _degrade
from repro.resilience.errors import DegradationWarning, DegradedRun

from .chain import Segment, chain_coverage, decompose, max_subcube_dims
from .discover import discover_anchors
from .model import Anchor, as_anchors, validate_chain

__all__ = ["align3_chain"]

#: Engines a sub-cube may be solved with (everything exact/linear-gap).
CHAIN_ENGINES = (
    "auto",
    "dp3d",
    "wavefront",
    "hirschberg",
    "pruned",
    "banded",
    "shared",
    "threads",
)


def _solve_segment(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    engine: str,
    *,
    auto_policy: str,
    cells_per_s_hint: float | None,
    workers: int,
    workspace,
    budget: int,
    allow_degrade: bool,
) -> tuple[Alignment3, str]:
    """Solve one free sub-cube; returns ``(alignment, engine_used)``."""
    from repro.core.api import select_method

    if engine == "auto":
        engine, _sel = select_method(
            sa, sb, sc, scheme, policy=auto_policy,
            cells_per_s=cells_per_s_hint,
        )
    dims = (len(sa), len(sb), len(sc))
    if engine in _degrade.LADDER:
        plan = _degrade.plan_method(engine, dims, budget=budget)
        if plan.degraded:
            if not allow_degrade:
                raise DegradedRun(plan.describe(), plan)
            warnings.warn(DegradationWarning(plan.describe()), stacklevel=3)
            _obs.record_degrade(
                plan.requested, plan.method, plan.estimate, plan.budget
            )
            engine = plan.method

    if engine == "dp3d":
        from repro.core.dp3d import align3_dp3d

        return align3_dp3d(sa, sb, sc, scheme), engine
    if engine == "wavefront":
        from repro.core.wavefront import align3_wavefront

        return align3_wavefront(sa, sb, sc, scheme, workspace=workspace), engine
    if engine == "hirschberg":
        from repro.core.hirschberg import align3_hirschberg

        return (
            align3_hirschberg(sa, sb, sc, scheme, workspace=workspace),
            engine,
        )
    if engine == "pruned":
        from repro.core.bounds import carrillo_lipman_tube
        from repro.core.wavefront import align3_wavefront

        tube, stats = carrillo_lipman_tube(sa, sb, sc, scheme)
        aln = align3_wavefront(
            sa, sb, sc, scheme, workspace=workspace, tube=tube
        )
        _obs.record_pruning(
            "pruned",
            kept_fraction=stats.kept_fraction,
            lower_bound=stats.lower_bound,
            upper_bound=stats.upper_bound_at_origin,
        )
        return aln, engine
    if engine == "banded":
        from repro.core.band import align3_banded

        return align3_banded(sa, sb, sc, scheme), engine
    if engine == "shared":
        from repro.parallel.shared import align3_shared

        return align3_shared(sa, sb, sc, scheme, workers=workers), engine
    if engine == "threads":
        from repro.parallel.threads import align3_threads

        return align3_threads(sa, sb, sc, scheme, workers=workers), engine
    raise ValueError(
        f"unknown chain engine {engine!r}; available: {CHAIN_ENGINES}"
    )


def align3_chain(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    anchors: Sequence[Any] | None = None,
    *,
    method: str = "auto",
    auto_policy: str = "similarity",
    cells_per_s_hint: float | None = None,
    workers: int = 2,
    allow_degrade: bool = True,
) -> Alignment3:
    """Optimal three-way alignment through an anchor chain.

    Parameters
    ----------
    anchors:
        The constraint chain (tuples/dicts/:class:`Anchor`). ``None``
        switches on *anchored* mode: the chain is discovered
        automatically (:func:`repro.anchor.discover.discover_anchors`)
        and an empty discovery result falls back to the unanchored
        engine — still exact. Pass an explicit (possibly empty) chain
        for *constrained* mode.
    method:
        Per-sub-cube engine, or ``"auto"`` (default) to let
        :func:`~repro.core.api.select_method` pick one per segment.
    cells_per_s_hint:
        Observed throughput forwarded to ``select_method`` (see the
        admission-informed selection notes there).

    The result's ``meta["anchor"]`` records the mode, anchor/segment
    counts, chain coverage, the per-segment engine histogram and — in
    anchored mode — the discovery report.
    """
    if scheme.is_affine:
        raise ValueError(
            "constrained/anchored alignment implements the linear gap "
            "model; affine schemes are not supported"
        )
    if method in ("anchored", None):
        method = "auto"
    if method not in CHAIN_ENGINES:
        raise ValueError(
            f"unknown chain engine {method!r}; available: {CHAIN_ENGINES}"
        )
    dims = (len(sa), len(sb), len(sc))
    anchor_meta: dict[str, Any] = {}
    if anchors is None:
        anchor_meta["mode"] = "anchored"
        chain, info = discover_anchors(sa, sb, sc)
        anchor_meta["discovery"] = info
    else:
        anchor_meta["mode"] = "constrained"
        chain = validate_chain(as_anchors(anchors), dims)

    t0 = time.perf_counter()
    engines: dict[str, int] = {}
    budget = _degrade.memory_budget()
    sub_dims = max_subcube_dims(chain, dims)
    anchor_meta.update(
        anchors=len(chain),
        anchored_columns=sum(a.length for a in chain),
        coverage=round(chain_coverage(chain, dims), 4),
        max_subcube_cells=(sub_dims[0] + 1)
        * (sub_dims[1] + 1)
        * (sub_dims[2] + 1),
    )

    with _trace.span(
        "align3_chain", mode=anchor_meta["mode"], anchors=len(chain)
    ):
        if not chain and anchors is None:
            # Anchored mode found nothing trustworthy: run the whole
            # problem through one unanchored exact engine (bit-identical
            # to calling align3 without anchoring).
            aln, engine = _solve_segment(
                sa, sb, sc, scheme, method,
                auto_policy=auto_policy,
                cells_per_s_hint=cells_per_s_hint,
                workers=workers, workspace=None, budget=budget,
                allow_degrade=allow_degrade,
            )
            anchor_meta["fallback"] = engine
            engines[engine] = 1
            aln = Alignment3(rows=aln.rows, score=aln.score, meta=dict(aln.meta))
        else:
            from repro.core.workspace import PlaneWorkspace

            workspace = PlaneWorkspace(sub_dims)
            rows_a: list[str] = []
            rows_b: list[str] = []
            rows_c: list[str] = []
            segments_solved = 0
            for part in decompose(chain, dims):
                if isinstance(part, Anchor):
                    rows_a.append(sa[part.i : part.i + part.length])
                    rows_b.append(sb[part.j : part.j + part.length])
                    rows_c.append(sc[part.k : part.k + part.length])
                    continue
                seg: Segment = part
                if seg.empty:
                    continue
                (i0, j0, k0), (i1, j1, k1) = seg.start, seg.end
                sub, engine = _solve_segment(
                    sa[i0:i1], sb[j0:j1], sc[k0:k1], scheme, method,
                    auto_policy=auto_policy,
                    cells_per_s_hint=cells_per_s_hint,
                    workers=workers, workspace=workspace, budget=budget,
                    allow_degrade=allow_degrade,
                )
                engines[engine] = engines.get(engine, 0) + 1
                segments_solved += 1
                rows_a.append(sub.rows[0])
                rows_b.append(sub.rows[1])
                rows_c.append(sub.rows[2])
            rows = ("".join(rows_a), "".join(rows_b), "".join(rows_c))
            score = scheme.sp_score(rows)
            anchor_meta["segments"] = segments_solved
            aln = Alignment3(rows=rows, score=score, meta={})

    anchor_meta["engines"] = dict(sorted(engines.items()))
    aln.meta["engine"] = "chain"
    aln.meta["anchor"] = anchor_meta
    aln.meta["wall_time_s"] = time.perf_counter() - t0
    _obs.record_anchor(
        anchor_meta["mode"],
        anchors=len(chain),
        coverage=anchor_meta["coverage"],
        segments=anchor_meta.get("segments", 0),
        engines=engines,
    )
    return aln
