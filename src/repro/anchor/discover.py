"""Automatic anchor discovery: shared-k-mer triple matches + chaining.

The anchored divide-and-conquer path needs anchors nobody supplied. We
find them the way pairwise anchor aligners (MUMmer-style) do, lifted to
three sequences:

1. index k-mers that occur **exactly once** in each sequence (unique
   seeds cannot be placed ambiguously, so a triple hit is an exact
   three-way match that some optimal-ish alignment plausibly uses);
2. intersect the three indexes → candidate cells ``(i, j, k)``;
3. merge candidates on the same main diagonal offset into maximal runs
   (consecutive unique k-mers overlap, giving runs of length
   ``k + run - 1``);
4. chain: pick the maximum-total-length subset that is component-wise
   increasing (the 3-D LIS under anchor weight), which is exactly the
   consistency predicate :func:`repro.anchor.model.validate_chain`
   enforces;
5. quality gate: if the chain covers too little of the sequences the
   inputs are not anchor-friendly (low identity, repeats) and the
   caller must fall back to the unanchored engines.

Anchors constrain the optimum, so discovery is deliberately
conservative: unique seeds only, exact matches only, and a coverage
threshold before anchoring is trusted at all. Everything is
deterministic — same sequences, same anchors — which keeps anchored
results content-addressable in the cache.
"""

from __future__ import annotations

from typing import Any

from .chain import chain_coverage
from .model import Anchor, validate_chain

__all__ = [
    "DEFAULT_MIN_COVERAGE",
    "discover_anchors",
    "unique_kmer_positions",
]

# Below this fraction of anchored columns the chain is judged too weak
# to trust and discovery reports no anchors (solver falls back).
DEFAULT_MIN_COVERAGE = 0.25

# Chain DP is O(m^2) in candidate runs; subsample evenly above this.
_MAX_CHAIN_CANDIDATES = 512

# Trimmed from each end of every chained run: anchoring a full seed run
# right up to its endpoints can pin a column an optimal alignment would
# rather shift into the neighbouring free segment; a small margin leaves
# the boundary decision to the sub-cube DP.
_TRIM = 2


def unique_kmer_positions(seq: str, k: int) -> dict[str, int]:
    """Map each k-mer occurring exactly once in ``seq`` to its offset."""
    pos: dict[str, int] = {}
    dup: set[str] = set()
    for i in range(len(seq) - k + 1):
        mer = seq[i : i + k]
        if mer in dup:
            continue
        if mer in pos:
            del pos[mer]
            dup.add(mer)
        else:
            pos[mer] = i
    return pos


def _pick_k(n_min: int) -> int | None:
    if n_min >= 48:
        return 12
    if n_min >= 20:
        return 8
    return None


def _merge_runs(cells: list[tuple[int, int, int]], k: int) -> list[Anchor]:
    """Merge diagonal-consecutive seed cells into maximal match runs."""
    runs: list[Anchor] = []
    start = None
    prev = None
    for cell in sorted(cells):
        if (
            prev is not None
            and cell == (prev[0] + 1, prev[1] + 1, prev[2] + 1)
        ):
            prev = cell
            continue
        if start is not None:
            runs.append(Anchor(*start, prev[0] - start[0] + k))
        start = cell
        prev = cell
    if start is not None:
        runs.append(Anchor(*start, prev[0] - start[0] + k))
    return runs


def _chain_max_weight(candidates: list[Anchor]) -> list[Anchor]:
    """Maximum-total-length consistent sub-chain (3-D weighted LIS).

    O(m^2) over candidates sorted by start; ``m`` is capped by the
    caller. Ties break toward the earliest predecessor, which keeps the
    result deterministic under a stable sort.
    """
    cand = sorted(candidates)
    m = len(cand)
    best = [a.length for a in cand]
    back = [-1] * m
    for t in range(m):
        ct = cand[t]
        for s in range(t):
            cs = cand[s]
            if (
                cs.end[0] <= ct.i
                and cs.end[1] <= ct.j
                and cs.end[2] <= ct.k
                and best[s] + ct.length > best[t]
            ):
                best[t] = best[s] + ct.length
                back[t] = s
    if not cand:
        return []
    tail = max(range(m), key=lambda t: (best[t], -t))
    chain: list[Anchor] = []
    while tail != -1:
        chain.append(cand[tail])
        tail = back[tail]
    chain.reverse()
    return chain


def _trim(anchors: list[Anchor]) -> list[Anchor]:
    out = []
    for a in anchors:
        if a.length > 2 * _TRIM + 1:
            out.append(Anchor(a.i + _TRIM, a.j + _TRIM, a.k + _TRIM, a.length - 2 * _TRIM))
        elif a.length >= 2:
            out.append(a)
    return out


def discover_anchors(
    sa: str,
    sb: str,
    sc: str,
    *,
    min_coverage: float = DEFAULT_MIN_COVERAGE,
) -> tuple[tuple[Anchor, ...], dict[str, Any]]:
    """Find a consistent anchor chain for three sequences.

    Returns ``(anchors, info)``. ``anchors`` is empty when the inputs
    are too short, share no unique seeds, or the best chain covers less
    than ``min_coverage`` of the longest sequence — the signal that the
    caller should run the unanchored path. ``info`` reports the k used,
    candidate/chained counts, coverage and the reason when empty (it
    lands in ``meta["anchor"]["discovery"]``).
    """
    sa, sb, sc = sa.upper(), sb.upper(), sc.upper()
    dims = (len(sa), len(sb), len(sc))
    n_min = min(dims)
    info: dict[str, Any] = {"min_coverage": min_coverage}
    k = _pick_k(n_min)
    if k is None:
        info.update(k=None, candidates=0, chained=0, coverage=0.0,
                    reason="sequences too short to seed")
        return (), info
    info["k"] = k

    pa = unique_kmer_positions(sa, k)
    pb = unique_kmer_positions(sb, k)
    pc = unique_kmer_positions(sc, k)
    shared = set(pa) & set(pb) & set(pc)
    cells = [(pa[m], pb[m], pc[m]) for m in shared]
    runs = _trim(_merge_runs(cells, k))
    info["candidates"] = len(runs)
    if not runs:
        info.update(chained=0, coverage=0.0, reason="no shared unique k-mers")
        return (), info

    if len(runs) > _MAX_CHAIN_CANDIDATES:
        runs.sort(key=lambda a: -a.length)
        runs = runs[:_MAX_CHAIN_CANDIDATES]
        info["subsampled"] = True
    chain = _chain_max_weight(runs)
    chain = list(validate_chain(chain, dims))
    info["chained"] = len(chain)
    coverage = chain_coverage(chain, dims)
    info["coverage"] = round(coverage, 4)
    if coverage < min_coverage:
        info["reason"] = (
            f"chain coverage {coverage:.3f} below threshold {min_coverage}"
        )
        return (), info
    return tuple(chain), info
