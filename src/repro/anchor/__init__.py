"""Constrained and anchored three-way alignment (cube-chain decomposition).

Two modes on top of the exact engines:

- **constrained**: the caller supplies anchor triples ``(i, j, k,
  length)`` the alignment must pass through; the result is optimal
  subject to those constraints (Chin et al., PAPERS.md).
- **anchored**: anchors are discovered automatically from shared unique
  k-mers and LIS-chained; low-identity inputs fall back to the
  unanchored path, so the mode is always exact-or-anchored, never
  heuristic-without-saying-so.

Both factor the DP cube into a chain of sub-cubes solved sequentially by
the existing engines — see :mod:`repro.anchor.solve`. Entry points:
``align3(constraints=...)`` and ``align3(method="anchored")``.
"""

from .chain import Segment, chain_cells, chain_coverage, decompose, max_subcube_dims
from .discover import DEFAULT_MIN_COVERAGE, discover_anchors
from .model import (
    Anchor,
    as_anchors,
    constraints_from_jsonable,
    normalize_constraints,
    validate_chain,
)
from .solve import align3_chain

__all__ = [
    "Anchor",
    "DEFAULT_MIN_COVERAGE",
    "Segment",
    "align3_chain",
    "as_anchors",
    "chain_cells",
    "chain_coverage",
    "constraints_from_jsonable",
    "decompose",
    "discover_anchors",
    "max_subcube_dims",
    "normalize_constraints",
    "validate_chain",
]
