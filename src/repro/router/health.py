"""Per-replica health for the router's failover decisions.

Every replica carries one :class:`ReplicaHealth` driven from two
sources: the router's periodic ``/healthz`` poll and the outcome of
every forwarded exchange. Failures are *typed* (the same philosophy as
:class:`repro.resilience.errors.WorkerFailure`): a refused connection
means the process is gone and ejects immediately, while a timeout or a
5xx might be one bad request, so those must accumulate to
``soft_threshold`` consecutively before ejection.

State machine::

    HEALTHY --hard failure / soft x threshold--> EJECTED
    EJECTED --cooldown elapsed--> HALF_OPEN
    HALF_OPEN --probe success--> HEALTHY (cooldown resets)
    HALF_OPEN --probe failure--> EJECTED (cooldown doubles, capped)

While EJECTED the replica receives no traffic at all; while HALF_OPEN
it receives only the poll loop's ``/healthz`` probe — data-path
requests keep flowing to proven-healthy replicas until the probe
passes, so a flapping process cannot eat real requests while it
stabilises. Two conditions route traffic away *without* being
failures: a 429 sets a ``Retry-After`` holdoff (the replica is healthy
but full), and a draining replica (503 + ``"status": "draining"``) is
deliberately shutting down — counting either toward ejection would
punish correct behaviour.
"""

from __future__ import annotations

import time
from typing import Callable

#: Failure kinds. ``connect`` is *hard* — the socket was refused or
#: reset, the process is gone; everything else is soft evidence.
FAILURE_KINDS = ("connect", "timeout", "http_5xx", "bad_response")
HARD_KINDS = frozenset({"connect"})

STATE_HEALTHY = "healthy"
STATE_EJECTED = "ejected"
STATE_HALF_OPEN = "half_open"


class ReplicaHealth:
    """Health state for one backend replica."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        *,
        soft_threshold: int = 3,
        eject_cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if soft_threshold < 1:
            raise ValueError(
                f"soft_threshold must be >= 1, got {soft_threshold}"
            )
        if eject_cooldown_s <= 0 or max_cooldown_s < eject_cooldown_s:
            raise ValueError(
                "need 0 < eject_cooldown_s <= max_cooldown_s, got "
                f"{eject_cooldown_s}/{max_cooldown_s}"
            )
        self.name = name
        self.host = host
        self.port = int(port)
        self.soft_threshold = int(soft_threshold)
        self.base_cooldown_s = float(eject_cooldown_s)
        self.max_cooldown_s = float(max_cooldown_s)
        self._clock = clock

        self.state = STATE_HEALTHY
        self.draining = False
        self.soft_failures = 0
        self.ejections = 0
        self.last_failure: str | None = None
        self.cooldown_s = self.base_cooldown_s
        self._reopen_at = 0.0
        self._holdoff_until = 0.0

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------

    def note_success(self) -> None:
        """A successful exchange (or probe): fully rehabilitated."""
        self.state = STATE_HEALTHY
        self.draining = False
        self.soft_failures = 0
        self.last_failure = None
        self.cooldown_s = self.base_cooldown_s

    def note_failure(self, kind: str) -> None:
        """One failed exchange of ``kind`` (see :data:`FAILURE_KINDS`)."""
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        self.last_failure = kind
        if self.state == STATE_HALF_OPEN:
            self._eject(escalate=True)
            return
        if kind in HARD_KINDS:
            self._eject(escalate=False)
            return
        self.soft_failures += 1
        if self.soft_failures >= self.soft_threshold:
            self._eject(escalate=False)

    def note_draining(self, draining: bool) -> None:
        """The replica reported drain state on ``/healthz`` (or a 503
        draining response). Not a failure — it is shutting down on
        purpose and will still finish in-flight work."""
        self.draining = draining

    def note_backpressure(self, retry_after_s: float | None) -> None:
        """The replica shed with 429: healthy but full. Hold new
        traffic off it for the advertised window."""
        window = retry_after_s if retry_after_s and retry_after_s > 0 else 0.5
        self._holdoff_until = max(
            self._holdoff_until, self._clock() + window
        )

    def _eject(self, *, escalate: bool) -> None:
        if escalate:
            self.cooldown_s = min(self.cooldown_s * 2, self.max_cooldown_s)
        self.state = STATE_EJECTED
        self.ejections += 1
        self.soft_failures = 0
        self._reopen_at = self._clock() + self.cooldown_s

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance EJECTED → HALF_OPEN once the cooldown elapses.
        Called by the poll loop before deciding whether to probe."""
        if self.state == STATE_EJECTED and self._clock() >= self._reopen_at:
            self.state = STATE_HALF_OPEN

    def probe_due(self) -> bool:
        """True when the poll loop should hit ``/healthz`` here: always
        for live replicas, and for ejected ones once HALF_OPEN."""
        self.tick()
        return self.state != STATE_EJECTED

    def routable(self) -> bool:
        """True when data-path requests may be sent here: proven
        healthy, not draining, not inside a backpressure holdoff."""
        self.tick()
        return (
            self.state == STATE_HEALTHY
            and not self.draining
            and self._clock() >= self._holdoff_until
        )

    def snapshot(self) -> dict:
        self.tick()
        return {
            "name": self.name,
            "address": f"{self.host}:{self.port}",
            "state": self.state,
            "draining": self.draining,
            "routable": self.routable(),
            "soft_failures": self.soft_failures,
            "ejections": self.ejections,
            "last_failure": self.last_failure,
            "cooldown_s": self.cooldown_s,
        }
