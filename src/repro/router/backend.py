"""Async replica client: one typed exchange per call.

The router opens a fresh connection per forwarded exchange. At this
tier's scale (a handful of localhost replicas) a connect is tens of
microseconds against milliseconds-to-seconds of O(n^3) compute, and
per-exchange connections keep failure attribution exact: a refused
connect can only mean *this* replica is gone, never a stale pooled
socket — which is precisely the signal
:class:`repro.router.health.ReplicaHealth` treats as hard evidence.

Every transport problem becomes a :class:`ReplicaError` whose ``kind``
matches the health taxonomy (``connect`` / ``timeout`` /
``bad_response``); HTTP-level statuses (including 5xx) are returned
normally for the routing layer to interpret, since a 429 or a
draining 503 is information, not a transport failure.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.serve import protocol


class ReplicaError(Exception):
    """A forwarded exchange failed at the transport level."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


async def exchange(
    host: str,
    port: int,
    method: str,
    target: str,
    payload: Any | None = None,
    *,
    connect_timeout_s: float = 1.0,
    response_timeout_s: float = 60.0,
) -> protocol.HttpResponse:
    """Send one request to ``host:port`` and read the response.

    Raises :class:`ReplicaError` (kinds ``connect`` / ``timeout`` /
    ``bad_response``) on transport problems; any parsed HTTP response
    — whatever its status — is returned to the caller.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                host, port, limit=protocol.MAX_HEADER_BYTES
            ),
            timeout=connect_timeout_s,
        )
    except asyncio.TimeoutError:
        raise ReplicaError(
            "connect", f"connect to {host}:{port} timed out"
        ) from None
    except OSError as exc:
        raise ReplicaError(
            "connect", f"connect to {host}:{port} failed: {exc}"
        ) from None

    try:
        writer.write(
            protocol.render_request(
                method, target, payload, host=f"{host}:{port}"
            )
        )
        await writer.drain()
        return await asyncio.wait_for(
            protocol.read_response(reader), timeout=response_timeout_s
        )
    except asyncio.TimeoutError:
        raise ReplicaError(
            "timeout",
            f"{method} {target} on {host}:{port} exceeded "
            f"{response_timeout_s:g}s",
        ) from None
    except protocol.BadResponse as exc:
        raise ReplicaError(
            "bad_response", f"{host}:{port} sent garbage: {exc}"
        ) from None
    except (ConnectionError, OSError) as exc:
        # The connection opened, then dropped mid-exchange: transport
        # evidence, but not proof the process is gone (soft kind).
        raise ReplicaError(
            "bad_response",
            f"{host}:{port} dropped the connection: {exc}",
        ) from None
    finally:
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()
