"""Key derivation and scatter planning for the router.

Affinity only works if the router and the replicas compute the *same*
key for a request, so :func:`routing_keys` goes through the exact
pipeline the batch scheduler uses — ``BatchScheduler._normalise`` then
:func:`repro.core.api.resolve_scheme` then
:func:`repro.cache.request_key` — rather than a lookalike hash. A
drift here would not be a correctness bug (results are
content-addressed either way) but would silently destroy cache
locality, which is the router's whole point.

:func:`plan_scatter` splits a multi-request ``POST /v1/align`` body by
ring owner: each group keeps the original item dicts (so caller ids
and per-item options survive verbatim) plus the positions they came
from, letting the merge step reassemble responses in request order no
matter which replica answered which slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.batch.scheduler import AlignmentRequest
from repro.cache import request_key
from repro.core.api import resolve_scheme
from repro.router.ring import HashRing
from repro.serve import protocol
from repro.serve.app import parse_align_items


def routing_keys(requests: list[AlignmentRequest]) -> list[str]:
    """The content-addressed cache key of each (normalised) request —
    bit-identical to what the replica's scheduler will derive."""
    keys = []
    for req in requests:
        scheme = resolve_scheme(req.seqs, req.scheme)
        keys.append(
            request_key(
                req.seqs, scheme, req.mode, req.method,
                constraints=req.constraints,
            )
        )
    return keys


def parse_items(obj: Any) -> list[dict]:
    """The raw item dicts of one ``POST /v1/align`` body, in order
    (single-object bodies become a one-item list). Framing errors raise
    :class:`protocol.BadRequest`; per-item validation is left to
    ``parse_align_payload``, which the router runs first."""
    if not isinstance(obj, dict):
        raise protocol.BadRequest(
            f"body must be a JSON object, got {type(obj).__name__}"
        )
    if "requests" in obj:
        items = obj["requests"]
        if not isinstance(items, list) or not items:
            raise protocol.BadRequest("'requests' must be a non-empty list")
        return items
    return [obj]


@dataclass
class ScatterGroup:
    """One replica's slice of a scattered body."""

    owner: str
    key: str  # routing key of the group's first request
    indices: list[int] = field(default_factory=list)
    items: list[dict] = field(default_factory=list)

    def body(self, *, deadline_s: float) -> dict:
        return {"requests": self.items, "deadline_s": deadline_s}


def plan_scatter(
    ring: HashRing,
    items: list[dict],
    keys: list[str],
    *,
    routable: set[str],
) -> list[ScatterGroup]:
    """Group ``items`` by ring owner, in first-touch order.

    Owners are chosen from each key's preference list restricted to
    ``routable`` members; when none of a key's preferences are
    routable the *nominal* owner is used (the forward path will then
    fail fast and report 503). An empty ring raises ``LookupError``.
    """
    if len(items) != len(keys):
        raise ValueError(
            f"{len(items)} items vs {len(keys)} keys"
        )
    groups: dict[str, ScatterGroup] = {}
    order: list[str] = []
    for i, (item, key) in enumerate(zip(items, keys)):
        owner = None
        for member in ring.preference(key):
            if member in routable:
                owner = member
                break
        if owner is None:
            owner = ring.owner(key)
        group = groups.get(owner)
        if group is None:
            group = groups[owner] = ScatterGroup(owner=owner, key=key)
            order.append(owner)
        group.indices.append(i)
        group.items.append(item)
    return [groups[name] for name in order]


def normalise_items(items: list[dict]) -> list[AlignmentRequest]:
    """Validate and normalise raw item dicts exactly as the serve tier
    does (same normalisation → same keys, same error text)."""
    return parse_align_items(items)
