"""Sharded front tier for the alignment service (``repro router``).

One :class:`~repro.router.app.RouterServer` sits in front of N
``repro serve`` replicas and makes them look like a single instance
with a bigger cache and no single point of compute failure:

:mod:`repro.router.ring`
    Consistent hashing of content-addressed cache keys
    (:func:`repro.cache.request_key`) over the replica set, so a hot
    key always lands on the replica whose memory LRU already holds it
    and a membership change remaps only ~1/N of the key space.
:mod:`repro.router.health`
    Per-replica health: ``/healthz`` polling plus response outcomes
    drive a HEALTHY → EJECTED → HALF_OPEN state machine with a typed
    failure taxonomy, escalating eject cooldowns, and 429/Retry-After
    backpressure holdoffs.
:mod:`repro.router.backend`
    The async per-exchange replica client with typed transport errors.
:mod:`repro.router.routing`
    Key derivation (bit-identical to the scheduler's own) and the
    scatter plan that splits a multi-request body by ring owner.
:mod:`repro.router.app`
    The server: scatter/merge forwarding, bounded failover along each
    key's preference list, job-id namespacing for async jobs, and the
    drain choreography for zero-failed-request rolling restarts.

See the topology section of ``docs/serving.md`` and the failover notes
in ``docs/robustness.md``.
"""

from repro.router.app import RouterConfig, RouterServer, run_router
from repro.router.health import ReplicaHealth
from repro.router.ring import HashRing

__all__ = [
    "HashRing",
    "ReplicaHealth",
    "RouterConfig",
    "RouterServer",
    "run_router",
]
