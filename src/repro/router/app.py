"""The router server: scatter, forward, fail over, merge.

One :class:`RouterServer` owns a static replica set (the ring never
changes at runtime — failover walks each key's preference list instead
of mutating membership, so cache affinity survives transient
ejections), a background ``/healthz`` poll task, and the data path:

* ``POST /v1/align`` (sync) — the body is validated with the *same*
  code the replicas use, each request's cache key is derived, and the
  batch is scattered into per-owner groups forwarded concurrently.
  Each group retries along its key's preference list under a bounded
  :class:`~repro.resilience.retry.BackoffPolicy` budget; alignment
  results are content-addressed, so re-sending a slice to another
  replica can only produce the identical payload (the property the
  chaos gate asserts). Merged results come back in request order.
* ``POST /v1/align`` (``"async": true``) — async jobs are not
  scattered: the whole body goes to the first key's owner and the
  returned job id is namespaced ``<replica>.<jid>`` so polls route
  back to the only replica that knows the job.
* ``GET /v1/jobs/<replica>.<jid>`` — forwarded to that replica.
* ``GET /healthz`` / ``GET /metrics`` — fleet state: per-replica
  health snapshots, routable count, forward/retry/failover counters.

Replica responses are interpreted, not just proxied: a 429 marks
backpressure (holdoff, try a sibling, else pass the 429 through), a
draining 503 reroutes without penalty, a worker-failure 503 or other
5xx counts as soft failure evidence, and transport errors carry the
typed kinds :mod:`repro.router.health` expects. When every candidate
is down the client sees 503 ``no_replicas``; when contact was made
but nothing usable came back, the last upstream answer (or a 502) is
passed through.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
from dataclasses import dataclass
from typing import Any

from repro import __version__
from repro.obs import hooks as _obs
from repro.obs import metrics as _metrics
from repro.resilience.retry import BackoffPolicy
from repro.router import backend
from repro.router.health import ReplicaHealth
from repro.router.ring import HashRing
from repro.router.routing import (
    normalise_items,
    parse_items,
    plan_scatter,
    routing_keys,
)
from repro.serve import protocol
from repro.serve.httpd import JsonHttpServer, run_blocking

#: Default router port (one above the serve default).
DEFAULT_ROUTER_PORT = 8674


def parse_replica(spec: str) -> tuple[str, int]:
    """``host:port`` (or ``http://host:port``) → ``(host, port)``."""
    raw = spec.strip()
    if raw.startswith("http://"):
        raw = raw[len("http://"):]
    raw = raw.rstrip("/")
    host, sep, port = raw.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"replica must be host:port, got {spec!r}")
    return host or "127.0.0.1", int(port)


@dataclass(frozen=True)
class RouterConfig:
    """Everything a :class:`RouterServer` needs to run."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_ROUTER_PORT
    #: Backend replicas as ``host:port`` strings, in ring-name order
    #: (``r0``, ``r1``, ...).
    replicas: tuple[str, ...] = ()

    # Health polling and the ejection state machine.
    health_interval_s: float = 0.25
    soft_threshold: int = 3
    eject_cooldown_s: float = 1.0
    max_cooldown_s: float = 30.0

    # Per-exchange transport budgets.
    connect_timeout_s: float = 1.0
    response_timeout_s: float = 75.0

    # Failover retry budget (per scattered group).
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.05
    retry_cap_s: float = 0.5

    #: Consistent-hash virtual nodes per replica.
    vnodes: int = 64

    # Mirrors of the serve-side knobs (same meanings).
    default_deadline_s: float = 30.0
    keepalive_timeout_s: float = 5.0
    drain_timeout_s: float = 30.0
    drain_grace_s: float = 0.0
    max_body_bytes: int = protocol.DEFAULT_MAX_BODY_BYTES

    def validate(self) -> "RouterConfig":
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if not self.replicas:
            raise ValueError("router needs at least one replica")
        for spec in self.replicas:
            parse_replica(spec)  # raises ValueError on malformed specs
        if self.soft_threshold < 1:
            raise ValueError(
                f"soft_threshold must be >= 1, got {self.soft_threshold}"
            )
        if self.retry_attempts < 1:
            raise ValueError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}"
            )
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        for name in (
            "health_interval_s", "eject_cooldown_s", "connect_timeout_s",
            "response_timeout_s", "default_deadline_s",
            "keepalive_timeout_s", "drain_timeout_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if self.max_cooldown_s < self.eject_cooldown_s:
            raise ValueError(
                "max_cooldown_s must be >= eject_cooldown_s, got "
                f"{self.max_cooldown_s} < {self.eject_cooldown_s}"
            )
        if self.retry_base_delay_s < 0 or self.retry_cap_s < 0:
            raise ValueError("retry delays must be >= 0")
        if self.drain_grace_s < 0:
            raise ValueError(
                f"drain_grace_s must be >= 0, got {self.drain_grace_s}"
            )
        return self


@dataclass
class _Counters:
    forwards: int = 0
    retries: int = 0
    failovers: int = 0
    scattered_bodies: int = 0
    merged_results: int = 0
    no_replica_errors: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class RouterServer(JsonHttpServer):
    """Sharding, health-aware front tier over N serve replicas."""

    banner = "routing on"

    def __init__(self, config: RouterConfig):
        self.config = config.validate()
        super().__init__(
            host=self.config.host,
            port=self.config.port,
            max_body_bytes=self.config.max_body_bytes,
            keepalive_timeout_s=self.config.keepalive_timeout_s,
            drain_timeout_s=self.config.drain_timeout_s,
            drain_grace_s=self.config.drain_grace_s,
        )
        self.replicas: dict[str, ReplicaHealth] = {}
        for i, spec in enumerate(self.config.replicas):
            rhost, rport = parse_replica(spec)
            name = f"r{i}"
            self.replicas[name] = ReplicaHealth(
                name, rhost, rport,
                soft_threshold=self.config.soft_threshold,
                eject_cooldown_s=self.config.eject_cooldown_s,
                max_cooldown_s=self.config.max_cooldown_s,
            )
        self.ring = HashRing(self.replicas, vnodes=self.config.vnodes)
        self.backoff = BackoffPolicy(
            attempts=self.config.retry_attempts,
            base_delay_s=self.config.retry_base_delay_s,
            cap_s=self.config.retry_cap_s,
        )
        self.counters = _Counters()
        self._poll_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def _on_start(self) -> None:
        if not _metrics.enabled:
            _metrics.enable()
        self._poll_task = asyncio.create_task(
            self._poll_loop(), name="repro-router-health"
        )

    async def _on_listener_closed(self) -> None:
        if self._poll_task is not None:
            self._poll_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._poll_task

    def _record_request(
        self, *, route: str, status: int, seconds: float
    ) -> None:
        _obs.record_serve_request(route=route, status=status, seconds=seconds)

    # ------------------------------------------------------------------
    # Health polling
    # ------------------------------------------------------------------

    async def _poll_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe(h) for h in self.replicas.values()
                  if h.probe_due())
            )
            await asyncio.sleep(self.config.health_interval_s)

    async def _probe(self, health: ReplicaHealth) -> None:
        try:
            resp = await backend.exchange(
                health.host, health.port, "GET", "/healthz",
                connect_timeout_s=self.config.connect_timeout_s,
                response_timeout_s=self.config.connect_timeout_s,
            )
        except backend.ReplicaError as exc:
            health.note_failure(exc.kind)
            return
        if resp.status == 200:
            health.note_success()
            return
        payload = self._safe_json(resp)
        if resp.status == 503 and self._is_draining(payload):
            # A draining replica is healthy — it answers /healthz and
            # finishes in-flight work — it just wants no new traffic.
            health.note_success()
            health.note_draining(True)
            return
        health.note_failure("http_5xx" if resp.status >= 500
                            else "bad_response")

    @staticmethod
    def _safe_json(resp: protocol.HttpResponse) -> Any:
        try:
            return resp.json()
        except protocol.BadResponse:
            return None

    @staticmethod
    def _is_draining(payload: Any) -> bool:
        if not isinstance(payload, dict):
            return False
        if payload.get("status") == "draining":
            return True
        err = payload.get("error")
        return isinstance(err, dict) and err.get("type") == "draining"

    def _routable(self) -> set[str]:
        return {n for n, h in self.replicas.items() if h.routable()}

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return 200, self._metrics_payload(), []
        if path == "/v1/align":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._align(request)
        if path.startswith("/v1/jobs/"):
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return await self._job_status(path[len("/v1/jobs/"):])
        return 404, protocol.error_payload(
            "not_found", f"no route for {request.method} {path}"
        ), []

    def _healthz(self) -> tuple[int, Any, list[tuple[str, str]]]:
        routable = self._routable()
        if self.draining:
            status, state = 503, "draining"
        elif not routable:
            status, state = 503, "no_replicas"
        elif len(routable) < len(self.replicas):
            status, state = 200, "degraded"
        else:
            status, state = 200, "ok"
        return status, {
            "status": state,
            "role": "router",
            "version": __version__,
            "uptime_s": self.uptime_s(),
            "replicas": [h.snapshot() for h in self.replicas.values()],
            "routable": len(routable),
        }, []

    def _metrics_payload(self) -> dict:
        return {
            "role": "router",
            "uptime_s": self.uptime_s(),
            "draining": self.draining,
            "router": self.counters.snapshot(),
            "replicas": [h.snapshot() for h in self.replicas.values()],
            "metrics": _metrics.registry().snapshot(),
        }

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    async def _forward(
        self, key: str, method: str, target: str, payload: Any | None
    ) -> tuple[protocol.HttpResponse, str] | tuple[None, None]:
        """Send one exchange to the best replica for ``key``, failing
        over along the preference list under the backoff budget.

        Returns ``(response, replica_name)`` for any usable response
        (2xx/4xx — the client's business), or the last unusable
        response seen; ``(None, None)`` when no contact succeeded.
        """
        avoid: set[str] = set()
        last: tuple[protocol.HttpResponse, str] | None = None
        budget = max(self.backoff.attempts, len(self.replicas) + 1)
        for attempt in range(budget):
            candidate = None
            for name in self.ring.preference(key):
                if name not in avoid and self.replicas[name].routable():
                    candidate = name
                    break
            if candidate is None:
                break
            health = self.replicas[candidate]
            if attempt > 0:
                self.counters.retries += 1
                await asyncio.sleep(self.backoff.delay_s(attempt - 1))
            self.counters.forwards += 1
            try:
                resp = await backend.exchange(
                    health.host, health.port, method, target, payload,
                    connect_timeout_s=self.config.connect_timeout_s,
                    response_timeout_s=self.config.response_timeout_s,
                )
            except backend.ReplicaError as exc:
                health.note_failure(exc.kind)
                avoid.add(candidate)
                self.counters.failovers += 1
                continue
            if resp.status == 429:
                health.note_backpressure(resp.retry_after_s)
                avoid.add(candidate)
                last = (resp, candidate)
                continue
            if resp.status == 503 and self._is_draining(
                self._safe_json(resp)
            ):
                health.note_draining(True)
                avoid.add(candidate)
                last = (resp, candidate)
                self.counters.failovers += 1
                continue
            if resp.status >= 500 and resp.status != 504:
                # 504 is the *request's* deadline — another replica
                # would blow it just the same, so pass it through.
                health.note_failure("http_5xx")
                avoid.add(candidate)
                last = (resp, candidate)
                self.counters.failovers += 1
                continue
            health.note_success()
            return resp, candidate
        if last is not None:
            return last
        return None, None

    def _upstream_error(
        self, key: str
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        self.counters.no_replica_errors += 1
        if not self._routable():
            return 503, protocol.error_payload(
                "no_replicas", "no healthy replica available",
            ), [("Retry-After", str(self.config.eject_cooldown_s))]
        return 502, protocol.error_payload(
            "bad_gateway",
            f"every candidate replica failed for key {key[:12]}...",
        ), []

    @staticmethod
    def _passthrough(
        resp: protocol.HttpResponse,
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        extra = []
        retry_after = resp.headers.get("retry-after")
        if retry_after is not None:
            extra.append(("Retry-After", retry_after))
        try:
            payload = resp.json()
        except protocol.BadResponse:
            payload = protocol.error_payload(
                "bad_gateway", "replica sent an unparseable body"
            )
        return resp.status, payload, extra

    # ------------------------------------------------------------------
    # POST /v1/align
    # ------------------------------------------------------------------

    async def _align(
        self, request: protocol.HttpRequest
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        if self.draining:
            return 503, protocol.error_payload(
                "draining", "router is draining"
            ), [("Retry-After", "1")]
        obj = request.json()
        items = parse_items(obj)
        requests = normalise_items(items)  # raises BadRequest → 400
        keys = routing_keys(requests)

        want_async = bool(obj.get("async", False)) if isinstance(obj, dict) \
            else False
        deadline_s = obj.get("deadline_s", self.config.default_deadline_s)
        if not isinstance(deadline_s, (int, float)) \
                or isinstance(deadline_s, bool) or not 0 < deadline_s <= 3600:
            raise protocol.BadRequest(
                "'deadline_s' must be a number in (0, 3600]"
            )
        deadline_s = float(deadline_s)

        if want_async:
            return await self._align_async(obj, keys[0])

        groups = plan_scatter(
            self.ring, items, keys, routable=self._routable()
        )
        if len(groups) > 1:
            self.counters.scattered_bodies += 1
        outcomes = await asyncio.gather(
            *(self._forward(
                g.key, "POST", "/v1/align", g.body(deadline_s=deadline_s)
            ) for g in groups)
        )

        merged: list[dict | None] = [None] * len(items)
        for group, (resp, _name) in zip(groups, outcomes):
            if resp is None:
                return self._upstream_error(group.key)
            if resp.status != 200:
                return self._passthrough(resp)
            payload = self._safe_json(resp)
            results = payload.get("results") if isinstance(payload, dict) \
                else None
            if not isinstance(results, list) \
                    or len(results) != len(group.indices):
                return 502, protocol.error_payload(
                    "bad_gateway",
                    f"replica returned {0 if not isinstance(results, list) else len(results)} "
                    f"results for a {len(group.indices)}-request slice",
                ), []
            for r in results:
                local = r.get("index")
                if not isinstance(local, int) \
                        or not 0 <= local < len(group.indices):
                    return 502, protocol.error_payload(
                        "bad_gateway", "replica returned a bad result index"
                    ), []
                r["index"] = group.indices[local]
                merged[r["index"]] = r
        if any(r is None for r in merged):
            return 502, protocol.error_payload(
                "bad_gateway", "replica slice left gaps in the result set"
            ), []
        self.counters.merged_results += len(merged)
        return 200, {"results": merged, "count": len(merged)}, []

    async def _align_async(
        self, obj: dict, key: str
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        resp, name = await self._forward(key, "POST", "/v1/align", obj)
        if resp is None:
            return self._upstream_error(key)
        if resp.status != 202:
            return self._passthrough(resp)
        payload = self._safe_json(resp)
        if not isinstance(payload, dict) or "job" not in payload:
            return 502, protocol.error_payload(
                "bad_gateway", "replica 202 carried no job id"
            ), []
        jid = f"{name}.{payload['job']}"
        payload["job"] = jid
        payload["poll"] = f"/v1/jobs/{jid}"
        payload["replica"] = name
        return 202, payload, []

    # ------------------------------------------------------------------
    # GET /v1/jobs/<replica>.<jid>
    # ------------------------------------------------------------------

    async def _job_status(
        self, prefixed: str
    ) -> tuple[int, Any, list[tuple[str, str]]]:
        name, sep, jid = prefixed.partition(".")
        if not sep or name not in self.replicas:
            return 404, protocol.error_payload(
                "not_found",
                f"job ids issued by the router look like r0.job-1; "
                f"got {prefixed!r}",
            ), []
        health = self.replicas[name]
        # No failover: the job table lives only on the issuing replica.
        try:
            resp = await backend.exchange(
                health.host, health.port, "GET", f"/v1/jobs/{jid}",
                connect_timeout_s=self.config.connect_timeout_s,
                response_timeout_s=self.config.response_timeout_s,
            )
        except backend.ReplicaError as exc:
            health.note_failure(exc.kind)
            return 502, protocol.error_payload(
                "bad_gateway",
                f"replica {name} unreachable ({exc.kind}); the job is "
                "lost if the replica died — resubmit",
            ), []
        health.note_success()
        payload = self._safe_json(resp)
        if isinstance(payload, dict) and "job" in payload:
            payload["job"] = f"{name}.{payload['job']}"
        return resp.status, payload, []


def run_router(config: RouterConfig) -> int:
    """Blocking entry point for ``repro router``; returns the exit code."""
    try:
        return run_blocking(lambda: RouterServer(config))
    except OSError as exc:
        print(f"# fatal: {exc}", file=sys.stderr, flush=True)
        return 1
