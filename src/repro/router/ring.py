"""Consistent hashing of cache keys over the replica set.

The router's affinity goal: a given request key should hit the same
replica every time (so that replica's memory LRU stays hot for it),
and adding/removing one replica should remap only ~1/N of the key
space (so a rolling restart does not flush every replica's working
set). A classic consistent-hash ring with virtual nodes gives both.

Each member contributes ``vnodes`` points placed by hashing
``"{member}#{k}"``; a key routes to the first point clockwise of its
own hash. The *preference list* for a key is the sequence of distinct
members encountered walking clockwise — the failover order the router
uses when the owner is ejected, which keeps retries deterministic and
spreads each replica's failover load across the others instead of
dogpiling one designated backup.

Keys here are already uniform sha256 hexdigests, but the ring hashes
them again anyway: member names are *not* uniform, and using one hash
for both sides keeps placement independent of key structure.
"""

from __future__ import annotations

import bisect
import hashlib

#: Virtual nodes per member. 64 keeps the max/min load spread under
#: ~1.3x for small fleets while ring rebuilds stay trivially cheap.
DEFAULT_VNODES = 64


def _point(value: str) -> int:
    """Ring coordinate of ``value``: the first 8 bytes of its sha256."""
    digest = hashlib.sha256(value.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to member names."""

    def __init__(self, members=(), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._members: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for member in members:
            self.add(member)

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        self._rebuild()

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        self._rebuild()

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"{member}#{k}"), member)
            for member in self._members
            for k in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [m for _, m in pairs]

    def owner(self, key: str) -> str:
        """The member owning ``key``. Raises on an empty ring."""
        if not self._members:
            raise LookupError("hash ring has no members")
        i = bisect.bisect_right(self._points, _point(key))
        return self._owners[i % len(self._owners)]

    def preference(self, key: str, n: int | None = None) -> list[str]:
        """The first ``n`` (default: all) distinct members clockwise of
        ``key`` — the owner first, then the failover order."""
        if not self._members:
            return []
        want = len(self._members) if n is None else min(n, len(self._members))
        out: list[str] = []
        start = bisect.bisect_right(self._points, _point(key))
        for step in range(len(self._owners)):
            member = self._owners[(start + step) % len(self._owners)]
            if member not in out:
                out.append(member)
                if len(out) == want:
                    break
        return out
