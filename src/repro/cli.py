"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``align``     align the sequences of a FASTA file (exact 3-way for three
              records, progressive MSA for more)
``batch``     serve many 3-way requests from one file with caching,
              dedup and a persistent worker pool (``docs/batching.md``);
              results stream to stdout as each group completes
``serve``     run the long-lived alignment service: asyncio HTTP/1.1
              JSON API with admission control, micro-batching and
              graceful drain (``docs/serving.md``)
``router``    run the sharding front tier: consistent-hash routing of
              cache keys over N ``serve`` replicas with health-driven
              failover (``docs/serving.md``)
``cache-server``  run the shared result-cache service that replicas
              started with ``--cache-url`` query on local misses
``score``     print the optimal SP score only (O(n^2) memory)
``count``     count (and optionally enumerate) co-optimal alignments
``generate``  emit a synthetic mutated family as FASTA
``simulate``  run the cluster simulator and print speedup/efficiency
``report``    render a captured ``--trace`` JSONL file into tables, or
              perf trends from the run-record database (``--trends``)
``runs``      inspect the run-record database (``RUNS.jsonl``):
              list/tail/show/gc (``docs/observability.md``)
``info``      version, engines, bundled datasets

``align`` and ``simulate`` accept ``--trace FILE`` (capture a span/plane/
worker trace, merged across worker processes) and ``--metrics`` (print a
counters/gauges/histograms summary to stderr); see
``docs/observability.md``.

Fault tolerance (see ``docs/robustness.md``): ``align`` accepts
``--inject-fault SPEC`` (repeatable) and honours the ``REPRO_FAULTS``
environment variable; ``--no-degrade`` turns the automatic
memory-degradation ladder into a hard error. Typed failures map to
distinct exit codes: worker/rank failure -> 3, forbidden degradation ->
4, bad fault spec -> 5.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Iterator, Sequence

from repro import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal three-sequence alignment (ICPP 2007 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_align = sub.add_parser("align", help="align sequences from a FASTA file")
    p_align.add_argument("fasta", help="input FASTA (3 records = exact 3-way)")
    _scoring_args(p_align)
    p_align.add_argument(
        "--method",
        default="auto",
        help="engine for 3 sequences (auto/dp3d/wavefront/hirschberg/"
        "pruned/banded/affine/shared/blocks/threads/anchored); 'auto' picks via "
        "the --auto-policy cost model; 'anchored' discovers an anchor "
        "chain and solves sub-cubes (long high-identity triples)",
    )
    p_align.add_argument(
        "--constraints",
        default=None,
        metavar="SPEC",
        help="anchor chain the alignment must pass through: inline JSON "
        "'[[i, j, k, length], ...]' or @FILE with the same JSON; forces "
        "constrained mode (see docs/workloads.md)",
    )
    p_align.add_argument(
        "--anchored",
        action="store_true",
        help="shorthand for --method anchored (automatic anchor "
        "discovery with exact fallback)",
    )
    p_align.add_argument(
        "--auto-policy",
        choices=("similarity", "cells"),
        default="similarity",
        help="how --method auto picks an engine: 'similarity' estimates "
        "pairwise identity and routes similar triples to the pruned "
        "engine; 'cells' is the legacy cube-size-only split",
    )
    p_align.add_argument(
        "--mode",
        choices=("global", "local", "semiglobal"),
        default="global",
        help="alignment mode (local/semiglobal need exactly 3 sequences "
        "and the linear gap model)",
    )
    p_align.add_argument(
        "--workers", type=int, default=2, help="workers for parallel engines"
    )
    p_align.add_argument(
        "--format",
        choices=("pretty", "fasta", "clustal"),
        default="pretty",
        help="output format",
    )
    p_align.add_argument(
        "--width", type=int, default=60, help="pretty-print block width"
    )
    p_align.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="arm a fault for chaos testing, e.g. "
        "'worker_crash@pool:worker=1,plane=25' (repeatable; see "
        "docs/robustness.md)",
    )
    p_align.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail (exit 4) instead of walking the memory-degradation "
        "ladder when the requested engine exceeds the memory budget",
    )
    _obs_args(p_align)

    p_batch = sub.add_parser(
        "batch",
        help="serve many 3-way requests with caching, dedup and one pool",
    )
    p_batch.add_argument(
        "input",
        help="JSONL request file (one {'seqs': [a, b, c]} object per line) "
        "or FASTA whose record count is a multiple of three",
    )
    _scoring_args(p_batch)
    p_batch.add_argument(
        "--method",
        default="auto",
        help="default engine for requests that do not name one",
    )
    p_batch.add_argument(
        "--mode",
        choices=("global", "local", "semiglobal"),
        default="global",
        help="default alignment mode",
    )
    p_batch.add_argument(
        "--workers", type=int, default=2, help="pool worker count"
    )
    p_batch.add_argument(
        "--auto-policy",
        choices=("similarity", "cells"),
        default="similarity",
        help="engine-selection policy for method 'auto' (see 'align')",
    )
    p_batch.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent result cache directory (reused across runs)",
    )
    p_batch.add_argument(
        "--max-entries",
        type=int,
        default=1024,
        help="in-memory cache capacity (LRU-evicted beyond this)",
    )
    p_batch.add_argument(
        "--output",
        choices=("tsv", "jsonl"),
        default="tsv",
        help="per-request output: 'tsv' (id, score, source) or 'jsonl' "
        "(adds the aligned rows); either way lines stream as results "
        "complete, so memory stays bounded on long batches",
    )
    _obs_args(p_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the alignment service (HTTP/1.1 JSON over asyncio)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 8673; 0 binds an ephemeral port — the "
        "bound address is printed to stderr)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="worker pool size"
    )
    p_serve.add_argument(
        "--auto-policy",
        choices=("similarity", "cells"),
        default="similarity",
        help="engine-selection policy for method 'auto' (see 'align')",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="max triples awaiting a batch flush before shedding (429)",
    )
    p_serve.add_argument(
        "--max-inflight-cells",
        type=int,
        default=None,
        help="max estimated DP cells admitted but not completed",
    )
    p_serve.add_argument(
        "--max-request-cells",
        type=int,
        default=None,
        help="hard per-POST cell cap (413 beyond it)",
    )
    p_serve.add_argument(
        "--batch-max",
        type=int,
        default=None,
        help="micro-batch flush size (triples)",
    )
    p_serve.add_argument(
        "--batch-age-ms",
        type=float,
        default=None,
        help="micro-batch flush age in milliseconds",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (504 beyond it)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="grace period for in-flight responses during SIGTERM drain",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent result cache directory (reused across restarts)",
    )
    p_serve.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="in-memory cache capacity",
    )
    p_serve.add_argument(
        "--cache-url",
        default=None,
        metavar="HOST:PORT",
        help="shared cache service (repro cache-server) queried on "
        "local misses and populated on puts",
    )
    p_serve.add_argument(
        "--instance",
        default=None,
        metavar="NAME",
        help="replica name echoed in /healthz and /metrics",
    )
    p_serve.add_argument(
        "--drain-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="after SIGTERM, keep the listener open (healthz already "
        "503) this long so a polling router reroutes first",
    )
    _obs_args(p_serve)

    p_router = sub.add_parser(
        "router",
        help="run the sharding front tier over N serve replicas",
    )
    p_router.add_argument(
        "replicas",
        nargs="+",
        metavar="HOST:PORT",
        help="backend serve replicas, in ring order",
    )
    p_router.add_argument("--host", default="127.0.0.1", help="bind address")
    p_router.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 8674; 0 binds an ephemeral port)",
    )
    p_router.add_argument(
        "--health-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="/healthz poll period per replica",
    )
    p_router.add_argument(
        "--soft-threshold",
        type=int,
        default=None,
        help="consecutive soft failures (timeout/5xx) before ejection",
    )
    p_router.add_argument(
        "--eject-cooldown",
        type=float,
        default=None,
        metavar="SECONDS",
        help="initial ejection cooldown (doubles on half-open failure)",
    )
    p_router.add_argument(
        "--retry-attempts",
        type=int,
        default=None,
        help="failover budget per forwarded slice",
    )
    p_router.add_argument(
        "--response-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-exchange response budget (should exceed the replica "
        "deadline)",
    )
    p_router.add_argument(
        "--drain-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="listener grace after SIGTERM (see repro serve)",
    )
    _obs_args(p_router)

    p_cached = sub.add_parser(
        "cache-server",
        help="run the shared result-cache service replicas query",
    )
    p_cached.add_argument("--host", default="127.0.0.1", help="bind address")
    p_cached.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: ephemeral, printed to stderr)",
    )
    p_cached.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent JSONL tier directory (memory-only when unset)",
    )
    p_cached.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="in-memory cache capacity",
    )
    _obs_args(p_cached)

    p_score = sub.add_parser("score", help="optimal SP score only")
    p_score.add_argument("fasta")
    _scoring_args(p_score)

    p_count = sub.add_parser(
        "count", help="count co-optimal alignments (3 sequences)"
    )
    p_count.add_argument("fasta")
    _scoring_args(p_count)
    p_count.add_argument(
        "--show",
        type=int,
        default=0,
        metavar="K",
        help="also print up to K co-optimal alignments",
    )

    p_gen = sub.add_parser("generate", help="emit a synthetic family as FASTA")
    p_gen.add_argument("--length", type=int, default=60, help="ancestor length")
    p_gen.add_argument("--count", type=int, default=3, help="family size")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument(
        "--alphabet", choices=("dna", "rna", "protein"), default="dna"
    )
    p_gen.add_argument(
        "--divergence",
        type=float,
        default=1.0,
        help="mutation-model scale factor (1.0 = defaults)",
    )

    p_sim = sub.add_parser("simulate", help="cluster-simulate the wavefront")
    p_sim.add_argument("--n", type=int, default=200, help="sequence length")
    p_sim.add_argument(
        "--procs",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8, 16, 32, 64],
        help="processor counts to sweep",
    )
    p_sim.add_argument("--block", type=int, default=16)
    p_sim.add_argument(
        "--network",
        choices=("ethernet-2007", "gigabit-2007", "modern"),
        default="ethernet-2007",
    )
    p_sim.add_argument(
        "--mapping", choices=("pencil", "linear", "slab"), default="pencil"
    )
    p_sim.add_argument(
        "--calibrate",
        action="store_true",
        help="measure this machine's per-cell time instead of the default",
    )
    _obs_args(p_sim)

    p_rep = sub.add_parser(
        "report",
        help="render a --trace JSONL file into breakdown tables, or "
        "run-record trends with --trends",
    )
    p_rep.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace file captured with --trace (omit with --trends)",
    )
    p_rep.add_argument(
        "--planes",
        type=int,
        default=12,
        metavar="BINS",
        help="number of bins for the per-plane table (0 = one row per plane)",
    )
    p_rep.add_argument(
        "--trends",
        action="store_true",
        help="render per-kind metric trends (sparkline + delta + "
        "regression flags) from the run-record database",
    )
    p_rep.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        help="restrict --trends to this run kind (repeatable)",
    )
    p_rep.add_argument(
        "--window",
        type=int,
        default=12,
        help="newest rows per kind the trend tables cover",
    )
    _runs_file_arg(p_rep)

    p_runs = sub.add_parser(
        "runs", help="inspect the run-record database (RUNS.jsonl)"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    pr_list = runs_sub.add_parser("list", help="one table row per record")
    pr_list.add_argument(
        "--kind", default=None, help="only records of this kind"
    )
    pr_list.add_argument(
        "--limit", type=int, default=50, help="newest records shown"
    )
    _runs_file_arg(pr_list)
    pr_tail = runs_sub.add_parser("tail", help="print raw JSONL lines")
    pr_tail.add_argument(
        "--limit", type=int, default=10, help="newest lines printed"
    )
    _runs_file_arg(pr_tail)
    pr_show = runs_sub.add_parser(
        "show", help="pretty-print one record as JSON"
    )
    pr_show.add_argument(
        "index",
        type=int,
        help="record index from 'repro runs list' (negative counts "
        "from the newest, e.g. -1)",
    )
    _runs_file_arg(pr_show)
    pr_gc = runs_sub.add_parser(
        "gc", help="rotate the store, keeping the newest rows per kind"
    )
    pr_gc.add_argument(
        "--keep", type=int, default=100, help="rows kept per kind"
    )
    _runs_file_arg(pr_gc)

    sub.add_parser("info", help="version, engines and datasets")
    return parser


def _runs_file_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--runs-file",
        default=None,
        metavar="FILE",
        help="run-record store (default: RUNS.jsonl at the repo root)",
    )


def _obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="capture a JSONL span/plane/worker trace to FILE "
        "(render it with 'repro report FILE')",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="collect engine metrics and print a summary to stderr",
    )


@contextlib.contextmanager
def _obs_session(args) -> Iterator[None]:
    """Enable tracing/metrics around a command per its ``--trace`` /
    ``--metrics`` flags, and tear both down afterwards."""
    from repro.obs import metrics, trace

    recorder = None
    if getattr(args, "trace", None):
        try:
            recorder = trace.TraceRecorder(args.trace)
        except OSError as exc:
            print(f"error: cannot open --trace file: {exc}", file=sys.stderr)
            raise SystemExit(2)
        trace.install(recorder)
    want_metrics = bool(getattr(args, "metrics", False))
    if want_metrics:
        metrics.enable()
    try:
        yield
    finally:
        # The summary print can raise (e.g. BrokenPipeError when piped
        # into `head`); the recorder must still be closed or the trace
        # file loses everything buffered since the last flush.
        try:
            if want_metrics:
                from repro.obs.report import render_metrics

                print(
                    render_metrics(metrics.registry().snapshot()),
                    file=sys.stderr,
                )
        finally:
            if want_metrics:
                metrics.disable()
            if recorder is not None:
                trace.uninstall()
                recorder.close()


def _scoring_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--matrix",
        choices=("auto", "blosum62", "pam250", "dna", "unit"),
        default="auto",
        help="substitution matrix (auto = guess from the alphabet)",
    )
    p.add_argument("--gap", type=float, default=None, help="gap (extend) score")
    p.add_argument(
        "--gap-open", type=float, default=0.0, help="gap opening score (affine)"
    )


def _resolve_scheme(args, seqs: Sequence[str]):
    from repro.core import matrices as m
    from repro.core.scoring import ScoringScheme, default_scheme_for
    from repro.seqio.alphabet import DNA, PROTEIN, guess_alphabet

    if args.matrix == "auto":
        alpha = guess_alphabet("".join(seqs) or "A")
        scheme = default_scheme_for(alpha)
    elif args.matrix == "blosum62":
        scheme = ScoringScheme(PROTEIN, m.blosum62(), gap=-8.0, name="blosum62")
    elif args.matrix == "pam250":
        scheme = ScoringScheme(PROTEIN, m.pam250(), gap=-8.0, name="pam250")
    elif args.matrix == "dna":
        scheme = ScoringScheme(DNA, m.dna_simple(), gap=-6.0, name="dna5-4")
    else:
        alpha = guess_alphabet("".join(seqs) or "A")
        scheme = ScoringScheme(
            alpha, m.unit_matrix(alpha), gap=-1.0, name="unit"
        )
    gap = args.gap if args.gap is not None else scheme.gap
    if gap != scheme.gap or args.gap_open:
        scheme = scheme.with_gaps(gap=gap, gap_open=args.gap_open)
    return scheme


def _cmd_align(args) -> int:
    from repro.core.api import align3
    from repro.msa import align_msa
    from repro.seqio.fasta import format_fasta, read_fasta

    records = read_fasta(args.fasta)
    if len(records) < 2:
        print("error: need at least two sequences", file=sys.stderr)
        return 2
    names = [h for h, _ in records]
    seqs = [s for _h, s in records]
    scheme = _resolve_scheme(args, seqs)

    if args.mode != "global" and len(records) != 3:
        print(
            f"error: --mode {args.mode} requires exactly three sequences",
            file=sys.stderr,
        )
        return 2
    with _obs_session(args):
        if len(records) == 3:
            if args.mode == "local":
                from repro.core.local import align3_local

                aln = align3_local(*seqs, scheme)
            elif args.mode == "semiglobal":
                from repro.core.semiglobal import align3_semiglobal

                aln = align3_semiglobal(*seqs, scheme)
            else:
                constraints = None
                spec = getattr(args, "constraints", None)
                if spec:
                    try:
                        if spec.startswith("@"):
                            with open(spec[1:], encoding="utf-8") as fh:
                                spec = fh.read()
                        constraints = json.loads(spec)
                    except OSError as exc:
                        print(
                            f"error: cannot read constraints: {exc}",
                            file=sys.stderr,
                        )
                        return 2
                    except json.JSONDecodeError as exc:
                        print(
                            f"error: --constraints is not valid JSON: {exc}",
                            file=sys.stderr,
                        )
                        return 2
                method = args.method
                if getattr(args, "anchored", False) and method == "auto":
                    method = "anchored"
                try:
                    aln = align3(
                        *seqs,
                        scheme,
                        method=method,
                        workers=args.workers,
                        allow_degrade=not args.no_degrade,
                        auto_policy=args.auto_policy,
                        constraints=constraints,
                    )
                except ValueError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                anchor = aln.meta.get("anchor")
                if anchor:
                    print(
                        f"# anchor: mode={anchor['mode']} "
                        f"anchors={anchor['anchors']} "
                        f"coverage={anchor['coverage']:g}",
                        file=sys.stderr,
                    )
                if "degraded_from" in aln.meta:
                    print(
                        f"# degraded: {aln.meta['degraded_from']} -> "
                        f"{aln.meta['engine']} (memory budget "
                        f"{aln.meta['memory_budget_bytes']:,} bytes)",
                        file=sys.stderr,
                    )
            rows = aln.rows
            score = aln.score
            engine = aln.meta["engine"]
        else:
            msa = align_msa(seqs, scheme, names=names)
            rows = msa.rows
            score = msa.sp_score(scheme)
            engine = msa.meta["engine"]

    if args.format == "fasta":
        print(format_fasta(zip(names, rows)), end="")
    elif args.format == "clustal":
        from repro.seqio.clustal import format_clustal

        safe_names = [n.split()[0] if n.split() else f"seq{i}"
                      for i, n in enumerate(names)]
        print(format_clustal(safe_names, list(rows), width=args.width), end="")
    else:
        label_w = max(len(n) for n in names)
        for start in range(0, len(rows[0]), args.width):
            for name, row in zip(names, rows):
                print(f"{name:<{label_w}} {row[start:start + args.width]}")
            print()
    print(
        f"# score={score:g} engine={engine} scheme={scheme.name} "
        f"columns={len(rows[0])}",
        file=sys.stderr,
    )
    return 0


def _cmd_batch(args) -> int:
    from repro.batch import BatchScheduler, read_requests
    from repro.batch.scheduler import AlignmentRequest
    from repro.cache import ResultCache

    try:
        requests = read_requests(args.input, mode=args.mode, method=args.method)
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not requests:
        print("error: no requests in input", file=sys.stderr)
        return 2

    scheme = None
    if args.matrix != "auto" or args.gap is not None or args.gap_open:
        seqs = [s for r in requests for s in r.seqs]
        scheme = _resolve_scheme(args, seqs)
        requests = [
            AlignmentRequest(
                seqs=r.seqs, scheme=scheme, mode=r.mode, method=r.method,
                rid=r.rid, constraints=r.constraints,
            )
            for r in requests
        ]

    cache = ResultCache(
        max_entries=args.max_entries, cache_dir=args.cache_dir
    )

    # Results stream out as each shape-group completes rather than being
    # buffered until the whole batch is done: long batches show progress,
    # and run_stream releases each alignment after its line is written so
    # resident memory stays bounded by one shape-group, not the batch.
    if args.output == "jsonl":
        def emit(res) -> None:
            print(
                json.dumps(
                    {
                        "id": res.rid or str(res.index),
                        "index": res.index,
                        "score": res.alignment.score,
                        "source": res.source,
                        "rows": list(res.alignment.rows),
                    },
                    separators=(",", ":"),
                ),
                flush=True,
            )
    else:
        def emit(res) -> None:
            print(
                f"{res.rid or res.index}\t{res.alignment.score:g}"
                f"\t{res.source}",
                flush=True,
            )

    with _obs_session(args):
        with BatchScheduler(
            cache=cache, workers=args.workers, auto_policy=args.auto_policy
        ) as sched:
            report = sched.run_stream(requests, emit)

    s = report.stats
    print(
        f"# requests={s.requests} computed={s.computed} "
        f"cache_hits={s.cache_hits} dedup={s.dedup_hits} "
        f"permutation={s.permutation_hits} "
        f"dedup_ratio={s.dedup_ratio:.2f} wall={s.wall_s:.3f}s "
        f"pool_jobs={s.pool_jobs}",
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    overrides = {
        "host": args.host,
        "port": args.port,
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "cache_entries": args.max_entries,
        "queue_depth": args.queue_depth,
        "max_inflight_cells": args.max_inflight_cells,
        "max_request_cells": args.max_request_cells,
        "batch_max_requests": args.batch_max,
        "default_deadline_s": args.deadline,
        "drain_timeout_s": args.drain_timeout,
        "cache_url": args.cache_url,
        "instance": args.instance,
        "drain_grace_s": args.drain_grace,
        "auto_policy": args.auto_policy,
    }
    if args.batch_age_ms is not None:
        overrides["batch_max_age_s"] = args.batch_age_ms / 1000.0
    config = ServeConfig(
        **{k: v for k, v in overrides.items() if v is not None}
    )
    try:
        config.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _obs_session(args):
        return run_server(config)


def _cmd_router(args) -> int:
    from repro.router import RouterConfig, run_router

    overrides = {
        "host": args.host,
        "port": args.port,
        "health_interval_s": args.health_interval,
        "soft_threshold": args.soft_threshold,
        "eject_cooldown_s": args.eject_cooldown,
        "retry_attempts": args.retry_attempts,
        "response_timeout_s": args.response_timeout,
        "drain_grace_s": args.drain_grace,
    }
    config = RouterConfig(
        replicas=tuple(args.replicas),
        **{k: v for k, v in overrides.items() if v is not None},
    )
    try:
        config.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _obs_session(args):
        return run_router(config)


def _cmd_cache_server(args) -> int:
    from repro.cache.service import run_cache_server

    kwargs = {
        "host": args.host,
        "port": args.port,
        "cache_dir": args.cache_dir,
    }
    if args.max_entries is not None:
        kwargs["cache_entries"] = args.max_entries
    try:
        with _obs_session(args):
            return run_cache_server(**kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_score(args) -> int:
    from repro.core.api import align3_score
    from repro.msa import align_msa
    from repro.seqio.fasta import read_fasta

    records = read_fasta(args.fasta)
    seqs = [s for _h, s in records]
    scheme = _resolve_scheme(args, seqs)
    if len(seqs) == 3:
        score = align3_score(*seqs, scheme)
    elif len(seqs) >= 2:
        score = align_msa(seqs, scheme).sp_score(scheme)
    else:
        print("error: need at least two sequences", file=sys.stderr)
        return 2
    print(f"{score:g}")
    return 0


def _cmd_count(args) -> int:
    from repro.core.countopt import count_optimal, enumerate_optimal
    from repro.seqio.fasta import read_fasta

    records = read_fasta(args.fasta)
    if len(records) != 3:
        print("error: count requires exactly three sequences", file=sys.stderr)
        return 2
    seqs = [s for _h, s in records]
    scheme = _resolve_scheme(args, seqs)
    if scheme.is_affine:
        print("error: count supports the linear gap model", file=sys.stderr)
        return 2
    n = count_optimal(*seqs, scheme)
    print(f"{n}")
    if args.show > 0:
        for aln in enumerate_optimal(*seqs, scheme, limit=args.show):
            print()
            print(aln.pretty())
    return 0


def _cmd_generate(args) -> int:
    from repro.seqio.alphabet import DNA, PROTEIN, RNA
    from repro.seqio.fasta import format_fasta
    from repro.seqio.generate import MutationModel, mutated_family

    alpha = {"dna": DNA, "rna": RNA, "protein": PROTEIN}[args.alphabet]
    model = MutationModel().scaled(args.divergence)
    fam = mutated_family(
        args.length, model=model, count=args.count, alphabet=alpha,
        seed=args.seed,
    )
    records = [(f"synth{i}", s) for i, s in enumerate(fam)]
    print(format_fasta(records), end="")
    return 0


def _cmd_simulate(args) -> int:
    from repro.cluster.machine import (
        calibrate_t_cell,
        ethernet_2007,
        gigabit_2007,
        modern_cluster,
    )
    from repro.cluster.metrics import sweep_procs
    from repro.util.tables import format_table

    maker = {
        "ethernet-2007": ethernet_2007,
        "gigabit-2007": gigabit_2007,
        "modern": modern_cluster,
    }[args.network]
    machine = maker(1)
    if args.calibrate:
        t_cell = calibrate_t_cell()
        machine = type(machine)(
            procs=1, t_cell=t_cell, alpha=machine.alpha, beta=machine.beta,
            name=machine.name,
        )
    with _obs_session(args):
        results = sweep_procs(
            args.n, args.procs, machine, block=args.block, mapping=args.mapping
        )
    rows = [
        (
            p,
            r.speedup,
            r.efficiency,
            r.makespan,
            r.comm_volume_bytes / 1e6,
            r.messages,
        )
        for p, r in zip(args.procs, results)
    ]
    print(
        format_table(
            f"simulated wavefront: n={args.n}, block={args.block}, "
            f"{machine.name}, {args.mapping} mapping",
            ["P", "speedup", "efficiency", "makespan_s", "comm_MB", "messages"],
            rows,
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import render_report

    if args.trends:
        from repro.runs import render_trends

        store = _open_runs_store(args.runs_file)
        print(render_trends(store, kinds=args.kind, window=args.window))
        return 0
    if args.trace is None:
        print(
            "error: give a trace file to render, or --trends for the "
            "run-record database",
            file=sys.stderr,
        )
        return 2
    if not os.path.exists(args.trace):
        print(f"error: no such trace file: {args.trace}", file=sys.stderr)
        return 2
    print(render_report(args.trace, plane_bins=args.planes))
    return 0


def _open_runs_store(runs_file):
    """Open the run store and fold the committed kernel baseline in as
    the first trajectory row (idempotent; soft-fails on read-only
    checkouts so viewing never errors)."""
    from repro.runs import RunStore, seed_from_baseline

    store = RunStore(runs_file)
    try:
        seed_from_baseline(store)
    except Exception:  # noqa: BLE001 — viewing must not require writing
        pass
    return store


def _cmd_runs(args) -> int:
    from repro.runs import render_runs_table

    store = _open_runs_store(args.runs_file)
    if args.runs_command == "list":
        records = store.records(kind=args.kind)
        if args.limit and args.limit > 0:
            records = records[-args.limit:]
        print(render_runs_table(records, skipped=store.skipped))
    elif args.runs_command == "tail":
        for line in store.tail_lines(args.limit):
            print(line)
    elif args.runs_command == "show":
        records = store.records()
        if not records:
            print("error: run store is empty", file=sys.stderr)
            return 2
        try:
            record = records[args.index]
        except IndexError:
            print(
                f"error: index {args.index} out of range "
                f"(store has {len(records)} records)",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    else:  # gc
        kept, dropped = store.gc(keep_per_kind=args.keep)
        print(
            f"gc: kept {kept} record(s), dropped {dropped} "
            f"(backup at {store.path.name}.1)"
        )
    return 0


def _cmd_info(_args) -> int:
    from repro.core.api import AVAILABLE_METHODS
    from repro.seqio.datasets import list_datasets

    print(f"repro {__version__}")
    print(f"alignment methods : {', '.join(AVAILABLE_METHODS)}")
    print(f"bundled datasets  : {', '.join(list_datasets())}")
    print("experiments       : python -m repro.bench --list")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.resilience import faults
    from repro.resilience.errors import (
        EXIT_BAD_FAULT_SPEC,
        EXIT_DEGRADED,
        EXIT_WORKER_FAILURE,
        DegradedRun,
        FaultSpecError,
        WorkerFailure,
    )

    args = _build_parser().parse_args(argv)
    handler = {
        "align": _cmd_align,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "router": _cmd_router,
        "cache-server": _cmd_cache_server,
        "score": _cmd_score,
        "count": _cmd_count,
        "generate": _cmd_generate,
        "simulate": _cmd_simulate,
        "report": _cmd_report,
        "runs": _cmd_runs,
        "info": _cmd_info,
    }[args.command]
    try:
        faults.install_from_env()
        if getattr(args, "inject_fault", None):
            faults.install(list(args.inject_fault))
        return handler(args)
    except FaultSpecError as exc:
        print(f"error: bad fault spec: {exc}", file=sys.stderr)
        return EXIT_BAD_FAULT_SPEC
    except DegradedRun as exc:
        print(f"error: degraded run forbidden by --no-degrade: {exc}",
              file=sys.stderr)
        return EXIT_DEGRADED
    except WorkerFailure as exc:
        print(f"error: worker failure: {exc}", file=sys.stderr)
        return EXIT_WORKER_FAILURE
    except BrokenPipeError:
        # Output piped into e.g. `head`; die quietly like other line tools.
        # Stdout is already unusable, so detach it before interpreter
        # shutdown tries (and fails) to flush it.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
